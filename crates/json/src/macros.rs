//! The `impl_json!` macro: field-list implementations of
//! [`ToJson`](crate::ToJson)/[`FromJson`](crate::FromJson) for domain
//! types, replacing what `#[derive(Serialize, Deserialize)]` used to
//! generate.
//!
//! Four shapes cover every persisted type in the workspace:
//!
//! ```
//! use muffin_json::impl_json;
//!
//! // Named-field struct → JSON object, keys in declaration order.
//! #[derive(Debug, PartialEq)]
//! struct Point { x: f32, y: f32 }
//! impl_json!(struct Point { x, y });
//!
//! // Single-field tuple struct → the inner value, transparently.
//! #[derive(Debug, PartialEq)]
//! struct Id(u32);
//! impl_json!(newtype Id);
//!
//! // All-unit enum → the variant name as a JSON string.
//! #[derive(Debug, PartialEq)]
//! enum Color { Red, Green }
//! impl_json!(enum Color { Red, Green });
//!
//! // Enum with data → one-key object {"Variant": {fields…}}.
//! #[derive(Debug, PartialEq)]
//! enum Shape { Dot {}, Circle { radius: f32 } }
//! impl_json!(tagged Shape { Dot {}, Circle { radius } });
//!
//! let text = muffin_json::to_string(&Shape::Circle { radius: 2.0 });
//! assert_eq!(text, r#"{"Circle":{"radius":2.0}}"#);
//! ```
//!
//! The macro must be invoked where the type's fields are visible
//! (normally the defining module), exactly like a derive.

/// Implements [`ToJson`](crate::ToJson) and [`FromJson`](crate::FromJson)
/// from a field list. Four shapes are accepted: `struct`, `tuple`,
/// `unit_enum` and `tagged` (see the examples in `src/macros.rs`).
#[macro_export]
macro_rules! impl_json {
    (struct $ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                let mut obj = $crate::Json::object();
                $(obj.insert(stringify!($field), $crate::ToJson::to_json(&self.$field));)*
                obj
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: json
                        .field(stringify!($field))
                        .map_err(|e| e.in_context(stringify!($ty)))?,)*
                })
            }
        }
    };

    (newtype $ty:ident) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                $crate::FromJson::from_json(json)
                    .map(Self)
                    .map_err(|e| e.in_context(stringify!($ty)))
            }
        }
    };

    (enum $ty:ident { $($variant:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $(Self::$variant => $crate::Json::Str(stringify!($variant).to_owned()),)*
                }
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match json {
                    $crate::Json::Str(name) => match name.as_str() {
                        $(stringify!($variant) => Ok(Self::$variant),)*
                        other => Err($crate::JsonError::decode(format!(
                            "unknown {} variant `{other}`",
                            stringify!($ty)
                        ))),
                    },
                    other => Err($crate::JsonError::decode(format!(
                        "expected {} variant string, found {}",
                        stringify!($ty),
                        other.kind()
                    ))),
                }
            }
        }
    };

    (tagged $ty:ident { $($variant:ident { $($field:ident),* $(,)? }),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $(Self::$variant { $($field),* } => {
                        #[allow(unused_mut)]
                        let mut inner = $crate::Json::object();
                        $(inner.insert(stringify!($field), $crate::ToJson::to_json($field));)*
                        let mut obj = $crate::Json::object();
                        obj.insert(stringify!($variant), inner);
                        obj
                    })*
                }
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let entries = match json {
                    $crate::Json::Obj(entries) if entries.len() == 1 => entries,
                    other => {
                        return Err($crate::JsonError::decode(format!(
                            "expected single-variant object for {}, found {}",
                            stringify!($ty),
                            other.kind()
                        )))
                    }
                };
                let (name, inner) = &entries[0];
                match name.as_str() {
                    $(stringify!($variant) => Ok(Self::$variant {
                        $($field: inner
                            .field(stringify!($field))
                            .map_err(|e| e.in_context(stringify!($ty)))?,)*
                    }),)*
                    other => Err($crate::JsonError::decode(format!(
                        "unknown {} variant `{other}`",
                        stringify!($ty)
                    ))),
                }
            }
        }
    };
}
