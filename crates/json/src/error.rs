use std::fmt;

/// Error produced while parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The text is not syntactically valid JSON. `line` and `column` are
    /// 1-based and point at the offending character.
    Parse {
        /// 1-based line of the offending character.
        line: usize,
        /// 1-based column of the offending character.
        column: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// The JSON parsed but does not have the shape the target type expects
    /// (missing field, wrong kind, out-of-range number, unknown variant).
    Decode {
        /// Human-readable description, prefixed with the field path where
        /// the mismatch occurred.
        message: String,
    },
}

impl JsonError {
    /// Builds a decode error.
    pub fn decode(message: impl Into<String>) -> Self {
        JsonError::Decode { message: message.into() }
    }

    /// Prefixes a decode error with surrounding context (field or index),
    /// leaving parse errors untouched.
    pub fn in_context(self, context: &str) -> Self {
        match self {
            JsonError::Decode { message } => {
                JsonError::Decode { message: format!("{context}: {message}") }
            }
            parse => parse,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { line, column, message } => {
                write!(f, "json parse error at line {line}, column {column}: {message}")
            }
            JsonError::Decode { message } => write!(f, "json decode error: {message}"),
        }
    }
}

impl std::error::Error for JsonError {}
