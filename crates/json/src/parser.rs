use crate::{Json, JsonError};

/// Parses a complete JSON document.
///
/// The grammar is RFC 8259 JSON: one top-level value, `//`-free, with
/// strict number and escape syntax. Trailing whitespace is allowed,
/// trailing garbage is not.
///
/// # Errors
///
/// Returns [`JsonError::Parse`] carrying the 1-based line and column of
/// the first offending character.
///
/// # Example
///
/// ```
/// let err = muffin_json::parse("{\n  \"a\": nul\n}").unwrap_err();
/// assert!(err.to_string().contains("line 2"));
/// ```
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_whitespace();
    let value = p.value()?;
    p.skip_whitespace();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting depth above which the parser refuses input rather than risk
/// exhausting the stack on adversarial documents.
const MAX_DEPTH: usize = 192;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let (mut line, mut column) = (1, 1);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError::Parse { line, column, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(self.error(format!("expected `{}`, found `{}`", byte as char, b as char))),
            None => Err(self.error(format!("expected `{}`, found end of input", byte as char))),
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string().map_err(|e| match e {
                JsonError::Parse { line, column, message } => JsonError::Parse {
                    line,
                    column,
                    message: format!("object key: {message}"),
                },
                other => other,
            })?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.error(format!("expected `,` or `}}`, found `{}`", b as char)));
                }
                None => return Err(self.error("unterminated object")),
            }
        }
        self.depth -= 1;
        Ok(Json::Obj(entries))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                Some(b) => {
                    self.pos -= 1;
                    return Err(self.error(format!("expected `,` or `]`, found `{}`", b as char)));
                }
                None => return Err(self.error("unterminated array")),
            }
        }
        self.depth -= 1;
        Ok(Json::Arr(items))
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain (unescaped, ASCII-or-UTF-8)
            // bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it came from &str) and we only
                // stopped at ASCII delimiters, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("substring of valid UTF-8"));
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => {
                    self.pos -= 1;
                    return Err(self.error("control character inside string"));
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000C}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let high = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.error("unpaired high surrogate in \\u escape"));
                    }
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.error("invalid low surrogate in \\u escape"));
                    }
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                } else {
                    char::from_u32(high).ok_or_else(|| self.error("invalid \\u escape"))?
                };
                out.push(c);
            }
            Some(b) => return Err(self.error(format!("invalid escape `\\{}`", b as char))),
            None => return Err(self.error("unterminated escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected four hex digits after \\u"));
                }
            };
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected digit in number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}
