use crate::{FromJson, JsonError};

/// A JSON value.
///
/// Objects preserve insertion order, so serialisation is deterministic:
/// the [`impl_json!`](crate::impl_json) macros insert fields in
/// declaration order and the writer emits them in that same order on every
/// run. Numbers keep integers ([`Json::Int`], as `i128`) apart from floats
/// ([`Json::Float`]) so 64-bit seeds and parameter counts round-trip
/// exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction or exponent in the source).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts a key into an object, preserving insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn insert(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(entries) => entries.push((key.into(), value)),
            other => panic!("Json::insert on non-object {}", other.kind()),
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Decodes this value into any [`FromJson`] type.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Decode`] if the value does not have the shape
    /// `T` expects.
    pub fn decode<T: FromJson>(&self) -> Result<T, JsonError> {
        T::from_json(self)
    }

    /// Decodes the field `key` of an object.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Decode`] if `self` is not an object, the field
    /// is missing, or the field fails to decode; the error names the field.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        match self {
            Json::Obj(_) => {}
            other => {
                return Err(JsonError::decode(format!(
                    "expected object with field `{key}`, found {}",
                    other.kind()
                )))
            }
        }
        let value = self
            .get(key)
            .ok_or_else(|| JsonError::decode(format!("missing field `{key}`")))?;
        T::from_json(value).map_err(|e| e.in_context(&format!("field `{key}`")))
    }

    /// The value's kind as a lowercase noun, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}
