use crate::Json;
use std::fmt::Write as _;

impl Json {
    /// Renders compact JSON text.
    ///
    /// Output is deterministic: object keys appear in insertion order,
    /// floats use Rust's shortest round-trip formatting, and non-finite
    /// floats (which JSON cannot spell) are written as `null`.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Renders indented JSON text (two spaces per level).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }
}

fn write_value(out: &mut String, value: &Json, indent: Option<usize>, level: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Float(x) => write_float(out, *x),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Writes a float with Rust's `{}` formatting, which picks the shortest
/// decimal string that parses back to exactly the same bits. JSON has no
/// spelling for NaN or infinities, so those become `null` (float decoding
/// maps `null` back to NaN).
fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let text = format!("{x}");
        out.push_str(&text);
        // `{}` prints integral floats without a fraction ("2"); that text
        // would re-parse as Json::Int. Keep the float-ness explicit so
        // round trips preserve the value kind.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
