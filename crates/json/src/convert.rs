use crate::{Json, JsonError};

/// Conversion into a [`Json`] value.
///
/// Implemented for the primitives the workspace persists; domain types get
/// their implementation from [`impl_json!`](crate::impl_json).
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes a value of this type from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Decode`] if `json` does not have the expected
    /// shape.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::decode(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::decode(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }

        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let raw = match json {
                    Json::Int(i) => *i,
                    // Accept integral floats: a foreign writer may emit
                    // `3.0` where we expect an integer.
                    Json::Float(x) if x.fract() == 0.0 && x.abs() < 2e18 => *x as i128,
                    other => {
                        return Err(JsonError::decode(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    JsonError::decode(format!(
                        "integer {raw} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            // Widening 0.1f32 to f64 directly would serialise as the exact
            // but unwieldy 0.10000000149011612. Going through the f32's
            // shortest decimal keeps the text minimal while still decoding
            // back to the identical f32.
            Json::Float(format!("{self}").parse::<f64>().expect("float reformat"))
        } else {
            Json::Float(*self as f64)
        }
    }
}

macro_rules! impl_json_float {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Float(*self as f64)
            }
        }
    )*};
}

impl_json_float!(f64);

macro_rules! impl_json_float_from {
    ($($ty:ty),*) => {$(
        impl FromJson for $ty {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                match json {
                    Json::Float(x) => Ok(*x as $ty),
                    Json::Int(i) => Ok(*i as $ty),
                    // The writer spells non-finite floats as `null`.
                    Json::Null => Ok(<$ty>::NAN),
                    other => Err(JsonError::decode(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_json_float_from!(f32, f64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Arr(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    T::from_json(item).map_err(|e| e.in_context(&format!("index {i}")))
                })
                .collect(),
            other => Err(JsonError::decode(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items = match json {
            Json::Arr(items) if items.len() == N => items,
            Json::Arr(items) => {
                return Err(JsonError::decode(format!(
                    "expected {N}-element array, found {} elements",
                    items.len()
                )))
            }
            other => {
                return Err(JsonError::decode(format!(
                    "expected array, found {}",
                    other.kind()
                )))
            }
        };
        let mut decoded = Vec::with_capacity(N);
        for (i, item) in items.iter().enumerate() {
            decoded.push(T::from_json(item).map_err(|e| e.in_context(&format!("index {i}")))?);
        }
        decoded
            .try_into()
            .map_err(|_| JsonError::decode("array length changed during decode"))
    }
}

macro_rules! impl_json_tuple {
    ($len:literal; $($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }

        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                match json {
                    Json::Arr(items) if items.len() == $len => Ok((
                        $($name::from_json(&items[$idx])
                            .map_err(|e| e.in_context(&format!("tuple index {}", $idx)))?,)+
                    )),
                    Json::Arr(items) => Err(JsonError::decode(format!(
                        "expected {}-element array, found {} elements",
                        $len,
                        items.len()
                    ))),
                    other => Err(JsonError::decode(format!(
                        "expected array, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    };
}

impl_json_tuple!(2; A: 0, B: 1);
impl_json_tuple!(3; A: 0, B: 1, C: 2);
impl_json_tuple!(4; A: 0, B: 1, C: 2, D: 3);
