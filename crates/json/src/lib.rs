//! Zero-dependency JSON substrate for the Muffin workspace.
//!
//! The reproduction must build and test from a cold, air-gapped checkout,
//! so instead of `serde`/`serde_json` this crate provides the whole JSON
//! story in-repo:
//!
//! * [`Json`] — a small value model (null, bool, integer, float, string,
//!   array, object);
//! * [`parse`] — a strict recursive-descent parser whose errors carry the
//!   offending line and column;
//! * a writer ([`Json::to_string`], [`Json::to_string_pretty`]) with
//!   deterministic key ordering (insertion order, which for the
//!   [`impl_json!`] macros is field-declaration order) and float formatting
//!   that round-trips exactly;
//! * [`ToJson`]/[`FromJson`] — the conversion traits every persisted type
//!   in the workspace implements, usually through [`impl_json!`].
//!
//! Integers are stored as `i128` so the full `u64`/`i64` ranges (seeds,
//! parameter counts) survive a round trip without the precision loss a
//! double-only model would impose. Non-finite floats have no JSON spelling;
//! the writer emits `null` for them and float decoding maps `null` back to
//! `NaN`, keeping round trips total.
//!
//! # Example
//!
//! ```
//! use muffin_json::{FromJson, Json, ToJson};
//!
//! let v: Vec<f32> = vec![1.5, -0.25];
//! let text = muffin_json::to_string(&v);
//! assert_eq!(text, "[1.5,-0.25]");
//! let back: Vec<f32> = muffin_json::from_str(&text).unwrap();
//! assert_eq!(back, v);
//! ```

mod convert;
mod error;
mod macros;
mod parser;
mod value;
mod writer;

pub use convert::{FromJson, ToJson};
pub use error::JsonError;
pub use parser::parse;
pub use value::Json;

/// Serialises any [`ToJson`] value to compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Serialises any [`ToJson`] value to indented JSON text.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

/// Parses JSON text and decodes it into any [`FromJson`] type.
///
/// # Errors
///
/// Returns [`JsonError::Parse`] (with line/column) if the text is not
/// valid JSON and [`JsonError::Decode`] if the value does not have the
/// shape `T` expects.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}
