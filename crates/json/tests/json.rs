//! Unit tests for the JSON substrate: parser strictness, line/column
//! error reporting, writer determinism, float round-tripping and the
//! `impl_json!` macro shapes.

use muffin_json::{impl_json, parse, FromJson, Json, JsonError, ToJson};

fn parse_err(text: &str) -> (usize, usize, String) {
    match parse(text) {
        Err(JsonError::Parse {
            line,
            column,
            message,
        }) => (line, column, message),
        other => panic!("expected parse error for {text:?}, got {other:?}"),
    }
}

#[test]
fn parses_scalars() {
    assert_eq!(parse("null").unwrap(), Json::Null);
    assert_eq!(parse("true").unwrap(), Json::Bool(true));
    assert_eq!(parse("false").unwrap(), Json::Bool(false));
    assert_eq!(parse("42").unwrap(), Json::Int(42));
    assert_eq!(parse("-7").unwrap(), Json::Int(-7));
    assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
    assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    assert_eq!(parse("-1.25e-2").unwrap(), Json::Float(-0.0125));
    assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
}

#[test]
fn parses_nested_structures() {
    let v = parse(r#"{"a": [1, 2.0, {"b": null}], "c": "x"}"#).unwrap();
    assert_eq!(v.get("c"), Some(&Json::Str("x".into())));
    match v.get("a") {
        Some(Json::Arr(items)) => {
            assert_eq!(items[0], Json::Int(1));
            assert_eq!(items[1], Json::Float(2.0));
            assert_eq!(items[2].get("b"), Some(&Json::Null));
        }
        other => panic!("expected array, got {other:?}"),
    }
}

#[test]
fn integers_beyond_f64_precision_survive() {
    let seed = u64::MAX - 3;
    let text = muffin_json::to_string(&seed);
    let back: u64 = muffin_json::from_str(&text).unwrap();
    assert_eq!(back, seed);
}

#[test]
fn string_escapes_round_trip() {
    let s = "line1\nline2\ttab \"quoted\" back\\slash \u{0007} unicode: ✓ 🦀".to_owned();
    let text = muffin_json::to_string(&s);
    let back: String = muffin_json::from_str(&text).unwrap();
    assert_eq!(back, s);
}

#[test]
fn unicode_escapes_parse_including_surrogates() {
    assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
    assert_eq!(parse(r#""🦀""#).unwrap(), Json::Str("🦀".into()));
    let (_, _, msg) = parse_err(r#""\ud83e""#);
    assert!(msg.contains("surrogate"), "{msg}");
}

#[test]
fn errors_carry_line_and_column() {
    // The bad literal starts at line 2, column 8.
    let (line, column, _) = parse_err("{\n  \"a\": nul\n}");
    assert_eq!((line, column), (2, 8));

    let (line, column, msg) = parse_err("[1, 2,\n 3,,4]");
    assert_eq!(line, 2);
    assert_eq!(column, 4);
    assert!(msg.contains("unexpected character"), "{msg}");

    let (line, _, _) = parse_err("{\"a\": 1\n\"b\": 2}");
    assert_eq!(line, 2);
}

#[test]
fn rejects_trailing_garbage_and_partial_documents() {
    assert!(parse("{} x").is_err());
    assert!(parse("{\"a\":").is_err());
    assert!(parse("[1, 2").is_err());
    assert!(parse("\"unterminated").is_err());
    assert!(parse("").is_err());
    assert!(parse("01").is_err(), "leading zeros are not JSON");
    assert!(parse("1.").is_err());
    assert!(parse("+1").is_err());
    assert!(parse("{'a': 1}").is_err(), "single quotes are not JSON");
    assert!(parse("[1,]").is_err(), "trailing commas are not JSON");
}

#[test]
fn rejects_pathological_nesting() {
    let deep = "[".repeat(10_000) + &"]".repeat(10_000);
    let err = parse(&deep).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}

#[test]
fn writer_is_deterministic_and_reparses() {
    let mut obj = Json::object();
    obj.insert("zeta", Json::Int(1));
    obj.insert("alpha", Json::Arr(vec![Json::Bool(true), Json::Null]));
    let text = obj.to_string();
    // Insertion order, not alphabetical: the order every run produces.
    assert_eq!(text, r#"{"zeta":1,"alpha":[true,null]}"#);
    assert_eq!(parse(&text).unwrap(), obj);
    // Pretty output reparses to the same value.
    assert_eq!(parse(&obj.to_string_pretty()).unwrap(), obj);
}

#[test]
fn floats_round_trip_exactly() {
    for &x in &[
        0.0f64,
        -0.0,
        1.0,
        -1.5,
        0.1,
        1.0 / 3.0,
        f64::MIN_POSITIVE,
        f64::MAX,
        std::f64::consts::PI,
        1e-300,
        -2.2250738585072014e-308,
    ] {
        let text = muffin_json::to_string(&x);
        let back: f64 = muffin_json::from_str(&text).unwrap();
        assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
    }
    for &x in &[0.1f32, 3.4028235e38, -1.1754944e-38, 7.25] {
        let text = muffin_json::to_string(&x);
        let back: f32 = muffin_json::from_str(&text).unwrap();
        assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
    }
}

#[test]
fn non_finite_floats_become_null_and_decode_as_nan() {
    assert_eq!(muffin_json::to_string(&f64::NAN), "null");
    assert_eq!(muffin_json::to_string(&f64::INFINITY), "null");
    let back: f32 = muffin_json::from_str("null").unwrap();
    assert!(back.is_nan());
}

#[test]
fn integral_floats_keep_their_kind() {
    // 2.0 must not collapse to the integer 2 across a round trip.
    let text = muffin_json::to_string(&2.0f64);
    assert_eq!(text, "2.0");
    assert_eq!(parse(&text).unwrap(), Json::Float(2.0));
}

#[test]
fn containers_round_trip() {
    let v: Vec<(usize, Vec<u16>)> = vec![(0, vec![1, 2]), (3, vec![])];
    let back: Vec<(usize, Vec<u16>)> = muffin_json::from_str(&muffin_json::to_string(&v)).unwrap();
    assert_eq!(back, v);

    let triples: Vec<(usize, u16, f32)> = vec![(1, 2, 0.5), (4, 5, -1.25)];
    let back: Vec<(usize, u16, f32)> =
        muffin_json::from_str(&muffin_json::to_string(&triples)).unwrap();
    assert_eq!(back, triples);

    let opt: Option<f32> = None;
    assert_eq!(muffin_json::to_string(&opt), "null");
    let back: Option<f32> = muffin_json::from_str("2.5").unwrap();
    assert_eq!(back, Some(2.5));
}

#[test]
fn fixed_arrays_round_trip_and_check_length() {
    // The checkpoint stores the xoshiro256++ state as a [u64; 4].
    let state: [u64; 4] = [u64::MAX, 0, 0x9E37_79B9_7F4A_7C15, 42];
    let text = muffin_json::to_string(&state);
    let back: [u64; 4] = muffin_json::from_str(&text).unwrap();
    assert_eq!(back, state);

    let err = muffin_json::from_str::<[u64; 4]>("[1,2,3]").unwrap_err();
    assert!(err.to_string().contains("4-element"), "{err}");
    assert!(muffin_json::from_str::<[u64; 2]>("7").is_err());
}

#[test]
fn decode_errors_name_the_field_path() {
    #[derive(Debug, PartialEq)]
    struct Inner {
        value: f32,
    }
    impl_json!(struct Inner { value });

    #[derive(Debug, PartialEq)]
    struct Outer {
        items: Vec<Inner>,
    }
    impl_json!(struct Outer { items });

    let err =
        muffin_json::from_str::<Outer>(r#"{"items": [{"value": 1.0}, {"wrong": 2}]}"#).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("items"), "{msg}");
    assert!(msg.contains("index 1"), "{msg}");
    assert!(msg.contains("value"), "{msg}");

    let err = muffin_json::from_str::<Outer>("[]").unwrap_err();
    assert!(err.to_string().contains("expected object"), "{err}");
}

#[test]
fn macro_struct_and_newtype_round_trip() {
    #[derive(Debug, Clone, PartialEq)]
    struct Id(u64);
    impl_json!(newtype Id);

    #[derive(Debug, Clone, PartialEq)]
    struct Record {
        id: Id,
        name: String,
        scores: Vec<f32>,
        note: Option<String>,
    }
    impl_json!(struct Record { id, name, scores, note });

    let r = Record {
        id: Id(9),
        name: "r".into(),
        scores: vec![0.5, 1.5],
        note: None,
    };
    let text = muffin_json::to_string(&r);
    assert_eq!(
        text,
        r#"{"id":9,"name":"r","scores":[0.5,1.5],"note":null}"#
    );
    assert_eq!(muffin_json::from_str::<Record>(&text).unwrap(), r);
}

#[test]
fn macro_enums_round_trip() {
    #[derive(Debug, Clone, PartialEq)]
    enum Mode {
        Fast,
        Slow,
    }
    impl_json!(
        enum Mode {
            Fast,
            Slow,
        }
    );

    assert_eq!(muffin_json::to_string(&Mode::Slow), r#""Slow""#);
    assert_eq!(
        muffin_json::from_str::<Mode>(r#""Fast""#).unwrap(),
        Mode::Fast
    );
    assert!(muffin_json::from_str::<Mode>(r#""Medium""#).is_err());

    #[derive(Debug, Clone, PartialEq)]
    enum Schedule {
        Constant { lr: f32 },
        Nothing {},
    }
    impl_json!(tagged Schedule { Constant { lr }, Nothing {} });

    let s = Schedule::Constant { lr: 0.1 };
    let text = muffin_json::to_string(&s);
    assert_eq!(text, r#"{"Constant":{"lr":0.1}}"#);
    assert_eq!(muffin_json::from_str::<Schedule>(&text).unwrap(), s);
    let n = Schedule::Nothing {};
    assert_eq!(
        muffin_json::from_str::<Schedule>(&muffin_json::to_string(&n)).unwrap(),
        n
    );
    assert!(muffin_json::from_str::<Schedule>(r#"{"Unknown":{}}"#).is_err());
}

#[test]
fn out_of_range_integers_are_decode_errors() {
    assert!(muffin_json::from_str::<u16>("70000").is_err());
    assert!(muffin_json::from_str::<u32>("-1").is_err());
    // Integral float accepted where an integer is expected.
    assert_eq!(muffin_json::from_str::<u32>("3.0").unwrap(), 3);
    assert!(muffin_json::from_str::<u32>("3.5").is_err());
}
