//! Greedy input minimisation.
//!
//! [`Shrink::shrink_candidates`] proposes strictly "smaller" variants of a
//! failing input; the harness keeps the first candidate that still fails and
//! repeats until nothing smaller fails. Candidates are ordered
//! most-aggressive-first (e.g. "drop half the vector" before "drop one
//! element") so typical failures minimise in few steps.

use muffin_tensor::Matrix;

/// Types the harness knows how to minimise after a failure.
///
/// An implementation may return an empty list to opt out of shrinking —
/// the original failing input is then reported as-is.
pub trait Shrink: Clone {
    /// Proposes smaller variants of `self`, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_uint {
    ($($ty:ty),*) => {$(
        impl Shrink for $ty {
            fn shrink_candidates(&self) -> Vec<Self> {
                let n = *self;
                let mut out = Vec::new();
                if n == 0 {
                    return out;
                }
                out.push(0);
                if n / 2 > 0 {
                    out.push(n / 2);
                }
                out.push(n - 1);
                out.dedup();
                out
            }
        }
    )*};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_int {
    ($($ty:ty),*) => {$(
        impl Shrink for $ty {
            fn shrink_candidates(&self) -> Vec<Self> {
                let n = *self;
                let mut out = Vec::new();
                if n == 0 {
                    return out;
                }
                out.push(0);
                if n < 0 && n != <$ty>::MIN {
                    out.push(-n);
                }
                if n / 2 != 0 {
                    out.push(n / 2);
                }
                out.dedup();
                out
            }
        }
    )*};
}

impl_shrink_int!(i8, i16, i32, i64, isize);

macro_rules! impl_shrink_float {
    ($($ty:ty),*) => {$(
        impl Shrink for $ty {
            fn shrink_candidates(&self) -> Vec<Self> {
                let x = *self;
                if x == 0.0 || !x.is_finite() {
                    return Vec::new();
                }
                let mut out = vec![0.0];
                if x < 0.0 {
                    out.push(-x);
                }
                let half = x / 2.0;
                if half != 0.0 && half != x {
                    out.push(half);
                }
                if x.fract() != 0.0 {
                    out.push(x.trunc());
                }
                out
            }
        }
    )*};
}

impl_shrink_float!(f32, f64);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Shrink> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        // Structural shrinks first: shorter vectors fail faster to minimise.
        if n > 0 {
            out.push(Vec::new());
        }
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
            for i in 0..n {
                let mut shorter = self.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Then element-wise shrinks at the current length.
        for (i, item) in self.iter().enumerate() {
            for candidate in item.shrink_candidates() {
                let mut copy = self.clone();
                copy[i] = candidate;
                out.push(copy);
            }
        }
        out
    }
}

impl<A: Shrink, B: Shrink> Shrink for (A, B) {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink_candidates() {
            out.push((a, self.1.clone()));
        }
        for b in self.1.shrink_candidates() {
            out.push((self.0.clone(), b));
        }
        out
    }
}

impl<A: Shrink, B: Shrink, C: Shrink> Shrink for (A, B, C) {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink_candidates() {
            out.push((a, self.1.clone(), self.2.clone()));
        }
        for b in self.1.shrink_candidates() {
            out.push((self.0.clone(), b, self.2.clone()));
        }
        for c in self.2.shrink_candidates() {
            out.push((self.0.clone(), self.1.clone(), c));
        }
        out
    }
}

impl<A: Shrink, B: Shrink, C: Shrink, D: Shrink> Shrink for (A, B, C, D) {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink_candidates() {
            out.push((a, self.1.clone(), self.2.clone(), self.3.clone()));
        }
        for b in self.1.shrink_candidates() {
            out.push((self.0.clone(), b, self.2.clone(), self.3.clone()));
        }
        for c in self.2.shrink_candidates() {
            out.push((self.0.clone(), self.1.clone(), c, self.3.clone()));
        }
        for d in self.3.shrink_candidates() {
            out.push((self.0.clone(), self.1.clone(), self.2.clone(), d));
        }
        out
    }
}

impl Shrink for String {
    fn shrink_candidates(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        let n = chars.len();
        let mut out = Vec::new();
        if n > 0 {
            out.push(String::new());
        }
        if n > 1 {
            out.push(chars[..n / 2].iter().collect());
            out.push(chars[n / 2..].iter().collect());
        }
        out
    }
}

fn submatrix(m: &Matrix, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> =
        (0..rows).flat_map(|r| (0..cols).map(move |c| m.get(r, c))).collect();
    Matrix::from_vec(rows, cols, data).expect("submatrix shape is consistent")
}

impl Shrink for Matrix {
    fn shrink_candidates(&self) -> Vec<Self> {
        let (rows, cols) = self.shape();
        let mut out = Vec::new();
        // Shape shrinks: top-left submatrices (most layers reject 0-sized
        // matrices, so never propose an empty dimension).
        if rows > 1 {
            out.push(submatrix(self, rows / 2, cols));
            out.push(submatrix(self, rows - 1, cols));
        }
        if cols > 1 {
            out.push(submatrix(self, rows, cols / 2));
            out.push(submatrix(self, rows, cols - 1));
        }
        // Value shrink: everything to zero (shape-dependent failures keep
        // reproducing; value-dependent failures stop, keeping the values).
        if (0..rows).any(|r| (0..cols).any(|c| self.get(r, c) != 0.0)) {
            out.push(Matrix::zeros(rows, cols));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_shrinks_toward_zero() {
        assert_eq!(100usize.shrink_candidates(), vec![0, 50, 99]);
        assert!(0usize.shrink_candidates().is_empty());
        assert_eq!(1usize.shrink_candidates(), vec![0]);
    }

    #[test]
    fn float_shrinks_toward_zero_and_integral() {
        let c = 6.5f32.shrink_candidates();
        assert!(c.contains(&0.0));
        assert!(c.contains(&3.25));
        assert!(c.contains(&6.0));
        assert!(f32::NAN.shrink_candidates().is_empty());
        assert!((-2.0f32).shrink_candidates().contains(&2.0));
    }

    #[test]
    fn vec_shrinks_shorter_first() {
        let v = vec![3usize, 7];
        let c = v.shrink_candidates();
        assert_eq!(c[0], Vec::<usize>::new());
        assert!(c.contains(&vec![3]));
        assert!(c.contains(&vec![7]));
        assert!(c.contains(&vec![0, 7]));
    }

    #[test]
    fn matrix_shrinks_shape_and_values() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = m.shrink_candidates();
        assert!(c.iter().any(|x| x.shape() == (1, 3)));
        assert!(c.iter().any(|x| x.shape() == (2, 1)));
        assert!(c.iter().any(|x| x.shape() == (2, 2)));
        assert!(c.iter().any(|x| {
            x.shape() == (2, 3) && (0..2).all(|r| (0..3).all(|cc| x.get(r, cc) == 0.0))
        }));
        // Submatrices preserve the top-left entries.
        let top = c.iter().find(|x| x.shape() == (1, 3)).unwrap();
        assert_eq!((top.get(0, 0), top.get(0, 2)), (1.0, 3.0));
    }
}
