//! Seeded property-test harness for the Muffin workspace.
//!
//! `muffin-check` replaces the external `proptest` dependency with a small,
//! fully deterministic engine built on the workspace's own
//! [`Rng64`]:
//!
//! - every case is generated from a seed derived as `SplitMix64(run_seed,
//!   case_index)`, so any failure is reproducible from the numbers in the
//!   panic message alone;
//! - failing inputs are greedily shrunk through the [`Shrink`] trait before
//!   being reported;
//! - properties return `Result<(), String>` and use the
//!   [`prop_assert!`]/[`prop_assert_eq!`] macros, so a failure carries a
//!   message instead of unwinding mid-generator.
//!
//! # Example
//!
//! ```
//! use muffin_check::{check, prop_assert_eq, Config, Gen};
//!
//! check("reverse twice is identity", Config::default(), |g: &mut Gen| {
//!     g.vec_f32(0..=16, -1.0, 1.0)
//! }, |v| {
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     prop_assert_eq!(&w, v);
//!     Ok(())
//! });
//! ```

use muffin_tensor::{Matrix, Rng64};

mod shrink;

pub use shrink::Shrink;

/// Controls how many cases a property runs and how failures are minimised.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Seed of the whole run; each case derives its own sub-seed from it.
    pub seed: u64,
    /// Upper bound on shrinking steps once a counterexample is found.
    pub max_shrinks: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 64,
            seed: 0x4D55_4646_494E,
            max_shrinks: 2048,
        }
    }
}

impl Config {
    /// Convenience constructor matching the old `proptest` `cases` knob.
    pub fn cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// Returns a copy with the given run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// SplitMix64 finalizer: mixes a run seed with a case index into an
/// independent per-case seed.
fn case_seed(run_seed: u64, case: u32) -> u64 {
    let mut z = run_seed.wrapping_add((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Source of random test inputs handed to generator closures.
///
/// Thin wrapper over [`Rng64`] with the ranged helpers that proptest-style
/// strategies used to provide.
pub struct Gen {
    rng: Rng64,
}

impl Gen {
    /// Creates a generator from an explicit seed (what `check` does per case).
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: Rng64::seed(seed),
        }
    }

    /// Direct access to the underlying RNG for domain-specific sampling.
    pub fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    /// Uniform `usize` in the inclusive range.
    pub fn usize_in(&mut self, range: std::ops::RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.rng.below(hi - lo + 1)
    }

    /// Uniform `u64` over the full range.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u16` in the inclusive range.
    pub fn u16_in(&mut self, range: std::ops::RangeInclusive<u16>) -> u16 {
        self.usize_in(*range.start() as usize..=*range.end() as usize) as u16
    }

    /// Uniform finite `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.uniform(lo, hi)
    }

    /// Standard normal `f32`.
    pub fn normal(&mut self) -> f32 {
        self.rng.normal()
    }

    /// Bernoulli draw with probability `p`.
    pub fn bool(&mut self, p: f32) -> bool {
        self.rng.chance(p)
    }

    /// Vector of uniform `f32` values with a length drawn from `len`.
    pub fn vec_f32(&mut self, len: std::ops::RangeInclusive<usize>, lo: f32, hi: f32) -> Vec<f32> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.f32_in(lo, hi)).collect()
    }

    /// Vector of `usize` values, each drawn from `each`.
    pub fn vec_usize(
        &mut self,
        len: std::ops::RangeInclusive<usize>,
        each: std::ops::RangeInclusive<usize>,
    ) -> Vec<usize> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.usize_in(each.clone())).collect()
    }

    /// Matrix with uniformly drawn entries and shape drawn from the ranges.
    pub fn matrix(
        &mut self,
        rows: std::ops::RangeInclusive<usize>,
        cols: std::ops::RangeInclusive<usize>,
        lo: f32,
        hi: f32,
    ) -> Matrix {
        let (r, c) = (self.usize_in(rows), self.usize_in(cols));
        let data: Vec<f32> = (0..r * c).map(|_| self.f32_in(lo, hi)).collect();
        Matrix::from_vec(r, c, data).expect("generated shape is consistent")
    }

    /// Matrix with a fixed shape.
    pub fn matrix_exact(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        self.matrix(rows..=rows, cols..=cols, lo, hi)
    }
}

/// Runs `prop` against `config.cases` inputs drawn from `gen`.
///
/// On failure the input is shrunk via [`Shrink`] and the panic message
/// reports the property name, case index, per-case seed and the minimal
/// counterexample — everything needed to replay the failure with
/// [`Gen::from_seed`].
///
/// # Panics
///
/// Panics if any case fails (after shrinking).
pub fn check<T, G, P>(name: &str, config: Config, mut gen: G, mut prop: P)
where
    T: Shrink + std::fmt::Debug,
    G: FnMut(&mut Gen) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    // A property that panics (index out of bounds, shape mismatch, ...) is
    // as much a counterexample as one that returns Err — catch it so the
    // report still carries the seed and the shrunk input.
    let mut prop = move |input: &T| -> Result<(), String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(input))).unwrap_or_else(
            |payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_owned());
                Err(format!("property panicked: {msg}"))
            },
        )
    };
    for case in 0..config.cases {
        let seed = case_seed(config.seed, case);
        let input = gen(&mut Gen::from_seed(seed));
        if let Err(first_failure) = prop(&input) {
            let (minimal, message, steps) =
                shrink_failure(input, first_failure, config.max_shrinks, &mut prop);
            panic!(
                "property '{name}' failed\n  case: {case}/{total} (run seed {run_seed:#x}, \
                 case seed {seed:#x})\n  after {steps} shrink steps\n  minimal input: \
                 {minimal:?}\n  failure: {message}",
                total = config.cases,
                run_seed = config.seed,
            );
        }
    }
}

/// Greedy shrink loop: repeatedly take the first candidate that still fails
/// until no candidate fails or the step budget runs out.
fn shrink_failure<T, P>(
    mut input: T,
    mut message: String,
    max_shrinks: u32,
    prop: &mut P,
) -> (T, String, u32)
where
    T: Shrink + std::fmt::Debug,
    P: FnMut(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_shrinks {
        for candidate in input.shrink_candidates() {
            steps += 1;
            if let Err(m) = prop(&candidate) {
                input = candidate;
                message = m;
                continue 'outer;
            }
            if steps >= max_shrinks {
                break;
            }
        }
        break;
    }
    (input, message, steps)
}

/// Asserts a condition inside a property, returning `Err` with the condition
/// text (and optional formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n  right: {r:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} — {}\n  left: {l:?}\n  right: {r:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {l:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Asserts two floats agree within an absolute tolerance.
#[macro_export]
macro_rules! prop_assert_close {
    ($left:expr, $right:expr, $tol:expr) => {{
        let (l, r, t) = ($left as f64, $right as f64, $tol as f64);
        if !((l - r).abs() <= t) {
            return Err(format!(
                "assertion failed: |{} - {}| <= {t}\n  left: {l}\n  right: {r}\n  delta: {}",
                stringify!($left),
                stringify!($right),
                (l - r).abs()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        check(
            "count",
            Config::cases(17),
            |g| g.usize_in(0..=100),
            |_| {
                ran += 1;
                Ok(())
            },
        );
        assert_eq!(ran, 17);
    }

    #[test]
    fn same_seed_generates_identical_inputs() {
        let mut first: Vec<Vec<f32>> = Vec::new();
        check(
            "collect-a",
            Config::default(),
            |g| g.vec_f32(0..=8, -1.0, 1.0),
            |v| {
                first.push(v.clone());
                Ok(())
            },
        );
        let mut second: Vec<Vec<f32>> = Vec::new();
        check(
            "collect-b",
            Config::default(),
            |g| g.vec_f32(0..=8, -1.0, 1.0),
            |v| {
                second.push(v.clone());
                Ok(())
            },
        );
        assert_eq!(first, second);
    }

    #[test]
    fn failing_property_panics_with_seed_and_minimal_input() {
        let result = std::panic::catch_unwind(|| {
            check(
                "fails-over-100",
                Config::cases(64),
                |g| g.usize_in(0..=1000),
                |&n| {
                    prop_assert!(n <= 100, "n was {n}");
                    Ok(())
                },
            );
        });
        let panic = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(panic.contains("fails-over-100"), "{panic}");
        assert!(panic.contains("case seed"), "{panic}");
        // Shrinking drives the counterexample down to the boundary.
        assert!(panic.contains("minimal input: 101"), "{panic}");
    }

    #[test]
    fn vec_failures_shrink_to_minimal_length() {
        let result = std::panic::catch_unwind(|| {
            check(
                "no-negatives",
                Config::default(),
                |g| g.vec_f32(0..=32, -1.0, 1.0),
                |v| {
                    prop_assert!(v.iter().all(|&x| x >= 0.0));
                    Ok(())
                },
            );
        });
        let panic = *result.unwrap_err().downcast::<String>().unwrap();
        // A single offending element survives shrinking.
        assert!(panic.contains("minimal input: ["), "{panic}");
        let open = panic.find("minimal input: [").unwrap();
        let close = panic[open..].find(']').unwrap() + open;
        let inner = &panic[open + "minimal input: [".len()..close];
        assert!(
            !inner.contains(','),
            "expected 1-element vec, got [{inner}]"
        );
    }

    #[test]
    fn panicking_property_reports_seed_instead_of_escaping() {
        let result = std::panic::catch_unwind(|| {
            check(
                "panics-on-big",
                Config::cases(32),
                |g| g.usize_in(0..=50),
                |&n| {
                    assert!(n < 40, "boom {n}");
                    Ok(())
                },
            );
        });
        let panic = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(panic.contains("property panicked"), "{panic}");
        assert!(panic.contains("case seed"), "{panic}");
        assert!(panic.contains("minimal input: 40"), "{panic}");
    }

    #[test]
    fn matrix_generator_respects_shape_bounds() {
        check(
            "matrix-shape",
            Config::cases(32),
            |g| g.matrix(1..=5, 2..=7, -1.0, 1.0),
            |m| {
                let (r, c) = m.shape();
                prop_assert!((1..=5).contains(&r));
                prop_assert!((2..=7).contains(&c));
                Ok(())
            },
        );
    }

    #[test]
    fn case_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..256).map(|i| case_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
