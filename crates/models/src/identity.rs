//! Content-addressed model identity: stable per-model ids, the ordered
//! [`PoolManifest`], and the pool-relation classifier that tells a safe
//! pool *extension* apart from a genuine pool *change*.
//!
//! Muffin unites *off-the-shelf* models, and off-the-shelf pools evolve:
//! new backbones arrive, stale ones retire. Search artifacts (checkpoints,
//! eval caches) must survive the safe edits and reject the unsafe ones
//! with a message that names the models involved. The unit of identity is
//! the [`fnv1a64`] hash of a model's own serialised bytes — two models are
//! the same exactly when they would behave identically, regardless of
//! where they sit in the pool.

use crate::{FrozenModel, ModelPool};

/// The 64-bit FNV-1a hash: the repository's canonical content hash, used
/// for per-model identity here and for pool/data fingerprints in
/// `muffin-core`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Renders a model id the way every operator-facing message spells it:
/// sixteen lowercase hex digits.
pub fn format_model_id(id: u64) -> String {
    format!("{id:016x}")
}

/// One manifest entry: a model's name and its content id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelIdentity {
    /// The model's human-facing name (architecture name).
    pub name: String,
    /// [`fnv1a64`] over the model's serialised JSON bytes.
    pub id: u64,
}

muffin_json::impl_json!(struct ModelIdentity { name, id });

impl std::fmt::Display for ModelIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (id {})", self.name, format_model_id(self.id))
    }
}

/// The ordered list of model identities in a pool.
///
/// The manifest is what search artifacts record about the pool they were
/// built against: enough to recognise the same pool later, to detect a
/// pure extension, and to name exactly which models differ otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolManifest {
    entries: Vec<ModelIdentity>,
}

muffin_json::impl_json!(struct PoolManifest { entries });

impl PoolManifest {
    /// Builds a manifest from explicit entries (tests, tooling).
    pub fn new(entries: Vec<ModelIdentity>) -> Self {
        Self { entries }
    }

    /// The ordered entries.
    pub fn entries(&self) -> &[ModelIdentity] {
        &self.entries
    }

    /// Number of models recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest records no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at pool index `index`, if any.
    pub fn get(&self, index: usize) -> Option<&ModelIdentity> {
        self.entries.get(index)
    }

    /// Pool index of the model with content id `id`, if present.
    pub fn index_of_id(&self, id: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    /// The entry with name `name`, if present.
    pub fn by_name(&self, name: &str) -> Option<&ModelIdentity> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Classifies how this (older) manifest relates to `new`.
    pub fn relation_to(&self, new: &Self) -> PoolRelation {
        if self.entries == new.entries {
            return PoolRelation::Identical;
        }
        if new.entries.len() > self.entries.len()
            && new.entries[..self.entries.len()] == self.entries[..]
        {
            return PoolRelation::Grew {
                added: new.entries[self.entries.len()..].to_vec(),
            };
        }
        let mutated: Vec<ModelIdentity> = self
            .entries
            .iter()
            .filter(|old| new.by_name(&old.name).is_some_and(|n| n.id != old.id))
            .cloned()
            .collect();
        let removed: Vec<ModelIdentity> = self
            .entries
            .iter()
            .filter(|old| new.by_name(&old.name).is_none())
            .cloned()
            .collect();
        let added: Vec<ModelIdentity> = new
            .entries
            .iter()
            .filter(|n| self.by_name(&n.name).is_none())
            .cloned()
            .collect();
        PoolRelation::Changed {
            added,
            removed,
            mutated,
        }
    }
}

/// How a newer pool relates to the one a search artifact was built
/// against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolRelation {
    /// Same models, same ids, same order.
    Identical,
    /// The old pool is a strict prefix of the new one: every recorded
    /// model is still at its old index and `added` models were appended.
    /// This is the safe shape `muffin pool add` produces — artifacts can
    /// be warm-resumed against it.
    Grew {
        /// The appended models, in pool order.
        added: Vec<ModelIdentity>,
    },
    /// Anything else: models were removed, retrained in place (same name,
    /// different id), inserted mid-pool, or reordered. Artifacts keyed by
    /// pool index are invalid against such a pool.
    Changed {
        /// Models present only in the new pool (by name).
        added: Vec<ModelIdentity>,
        /// Models present only in the old pool (by name).
        removed: Vec<ModelIdentity>,
        /// Models whose name survived but whose content id changed
        /// (reported with their **old** identity).
        mutated: Vec<ModelIdentity>,
    },
}

impl PoolRelation {
    /// A one-line operator-facing description of the relation, naming the
    /// models involved by name and id.
    pub fn describe(&self) -> String {
        fn list(entries: &[ModelIdentity]) -> String {
            entries
                .iter()
                .map(ModelIdentity::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            Self::Identical => "model pool is identical".to_string(),
            Self::Grew { added } => format!("model pool grew: added {}", list(added)),
            Self::Changed {
                added,
                removed,
                mutated,
            } => {
                let mut parts = Vec::new();
                if !added.is_empty() {
                    parts.push(format!("added {}", list(added)));
                }
                if !removed.is_empty() {
                    parts.push(format!("removed {}", list(removed)));
                }
                if !mutated.is_empty() {
                    parts.push(format!("mutated {}", list(mutated)));
                }
                if parts.is_empty() {
                    parts.push("models reordered or moved".to_string());
                }
                format!("model pool changed: {}", parts.join("; "))
            }
        }
    }
}

impl FrozenModel {
    /// The model's stable content id: [`fnv1a64`] over its own serialised
    /// JSON bytes. Independent of pool position; changes exactly when the
    /// model's behaviour-bearing bytes change.
    pub fn content_id(&self) -> u64 {
        fnv1a64(muffin_json::to_string(self).as_bytes())
    }

    /// The model's [`ModelIdentity`] (name + content id).
    pub fn identity(&self) -> ModelIdentity {
        ModelIdentity {
            name: self.name().to_string(),
            id: self.content_id(),
        }
    }
}

impl ModelPool {
    /// The pool's ordered [`PoolManifest`].
    pub fn manifest(&self) -> PoolManifest {
        PoolManifest {
            entries: self.iter().map(FrozenModel::identity).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    fn entry(name: &str, id: u64) -> ModelIdentity {
        ModelIdentity {
            name: name.to_string(),
            id,
        }
    }

    #[test]
    fn relation_classifies_identical_grown_and_changed_pools() {
        let old = PoolManifest::new(vec![entry("a", 1), entry("b", 2)]);
        assert_eq!(old.relation_to(&old), PoolRelation::Identical);

        let grown = PoolManifest::new(vec![entry("a", 1), entry("b", 2), entry("c", 3)]);
        assert_eq!(
            old.relation_to(&grown),
            PoolRelation::Grew {
                added: vec![entry("c", 3)]
            }
        );

        // Same models, swapped order: not a safe extension.
        let reordered = PoolManifest::new(vec![entry("b", 2), entry("a", 1)]);
        match old.relation_to(&reordered) {
            PoolRelation::Changed {
                added,
                removed,
                mutated,
            } => {
                assert!(added.is_empty() && removed.is_empty() && mutated.is_empty());
            }
            other => panic!("reorder must be Changed, got {other:?}"),
        }

        // Removal, retrain-in-place and addition are all named.
        let edited = PoolManifest::new(vec![entry("a", 9), entry("d", 4)]);
        let relation = old.relation_to(&edited);
        assert_eq!(
            relation,
            PoolRelation::Changed {
                added: vec![entry("d", 4)],
                removed: vec![entry("b", 2)],
                mutated: vec![entry("a", 1)],
            }
        );
        let msg = relation.describe();
        assert!(msg.contains("added d (id 0000000000000004)"), "{msg}");
        assert!(msg.contains("removed b (id 0000000000000002)"), "{msg}");
        assert!(msg.contains("mutated a (id 0000000000000001)"), "{msg}");
    }

    #[test]
    fn an_insertion_mid_pool_is_a_change_not_growth() {
        let old = PoolManifest::new(vec![entry("a", 1), entry("b", 2)]);
        let inserted = PoolManifest::new(vec![entry("a", 1), entry("c", 3), entry("b", 2)]);
        match old.relation_to(&inserted) {
            PoolRelation::Changed { added, .. } => assert_eq!(added, vec![entry("c", 3)]),
            other => panic!("mid-pool insertion must be Changed, got {other:?}"),
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let manifest = PoolManifest::new(vec![entry("a", u64::MAX), entry("b", 0)]);
        let json = muffin_json::to_string(&manifest);
        let back: PoolManifest = muffin_json::from_str(&json).expect("parse");
        assert_eq!(manifest, back);
    }
}
