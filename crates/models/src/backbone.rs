use crate::{Architecture, FrozenModel};
use muffin_data::Dataset;
use muffin_nn::{ClassifierTrainer, LossKind, LrSchedule, Mlp, MlpSpec};
use muffin_tensor::{Init, Matrix, Rng64};

/// Training configuration for the simulated off-the-shelf backbones.
///
/// The paper trains every competitor "from scratch with the same
/// hyperparameters": learning rate 0.1 decaying ×0.9 every 20 steps, batch
/// size 64 — which [`BackboneConfig::default`] mirrors at CPU scale.
///
/// # Example
///
/// ```
/// use muffin_models::BackboneConfig;
///
/// let cfg = BackboneConfig::default();
/// assert_eq!(cfg.batch_size, 64);
/// ```
#[derive(Debug, Clone)]
pub struct BackboneConfig {
    /// Training epochs.
    pub epochs: u32,
    /// Mini-batch size (the paper uses 64).
    pub batch_size: usize,
    /// Learning-rate schedule (the paper's step decay by default).
    pub schedule: LrSchedule,
}

muffin_json::impl_json!(struct BackboneConfig { epochs, batch_size, schedule });

impl Default for BackboneConfig {
    fn default() -> Self {
        Self { epochs: 60, batch_size: 64, schedule: LrSchedule::paper() }
    }
}

impl BackboneConfig {
    /// A fast configuration for tests and examples (12 epochs).
    pub fn fast() -> Self {
        Self { epochs: 12, batch_size: 64, schedule: LrSchedule::paper() }
    }

    /// Overrides the epoch count.
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs;
        self
    }
}

/// Trains one backbone: fixes the architecture's random projection, then
/// fits its MLP with cross-entropy on (optionally weighted/resampled)
/// training data.
///
/// `sample_weights` and `indices` are the hooks the fairness baselines
/// use: `indices` resamples the training set (data balancing, method D)
/// and `sample_weights` reweights the loss (fair loss, method L).
pub(crate) fn train_backbone(
    name: String,
    architecture: &Architecture,
    train: &Dataset,
    config: &BackboneConfig,
    sample_weights: Option<&[f32]>,
    indices: Option<&[usize]>,
    rng: &mut Rng64,
) -> FrozenModel {
    // The projection is the architecture's fixed "view" of the features —
    // seeded by the architecture, not the experiment, so the same
    // architecture always looks at the data the same way. Distinct views
    // are what make pool members' errors complementary (Observation 3).
    let mut proj_rng = Rng64::seed(architecture.seed_offset().wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let projection = Matrix::random(
        train.feature_dim(),
        architecture.projection_dim(),
        Init::XavierUniform,
        &mut proj_rng,
    );

    let (features, labels, weights): (Matrix, Vec<usize>, Option<Vec<f32>>) = match indices {
        Some(idx) => {
            let f = train.features().select_rows(idx);
            let l = idx.iter().map(|&i| train.labels()[i]).collect();
            let w = sample_weights.map(|w| idx.iter().map(|&i| w[i]).collect());
            (f, l, w)
        }
        None => {
            (train.features().clone(), train.labels().to_vec(), sample_weights.map(<[f32]>::to_vec))
        }
    };
    let projected = features.matmul(&projection);

    let spec = MlpSpec::new(architecture.projection_dim(), architecture.hidden(), train.num_classes());
    let mut mlp = Mlp::new(&spec, rng);
    let trainer =
        ClassifierTrainer::new(config.epochs, config.batch_size).with_schedule(config.schedule);
    let loss = if weights.is_some() { LossKind::WeightedCrossEntropy } else { LossKind::CrossEntropy };
    trainer.fit(&mut mlp, &projected, &labels, weights.as_deref(), loss, rng);

    FrozenModel::from_parts(name, architecture.clone(), projection, mlp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::IsicLike;
    use muffin_nn::accuracy;

    #[test]
    fn backbone_learns_above_chance() {
        let mut rng = Rng64::seed(5);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let model = train_backbone(
            "test".into(),
            &Architecture::resnet18(),
            &split.train,
            &BackboneConfig::fast(),
            None,
            None,
            &mut rng,
        );
        let acc = accuracy(&model.predict(split.test.features()), split.test.labels());
        assert!(acc > 0.3, "accuracy {acc} should beat 12.5% chance comfortably");
    }

    #[test]
    fn same_architecture_same_projection() {
        let mut rng = Rng64::seed(6);
        let ds = IsicLike::small().generate(&mut rng);
        let a = train_backbone(
            "a".into(),
            &Architecture::resnet18(),
            &ds,
            &BackboneConfig::fast().with_epochs(1),
            None,
            None,
            &mut Rng64::seed(1),
        );
        let b = train_backbone(
            "b".into(),
            &Architecture::resnet18(),
            &ds,
            &BackboneConfig::fast().with_epochs(1),
            None,
            None,
            &mut Rng64::seed(2),
        );
        // Different training seeds, same architecture: identical projection.
        let x = Matrix::filled(1, ds.feature_dim(), 1.0);
        assert_eq!(a.project(&x), b.project(&x));
    }

    #[test]
    fn different_architectures_see_different_views() {
        let mut rng = Rng64::seed(7);
        let ds = IsicLike::small().generate(&mut rng);
        let cfg = BackboneConfig::fast().with_epochs(1);
        let a = train_backbone(
            "a".into(),
            &Architecture::resnet18(),
            &ds,
            &cfg,
            None,
            None,
            &mut Rng64::seed(1),
        );
        let b = train_backbone(
            "b".into(),
            &Architecture::densenet121(),
            &ds,
            &cfg,
            None,
            None,
            &mut Rng64::seed(1),
        );
        let x = Matrix::filled(1, ds.feature_dim(), 1.0);
        assert_ne!(a.project(&x).row(0)[..4], b.project(&x).row(0)[..4]);
    }

    #[test]
    fn resampling_indices_changes_training_emphasis() {
        let mut rng = Rng64::seed(8);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        // Train only on class-0 samples: model should then heavily favor class 0.
        let only_zero: Vec<usize> = split
            .train
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(i, _)| i)
            .collect();
        let model = train_backbone(
            "skewed".into(),
            &Architecture::resnet18(),
            &split.train,
            &BackboneConfig::fast(),
            None,
            Some(&only_zero),
            &mut rng,
        );
        let preds = model.predict(split.test.features());
        let zero_rate = preds.iter().filter(|&&p| p == 0).count() as f32 / preds.len() as f32;
        assert!(zero_rate > 0.9, "zero rate {zero_rate}");
    }
}
