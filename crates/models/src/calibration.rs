//! Post-hoc confidence calibration of frozen models.
//!
//! The muffin head arbitrates disagreements *from the bodies' output
//! probabilities alone*, so how well those probabilities reflect true
//! correctness likelihood directly bounds what the head can learn.
//! Temperature scaling (Guo et al.'s classic recipe) is the standard
//! post-hoc fix: divide the logits by a scalar `T` fitted on held-out
//! data. `T > 1` softens over-confident models.

use crate::FrozenModel;
use muffin_data::Dataset;
use muffin_tensor::Matrix;

/// A fitted temperature for one frozen model.
///
/// # Example
///
/// ```
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, ModelPool, TemperatureScale};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(1);
/// let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::resnet18()],
///     &BackboneConfig::fast(),
///     &mut rng,
/// );
/// let scale = TemperatureScale::fit(pool.get(0).unwrap(), &split.val);
/// assert!(scale.temperature() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureScale {
    temperature: f32,
}

muffin_json::impl_json!(struct TemperatureScale { temperature });

impl TemperatureScale {
    /// The identity calibration (`T = 1`).
    pub fn identity() -> Self {
        Self { temperature: 1.0 }
    }

    /// Fits the temperature minimising negative log-likelihood of `model`
    /// on `holdout` by golden-section search over `T ∈ [0.25, 8]`.
    ///
    /// # Panics
    ///
    /// Panics if `holdout` is empty.
    pub fn fit(model: &FrozenModel, holdout: &Dataset) -> Self {
        assert!(!holdout.is_empty(), "cannot calibrate on an empty dataset");
        let probs = model.predict_proba(holdout.features());
        // Recover logits up to an additive constant: log p works because
        // softmax is shift-invariant.
        let logits = probs.map(|p| p.max(1e-12).ln());
        let nll = |t: f32| -> f32 {
            let scaled = logits.scaled(1.0 / t).log_softmax_rows();
            -holdout
                .labels()
                .iter()
                .enumerate()
                .map(|(i, &label)| scaled.get(i, label))
                .sum::<f32>()
                / holdout.len() as f32
        };
        // Golden-section search on the unimodal NLL(T).
        let (mut lo, mut hi) = (0.25f32, 8.0f32);
        let phi = 0.618_034f32;
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let (mut f1, mut f2) = (nll(x1), nll(x2));
        for _ in 0..40 {
            if f1 < f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = nll(x1);
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = nll(x2);
            }
        }
        Self { temperature: 0.5 * (lo + hi) }
    }

    /// The fitted temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Applies the calibration to a probability matrix.
    pub fn apply(&self, probs: &Matrix) -> Matrix {
        if (self.temperature - 1.0).abs() < 1e-6 {
            return probs.clone();
        }
        probs.map(|p| p.max(1e-12).ln() / self.temperature).softmax_rows()
    }
}

/// Expected calibration error with `bins` equal-width confidence bins —
/// the standard measure of how trustworthy a model's confidence is.
///
/// # Panics
///
/// Panics if `bins == 0` or lengths disagree.
pub fn expected_calibration_error(probs: &Matrix, labels: &[usize], bins: usize) -> f32 {
    assert!(bins > 0, "need at least one bin");
    assert_eq!(probs.rows(), labels.len(), "probs/labels mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut bin_conf = vec![0.0f32; bins];
    let mut bin_acc = vec![0.0f32; bins];
    let mut bin_count = vec![0usize; bins];
    for (i, &label) in labels.iter().enumerate() {
        let row = probs.row(i);
        let pred = muffin_tensor::argmax(row);
        let conf = row[pred];
        let b = ((conf * bins as f32) as usize).min(bins - 1);
        bin_conf[b] += conf;
        bin_acc[b] += f32::from(pred == label);
        bin_count[b] += 1;
    }
    let n = labels.len() as f32;
    (0..bins)
        .filter(|&b| bin_count[b] > 0)
        .map(|b| {
            let count = bin_count[b] as f32;
            (bin_count[b] as f32 / n) * ((bin_acc[b] / count) - (bin_conf[b] / count)).abs()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Architecture, BackboneConfig, ModelPool};
    use muffin_data::IsicLike;
    use muffin_tensor::Rng64;

    fn fixture() -> (FrozenModel, muffin_data::DatasetSplit) {
        let mut rng = Rng64::seed(60);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        (pool.get(0).unwrap().clone(), split)
    }

    #[test]
    fn identity_is_a_noop() {
        let (model, split) = fixture();
        let probs = model.predict_proba(split.test.features());
        assert_eq!(TemperatureScale::identity().apply(&probs), probs);
    }

    #[test]
    fn calibration_preserves_predictions() {
        let (model, split) = fixture();
        let scale = TemperatureScale::fit(&model, &split.val);
        let probs = model.predict_proba(split.test.features());
        let calibrated = scale.apply(&probs);
        // Temperature scaling is rank-preserving.
        assert_eq!(probs.argmax_rows(), calibrated.argmax_rows());
        for row in calibrated.iter_rows() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn fitted_temperature_does_not_hurt_nll() {
        let (model, split) = fixture();
        let scale = TemperatureScale::fit(&model, &split.val);
        let probs = model.predict_proba(split.val.features());
        let nll = |p: &Matrix| -> f32 {
            -split
                .val
                .labels()
                .iter()
                .enumerate()
                .map(|(i, &l)| p.get(i, l).max(1e-12).ln())
                .sum::<f32>()
                / split.val.len() as f32
        };
        let before = nll(&probs);
        let after = nll(&scale.apply(&probs));
        assert!(after <= before + 1e-4, "calibration worsened NLL: {before} -> {after}");
    }

    #[test]
    fn ece_of_perfect_confident_model_is_zero() {
        // One-hot correct probabilities → confidence 1.0, accuracy 1.0.
        let probs = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let ece = expected_calibration_error(&probs, &[0, 1], 10);
        assert!(ece.abs() < 1e-6);
    }

    #[test]
    fn ece_detects_overconfidence() {
        // Always 99% confident but only 50% accurate.
        let probs = Matrix::from_rows(&[&[0.99, 0.01], &[0.99, 0.01]]).unwrap();
        let ece = expected_calibration_error(&probs, &[0, 1], 10);
        assert!((ece - 0.49).abs() < 0.01, "ece {ece}");
    }

    #[test]
    fn ece_of_empty_input_is_zero() {
        let probs = Matrix::zeros(0, 2);
        assert_eq!(expected_calibration_error(&probs, &[], 5), 0.0);
    }
}
