//! Off-the-shelf model pool and single-attribute fairness baselines for
//! the Muffin framework.
//!
//! The paper unites pre-trained CNNs (ResNet, DenseNet, MobileNet,
//! ShuffleNet). Rebuilding those on GPU-scale image data is out of scope
//! (see `DESIGN.md`), so this crate trains **projection-based backbones**:
//! each [`Architecture`] fixes a random feature projection (its
//! "inductive bias" — which view of the input the network gets) plus an
//! MLP whose capacity scales with the real CNN's size. What Muffin needs
//! from its model pool is exactly what these backbones reproduce:
//!
//! * accuracy that grows with model capacity,
//! * per-group accuracy gaps on the disadvantaged attributes,
//! * genuinely **complementary errors** between models (paper Observation
//!   3): different projections misread different hard samples, so pairs of
//!   models disagree on a meaningful fraction of unprivileged-group data.
//!
//! The crate also implements the two single-attribute fairness baselines
//! the paper compares against (Table I, Fig. 2):
//!
//! * **D** — data balancing via group-targeted oversampling, and
//! * **L** — a fair loss that up-weights unprivileged groups during
//!   training.
//!
//! # Example
//!
//! ```
//! use muffin_data::IsicLike;
//! use muffin_models::{Architecture, BackboneConfig, ModelPool};
//! use muffin_tensor::Rng64;
//!
//! let mut rng = Rng64::seed(1);
//! let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
//! let archs = [Architecture::resnet18(), Architecture::shufflenet_v2_x1_0()];
//! let pool = ModelPool::train(&split.train, &archs, &BackboneConfig::fast(), &mut rng);
//! assert_eq!(pool.len(), 2);
//! let eval = pool.get(0).expect("trained").evaluate(&split.test);
//! assert!(eval.accuracy > 0.2); // far above the 12.5% chance level
//! ```

mod architecture;
mod backbone;
mod baselines;
mod calibration;
mod ensemble;
mod evaluation;
mod frozen;
mod identity;
mod persist;
mod pool;

pub use architecture::{Architecture, ModelFamily};
pub use backbone::BackboneConfig;
pub use baselines::{FairnessMethod, MethodApplication};
pub use calibration::{expected_calibration_error, TemperatureScale};
pub use ensemble::{oracle_accuracy, Ensemble, EnsembleRule};
pub use evaluation::{
    unprivileged_by_accuracy, AttributeEvaluation, IntersectionEvaluation, ModelEvaluation,
};
pub use frozen::FrozenModel;
pub use identity::{fnv1a64, format_model_id, ModelIdentity, PoolManifest, PoolRelation};
pub use persist::PoolIoError;
pub use pool::ModelPool;
