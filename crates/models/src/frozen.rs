use crate::{Architecture, ModelEvaluation};
use muffin_data::Dataset;
use muffin_nn::Mlp;
use muffin_tensor::Matrix;
use std::fmt;

/// A trained, frozen off-the-shelf model.
///
/// Once trained by [`crate::ModelPool::train`] or a
/// [`crate::FairnessMethod`], the model is immutable: Muffin freezes pool
/// members and only ever *reads* their output probabilities (paper
/// component ② — "we will freeze the parameters in the pretrained
/// off-the-shelf models … and train parameters in MLP only").
///
/// # Example
///
/// ```
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, ModelPool};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(2);
/// let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::shufflenet_v2_x1_0()],
///     &BackboneConfig::fast(),
///     &mut rng,
/// );
/// let model = pool.get(0).expect("one model");
/// let probs = model.predict_proba(split.test.features());
/// assert_eq!(probs.cols(), split.test.num_classes());
/// ```
#[derive(Debug, Clone)]
pub struct FrozenModel {
    name: String,
    architecture: Architecture,
    projection: Matrix,
    mlp: Mlp,
}

muffin_json::impl_json!(struct FrozenModel { name, architecture, projection, mlp });

impl FrozenModel {
    /// Assembles a frozen model (used by the trainers in this crate).
    pub(crate) fn from_parts(
        name: String,
        architecture: Architecture,
        projection: Matrix,
        mlp: Mlp,
    ) -> Self {
        Self { name, architecture, projection, mlp }
    }

    /// Display name. Plain backbones use the architecture name; baseline
    /// retrainings append the method, e.g. `"DenseNet121+D(site)"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The architecture descriptor this model was trained from.
    pub fn architecture(&self) -> &Architecture {
        &self.architecture
    }

    /// Parameter count of the real CNN this model stands in for.
    pub fn reported_params(&self) -> u64 {
        self.architecture.reported_params()
    }

    /// Number of classes the model predicts.
    pub fn num_classes(&self) -> usize {
        self.mlp.spec().output_dim()
    }

    /// Projects raw features into this architecture's view.
    pub(crate) fn project(&self, features: &Matrix) -> Matrix {
        features.matmul(&self.projection)
    }

    /// Class-probability matrix for each feature row.
    ///
    /// # Panics
    ///
    /// Panics if `features.cols()` differs from the training feature
    /// dimension.
    pub fn predict_proba(&self, features: &Matrix) -> Matrix {
        self.mlp.predict_proba(&self.project(features))
    }

    /// Hard class predictions.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        self.mlp.predict(&self.project(features))
    }

    /// Class probabilities and hard predictions from a **single** backbone
    /// forward pass — byte-identical to calling [`FrozenModel::predict_proba`]
    /// and [`FrozenModel::predict`] separately (predictions come from the
    /// logits, so no softmax tie-breaking is involved).
    pub fn outputs(&self, features: &Matrix) -> (Matrix, Vec<usize>) {
        self.mlp.predict_outputs(&self.project(features))
    }

    /// Evaluates accuracy and per-attribute unfairness on `dataset`.
    pub fn evaluate(&self, dataset: &Dataset) -> ModelEvaluation {
        ModelEvaluation::of(&self.predict(dataset.features()), dataset, self.name.clone())
    }
}

impl fmt::Display for FrozenModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackboneConfig, ModelPool};
    use muffin_data::IsicLike;
    use muffin_tensor::Rng64;

    fn trained() -> (FrozenModel, muffin_data::DatasetSplit) {
        let mut rng = Rng64::seed(42);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        (pool.get(0).expect("one model").clone(), split)
    }

    #[test]
    fn predictions_align_with_probabilities() {
        let (model, split) = trained();
        let probs = model.predict_proba(split.test.features());
        let preds = model.predict(split.test.features());
        assert_eq!(probs.argmax_rows(), preds);
    }

    #[test]
    fn outputs_match_separate_calls_bit_for_bit() {
        let (model, split) = trained();
        let (probs, preds) = model.outputs(split.test.features());
        assert_eq!(preds, model.predict(split.test.features()));
        let separate = model.predict_proba(split.test.features());
        for (x, y) in probs.iter_rows().flatten().zip(separate.iter_rows().flatten()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn probabilities_are_distributions() {
        let (model, split) = trained();
        let probs = model.predict_proba(split.test.features());
        for row in probs.iter_rows() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn evaluation_reports_every_attribute() {
        let (model, split) = trained();
        let eval = model.evaluate(&split.test);
        assert_eq!(eval.attributes.len(), split.test.schema().len());
        assert!(eval.accuracy > 1.0 / 8.0, "above chance: {}", eval.accuracy);
    }

    #[test]
    fn name_and_params_come_from_architecture() {
        let (model, _) = trained();
        assert_eq!(model.name(), "ResNet-18");
        assert_eq!(model.reported_params(), 11_689_512);
        assert_eq!(model.num_classes(), 8);
    }
}
