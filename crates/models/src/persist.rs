//! Model-pool persistence.
//!
//! Training a full pool is the most expensive step of every experiment, so
//! pools can be serialised to JSON and reloaded — the frozen models carry
//! their projections and trained MLP weights verbatim.

use crate::ModelPool;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// Error raised when saving or loading a model pool.
#[derive(Debug)]
pub enum PoolIoError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file contents are not a valid serialised pool.
    Parse(String),
}

impl fmt::Display for PoolIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolIoError::Io(e) => write!(f, "pool io failed: {e}"),
            PoolIoError::Parse(msg) => write!(f, "pool parse failed: {msg}"),
        }
    }
}

impl Error for PoolIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PoolIoError::Io(e) => Some(e),
            PoolIoError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for PoolIoError {
    fn from(e: std::io::Error) -> Self {
        PoolIoError::Io(e)
    }
}

impl ModelPool {
    /// Serialises the pool (architectures, projections, trained weights)
    /// to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`PoolIoError::Io`] if the file cannot be written.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), PoolIoError> {
        let json = muffin_json::to_string(self);
        fs::write(path, json)?;
        Ok(())
    }

    /// Loads a pool previously written by [`ModelPool::save_json`].
    ///
    /// # Errors
    ///
    /// Returns [`PoolIoError::Io`] if the file cannot be read and
    /// [`PoolIoError::Parse`] if it is not a valid pool.
    pub fn load_json(path: impl AsRef<Path>) -> Result<ModelPool, PoolIoError> {
        let text = fs::read_to_string(path)?;
        muffin_json::from_str(&text).map_err(|e| PoolIoError::Parse(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Architecture, BackboneConfig, ModelPool};
    use muffin_data::IsicLike;
    use muffin_tensor::Rng64;

    #[test]
    fn pool_round_trips_with_identical_predictions() {
        let mut rng = Rng64::seed(70);
        let split = IsicLike::small().with_num_samples(300).generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::shufflenet_v2_x1_0()],
            &BackboneConfig::fast().with_epochs(3),
            &mut rng,
        );
        let dir = std::env::temp_dir().join("muffin_pool_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("pool.json");
        pool.save_json(&path).expect("save");
        let loaded = ModelPool::load_json(&path).expect("load");
        assert_eq!(loaded.len(), pool.len());
        let a = pool.get(0).unwrap().predict(split.test.features());
        let b = loaded.get(0).unwrap().predict(split.test.features());
        assert_eq!(a, b, "reloaded pool must predict identically");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = ModelPool::load_json("/nonexistent/pool.json").unwrap_err();
        assert!(matches!(err, PoolIoError::Io(_)));
    }

    #[test]
    fn garbage_is_parse_error() {
        let dir = std::env::temp_dir().join("muffin_pool_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("garbage.json");
        std::fs::write(&path, "[not a pool]").expect("write");
        let err = ModelPool::load_json(&path).unwrap_err();
        assert!(matches!(err, PoolIoError::Parse(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_pool_error_carries_line_and_column() {
        let dir = std::env::temp_dir().join("muffin_pool_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("malformed.json");
        // Unterminated object opens on line 2.
        std::fs::write(&path, "{\n  \"models\": [tru]\n}").expect("write");
        let err = ModelPool::load_json(&path).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, PoolIoError::Parse(_)));
        assert!(msg.contains("line 2"), "missing line in: {msg}");
        assert!(msg.contains("column"), "missing column in: {msg}");
        std::fs::remove_file(path).ok();
    }
}
