use crate::backbone::train_backbone;
use crate::{Architecture, BackboneConfig, FrozenModel};
use muffin_data::Dataset;
use muffin_tensor::{Matrix, Rng64};

/// The Muffin "model pool": a set of trained, frozen off-the-shelf models
/// the controller selects the muffin body from.
///
/// # Example
///
/// ```
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, ModelPool};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(4);
/// let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::resnet18(), Architecture::densenet121()],
///     &BackboneConfig::fast(),
///     &mut rng,
/// );
/// assert!(pool.by_name("DenseNet121").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ModelPool {
    models: Vec<FrozenModel>,
}

muffin_json::impl_json!(struct ModelPool { models });

impl ModelPool {
    /// Builds a pool from already trained models.
    pub fn new(models: Vec<FrozenModel>) -> Self {
        Self { models }
    }

    /// Trains one backbone per architecture on `train` and freezes them.
    pub fn train(
        train: &Dataset,
        architectures: &[Architecture],
        config: &BackboneConfig,
        rng: &mut Rng64,
    ) -> Self {
        Self::train_traced(
            train,
            architectures,
            config,
            rng,
            &muffin_trace::Tracer::noop(),
        )
    }

    /// Like [`ModelPool::train`], recording one `models.train_backbone`
    /// span per architecture into `tracer`. With a no-op tracer this is
    /// exactly `train`: tracing never touches the RNG, so the pool is
    /// bit-identical either way.
    pub fn train_traced(
        train: &Dataset,
        architectures: &[Architecture],
        config: &BackboneConfig,
        rng: &mut Rng64,
        tracer: &muffin_trace::Tracer,
    ) -> Self {
        let models = architectures
            .iter()
            .map(|arch| {
                let mut span = tracer.span("models.train_backbone");
                span.field("architecture", arch.name());
                span.field("samples", train.len());
                train_backbone(
                    arch.name().to_string(),
                    arch,
                    train,
                    config,
                    None,
                    None,
                    rng,
                )
            })
            .collect();
        Self { models }
    }

    /// Number of models in the pool.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The model at `index`, if any.
    pub fn get(&self, index: usize) -> Option<&FrozenModel> {
        self.models.get(index)
    }

    /// Looks a model up by name.
    pub fn by_name(&self, name: &str) -> Option<&FrozenModel> {
        self.models.iter().find(|m| m.name() == name)
    }

    /// Index of the named model, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.models.iter().position(|m| m.name() == name)
    }

    /// Iterator over the pool members.
    pub fn iter(&self) -> impl Iterator<Item = &FrozenModel> {
        self.models.iter()
    }

    /// Adds a model (e.g. a baseline-optimised variant) to the pool and
    /// returns its index.
    pub fn push(&mut self, model: FrozenModel) -> usize {
        self.models.push(model);
        self.models.len() - 1
    }

    /// Probability outputs of every pool member on `features`, in pool
    /// order.
    pub fn predict_proba_all(&self, features: &Matrix) -> Vec<Matrix> {
        self.models
            .iter()
            .map(|m| m.predict_proba(features))
            .collect()
    }
}

impl FromIterator<FrozenModel> for ModelPool {
    fn from_iter<T: IntoIterator<Item = FrozenModel>>(iter: T) -> Self {
        Self {
            models: iter.into_iter().collect(),
        }
    }
}

impl Extend<FrozenModel> for ModelPool {
    fn extend<T: IntoIterator<Item = FrozenModel>>(&mut self, iter: T) {
        self.models.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::IsicLike;
    use muffin_nn::accuracy;

    fn small_pool() -> (ModelPool, muffin_data::DatasetSplit) {
        let mut rng = Rng64::seed(20);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::shufflenet_v2_x1_0()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        (pool, split)
    }

    #[test]
    fn pool_preserves_architecture_order() {
        let (pool, _) = small_pool();
        assert_eq!(pool.get(0).unwrap().name(), "ResNet-18");
        assert_eq!(pool.get(1).unwrap().name(), "ShuffleNet_V2_X1_0");
        assert_eq!(pool.index_of("ShuffleNet_V2_X1_0"), Some(1));
    }

    #[test]
    fn models_disagree_on_some_samples() {
        // Observation 3 of the paper: independently trained models make
        // complementary errors.
        let (pool, split) = small_pool();
        let a = pool.get(0).unwrap().predict(split.test.features());
        let b = pool.get(1).unwrap().predict(split.test.features());
        let disagreement = a.iter().zip(&b).filter(|(x, y)| x != y).count() as f32 / a.len() as f32;
        assert!(
            disagreement > 0.05,
            "disagreement {disagreement} too low for fusing to help"
        );
        assert!(
            disagreement < 0.9,
            "disagreement {disagreement} suspiciously high"
        );
    }

    #[test]
    fn bigger_models_are_usually_stronger() {
        let (pool, split) = small_pool();
        let big = accuracy(
            &pool.get(0).unwrap().predict(split.test.features()),
            split.test.labels(),
        );
        let small = accuracy(
            &pool.get(1).unwrap().predict(split.test.features()),
            split.test.labels(),
        );
        // At this reduced test scale (1.2k samples, 12 epochs) the ordering
        // is noisy; the full-scale ordering is asserted by the Fig. 1
        // experiment binary. Only guard against a dramatic inversion here.
        assert!(big > small - 0.10, "ResNet-18 {big} vs ShuffleNet {small}");
        assert!(big > 0.3 && small > 0.3, "both models must beat chance");
    }

    #[test]
    fn predict_proba_all_is_pool_ordered() {
        let (pool, split) = small_pool();
        let all = pool.predict_proba_all(split.test.features());
        assert_eq!(all.len(), 2);
        assert_eq!(
            all[0],
            pool.get(0).unwrap().predict_proba(split.test.features())
        );
    }

    #[test]
    fn push_and_collect() {
        let (pool, _) = small_pool();
        let mut collected: ModelPool = pool.iter().cloned().collect();
        assert_eq!(collected.len(), 2);
        let m = pool.get(0).unwrap().clone();
        let idx = collected.push(m);
        assert_eq!(idx, 2);
        assert_eq!(collected.len(), 3);
    }
}
