use muffin_data::{
    group_accuracies, group_accuracy_gap, unfairness_score, AttributeId, Dataset, GroupAccuracy,
};
use muffin_nn::accuracy;
use std::fmt;

/// Fairness evaluation of one model for one sensitive attribute.
#[derive(Debug, Clone)]
pub struct AttributeEvaluation {
    /// The attribute's index in the dataset schema.
    pub attribute: usize,
    /// The attribute's name.
    pub name: String,
    /// The paper's L1 unfairness score `U`.
    pub unfairness: f32,
    /// Max-minus-min group accuracy.
    pub accuracy_gap: f32,
    /// Per-group accuracies.
    pub groups: Vec<GroupAccuracy>,
}

muffin_json::impl_json!(struct AttributeEvaluation { attribute, name, unfairness, accuracy_gap, groups });

/// Full evaluation of one model on one dataset: overall accuracy plus one
/// [`AttributeEvaluation`] per sensitive attribute.
///
/// # Example
///
/// ```
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, ModelPool};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(3);
/// let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::mobilenet_v3_small()],
///     &BackboneConfig::fast(),
///     &mut rng,
/// );
/// let eval = pool.get(0).expect("model").evaluate(&split.test);
/// println!("{eval}");
/// assert_eq!(eval.attributes.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ModelEvaluation {
    /// Name of the evaluated model.
    pub model: String,
    /// Overall accuracy `A(f', D)`.
    pub accuracy: f32,
    /// Per-attribute fairness results, in schema order.
    pub attributes: Vec<AttributeEvaluation>,
}

muffin_json::impl_json!(struct ModelEvaluation { model, accuracy, attributes });

impl ModelEvaluation {
    /// Evaluates `predictions` against `dataset`'s labels and groups.
    ///
    /// # Panics
    ///
    /// Panics if `predictions.len() != dataset.len()`.
    pub fn of(predictions: &[usize], dataset: &Dataset, model: String) -> Self {
        assert_eq!(predictions.len(), dataset.len(), "predictions/dataset mismatch");
        let overall = accuracy(predictions, dataset.labels());
        let attributes = dataset
            .schema()
            .iter()
            .map(|(id, attr)| {
                let groups = dataset.groups(id);
                AttributeEvaluation {
                    attribute: id.index(),
                    name: attr.name().to_string(),
                    unfairness: unfairness_score(
                        predictions,
                        dataset.labels(),
                        groups,
                        attr.num_groups(),
                    ),
                    accuracy_gap: group_accuracy_gap(
                        predictions,
                        dataset.labels(),
                        groups,
                        attr.num_groups(),
                    ),
                    groups: group_accuracies(
                        predictions,
                        dataset.labels(),
                        groups,
                        attr.num_groups(),
                    ),
                }
            })
            .collect();
        Self { model, accuracy: overall, attributes }
    }

    /// The evaluation for the named attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&AttributeEvaluation> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// The paper's Eq. 1 multi-dimension unfairness: the sum of the listed
    /// attributes' scores (all attributes when `names` is empty).
    pub fn multi_unfairness(&self, names: &[&str]) -> f32 {
        self.attributes
            .iter()
            .filter(|a| names.is_empty() || names.contains(&a.name.as_str()))
            .map(|a| a.unfairness)
            .sum()
    }
}

impl fmt::Display for ModelEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: accuracy {:.2}%", self.model, self.accuracy * 100.0)?;
        for attr in &self.attributes {
            writeln!(
                f,
                "  {}: U = {:.4}, gap = {:.2}%",
                attr.name,
                attr.unfairness,
                attr.accuracy_gap * 100.0
            )?;
        }
        Ok(())
    }
}

/// Determines the unprivileged groups of `attr` from model behaviour: the
/// groups whose accuracy falls below the overall accuracy.
///
/// This is the data-driven counterpart of the paper's unprivileged-group
/// notion — it needs no knowledge of how the synthetic dataset was
/// designed.
///
/// # Panics
///
/// Panics if `predictions.len() != dataset.len()` or `attr` is out of
/// range.
pub fn unprivileged_by_accuracy(
    predictions: &[usize],
    dataset: &Dataset,
    attr: AttributeId,
) -> Vec<u16> {
    assert_eq!(predictions.len(), dataset.len(), "predictions/dataset mismatch");
    let overall = accuracy(predictions, dataset.labels());
    let num_groups = dataset.schema().get(attr).expect("attribute in range").num_groups();
    group_accuracies(predictions, dataset.labels(), dataset.groups(attr), num_groups)
        .iter()
        .filter(|g| g.count > 0 && g.accuracy < overall)
        .map(|g| g.group)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::{AttributeSchema, SensitiveAttribute};
    use muffin_tensor::Matrix;

    fn toy_dataset() -> Dataset {
        // 6 samples; group 1 of attribute "a" is systematically hard.
        let features = Matrix::zeros(6, 2);
        let labels = vec![0, 0, 0, 1, 1, 1];
        let schema = AttributeSchema::new(vec![SensitiveAttribute::new("a", &["g0", "g1"])]);
        let groups = vec![vec![0, 0, 0, 1, 1, 1]];
        Dataset::new(features, labels, 2, schema, groups)
    }

    #[test]
    fn evaluation_separates_attributes_and_overall() {
        let ds = toy_dataset();
        // Predict class 0 always: group 0 perfect, group 1 all wrong.
        let eval = ModelEvaluation::of(&[0; 6], &ds, "const".into());
        assert!((eval.accuracy - 0.5).abs() < 1e-6);
        let a = eval.attribute("a").expect("attribute a");
        assert!((a.unfairness - 1.0).abs() < 1e-6);
        assert!((a.accuracy_gap - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multi_unfairness_sums_selected_attributes() {
        let ds = toy_dataset();
        let eval = ModelEvaluation::of(&[0; 6], &ds, "const".into());
        assert!((eval.multi_unfairness(&["a"]) - 1.0).abs() < 1e-6);
        assert!((eval.multi_unfairness(&[]) - 1.0).abs() < 1e-6);
        assert_eq!(eval.multi_unfairness(&["missing"]), 0.0);
    }

    #[test]
    fn unprivileged_by_accuracy_flags_low_groups() {
        let ds = toy_dataset();
        let unpriv = unprivileged_by_accuracy(&[0; 6], &ds, AttributeId::new(0));
        assert_eq!(unpriv, vec![1]);
    }

    #[test]
    fn unprivileged_is_empty_for_uniform_accuracy() {
        let ds = toy_dataset();
        // Perfect predictions: no group below overall.
        let unpriv = unprivileged_by_accuracy(&[0, 0, 0, 1, 1, 1], &ds, AttributeId::new(0));
        assert!(unpriv.is_empty());
    }

    #[test]
    fn display_mentions_every_attribute() {
        let ds = toy_dataset();
        let text = ModelEvaluation::of(&[0; 6], &ds, "const".into()).to_string();
        assert!(text.contains("const"));
        assert!(text.contains("a: U ="));
    }
}
