use muffin_data::{
    group_accuracies, group_accuracy_gap, intersectional_group_accuracies, joint_unfairness,
    unfairness_score, AttributeId, Dataset, GroupAccuracy,
};
use muffin_nn::accuracy;
use std::fmt;

/// Fairness evaluation of one model for one sensitive attribute.
#[derive(Debug, Clone)]
pub struct AttributeEvaluation {
    /// The attribute's index in the dataset schema.
    pub attribute: usize,
    /// The attribute's name.
    pub name: String,
    /// The paper's L1 unfairness score `U`.
    pub unfairness: f32,
    /// Max-minus-min group accuracy.
    pub accuracy_gap: f32,
    /// Per-group accuracies.
    pub groups: Vec<GroupAccuracy>,
}

muffin_json::impl_json!(struct AttributeEvaluation { attribute, name, unfairness, accuracy_gap, groups });

/// Fairness evaluation of one model over the **joint cells** of one
/// attribute pair — the intersectional counterpart of
/// [`AttributeEvaluation`].
///
/// Cells are indexed row-major: the cell for groups `(g_a, g_b)` sits at
/// `g_a · num_groups_b + g_b`, matching
/// [`muffin_data::joint_group_ids`].
#[derive(Debug, Clone)]
pub struct IntersectionEvaluation {
    /// Index of the first attribute in the dataset schema.
    pub attr_a: usize,
    /// Index of the second attribute in the schema (`attr_a < attr_b`).
    pub attr_b: usize,
    /// Pair label, e.g. `age×gender`.
    pub name: String,
    /// The paper's U computed over the joint cells.
    pub unfairness: f32,
    /// Max-minus-min joint-cell accuracy.
    pub accuracy_gap: f32,
    /// Per-cell accuracies, row-major.
    pub cells: Vec<GroupAccuracy>,
}

muffin_json::impl_json!(struct IntersectionEvaluation { attr_a, attr_b, name, unfairness, accuracy_gap, cells });

/// Full evaluation of one model on one dataset: overall accuracy plus one
/// [`AttributeEvaluation`] per sensitive attribute.
///
/// # Example
///
/// ```
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, ModelPool};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(3);
/// let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::mobilenet_v3_small()],
///     &BackboneConfig::fast(),
///     &mut rng,
/// );
/// let eval = pool.get(0).expect("model").evaluate(&split.test);
/// println!("{eval}");
/// assert_eq!(eval.attributes.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ModelEvaluation {
    /// Name of the evaluated model.
    pub model: String,
    /// Overall accuracy `A(f', D)`.
    pub accuracy: f32,
    /// Per-attribute fairness results, in schema order.
    pub attributes: Vec<AttributeEvaluation>,
    /// Joint-cell fairness results for every attribute pair `(i, j)` with
    /// `i < j`, ordered lexicographically by the pair.
    pub intersections: Vec<IntersectionEvaluation>,
}

muffin_json::impl_json!(struct ModelEvaluation { model, accuracy, attributes, intersections });

impl ModelEvaluation {
    /// Evaluates `predictions` against `dataset`'s labels and groups.
    ///
    /// # Panics
    ///
    /// Panics if `predictions.len() != dataset.len()`.
    pub fn of(predictions: &[usize], dataset: &Dataset, model: String) -> Self {
        assert_eq!(predictions.len(), dataset.len(), "predictions/dataset mismatch");
        let overall = accuracy(predictions, dataset.labels());
        let attributes = dataset
            .schema()
            .iter()
            .map(|(id, attr)| {
                let groups = dataset.groups(id);
                AttributeEvaluation {
                    attribute: id.index(),
                    name: attr.name().to_string(),
                    unfairness: unfairness_score(
                        predictions,
                        dataset.labels(),
                        groups,
                        attr.num_groups(),
                    ),
                    accuracy_gap: group_accuracy_gap(
                        predictions,
                        dataset.labels(),
                        groups,
                        attr.num_groups(),
                    ),
                    groups: group_accuracies(
                        predictions,
                        dataset.labels(),
                        groups,
                        attr.num_groups(),
                    ),
                }
            })
            .collect();
        let schema_attrs: Vec<_> = dataset.schema().iter().collect();
        let mut intersections = Vec::new();
        for i in 0..schema_attrs.len() {
            for j in (i + 1)..schema_attrs.len() {
                let (id_a, attr_a) = &schema_attrs[i];
                let (id_b, attr_b) = &schema_attrs[j];
                let (ga, gb) = (dataset.groups(*id_a), dataset.groups(*id_b));
                let (na, nb) = (attr_a.num_groups(), attr_b.num_groups());
                intersections.push(IntersectionEvaluation {
                    attr_a: i,
                    attr_b: j,
                    name: dataset.schema().pair_label(*id_a, *id_b),
                    unfairness: joint_unfairness(
                        predictions,
                        dataset.labels(),
                        &[ga, gb],
                        &[na, nb],
                    ),
                    accuracy_gap: joint_accuracy_gap(predictions, dataset.labels(), ga, na, gb, nb),
                    cells: intersectional_group_accuracies(
                        predictions,
                        dataset.labels(),
                        ga,
                        na,
                        gb,
                        nb,
                    ),
                });
            }
        }
        Self { model, accuracy: overall, attributes, intersections }
    }

    /// The evaluation for the named attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&AttributeEvaluation> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// The joint-cell evaluation for one attribute pair, accepting the
    /// names in either order.
    pub fn intersection(&self, a: &str, b: &str) -> Option<&IntersectionEvaluation> {
        self.intersections.iter().find(|ix| {
            let (named_a, named_b) = (
                self.attributes.get(ix.attr_a).map(|x| x.name.as_str()),
                self.attributes.get(ix.attr_b).map(|x| x.name.as_str()),
            );
            (named_a == Some(a) && named_b == Some(b))
                || (named_a == Some(b) && named_b == Some(a))
        })
    }

    /// Sum of joint-cell unfairness over every unordered pair of the listed
    /// attributes (all pairs when `names` is empty) — the intersectional
    /// counterpart of [`multi_unfairness`](Self::multi_unfairness). With
    /// fewer than two listed attributes, falls back to the marginal sum so
    /// single-attribute searches stay well-defined.
    pub fn multi_joint_unfairness(&self, names: &[&str]) -> f32 {
        let selected: Vec<usize> = self
            .attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| names.is_empty() || names.contains(&a.name.as_str()))
            .map(|(i, _)| i)
            .collect();
        if selected.len() < 2 {
            return self.multi_unfairness(names);
        }
        self.intersections
            .iter()
            .filter(|ix| selected.contains(&ix.attr_a) && selected.contains(&ix.attr_b))
            .map(|ix| ix.unfairness)
            .sum()
    }

    /// The paper's Eq. 1 multi-dimension unfairness: the sum of the listed
    /// attributes' scores (all attributes when `names` is empty).
    pub fn multi_unfairness(&self, names: &[&str]) -> f32 {
        self.attributes
            .iter()
            .filter(|a| names.is_empty() || names.contains(&a.name.as_str()))
            .map(|a| a.unfairness)
            .sum()
    }
}

fn joint_accuracy_gap(
    predictions: &[usize],
    labels: &[usize],
    groups_a: &[u16],
    num_groups_a: usize,
    groups_b: &[u16],
    num_groups_b: usize,
) -> f32 {
    let (joint, cells) =
        muffin_data::joint_group_ids(&[groups_a, groups_b], &[num_groups_a, num_groups_b]);
    group_accuracy_gap(predictions, labels, &joint, cells)
}

impl fmt::Display for ModelEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: accuracy {:.2}%", self.model, self.accuracy * 100.0)?;
        for attr in &self.attributes {
            writeln!(
                f,
                "  {}: U = {:.4}, gap = {:.2}%",
                attr.name,
                attr.unfairness,
                attr.accuracy_gap * 100.0
            )?;
        }
        for ix in &self.intersections {
            writeln!(
                f,
                "  {}: U∩ = {:.4}, gap = {:.2}%",
                ix.name,
                ix.unfairness,
                ix.accuracy_gap * 100.0
            )?;
        }
        Ok(())
    }
}

/// Determines the unprivileged groups of `attr` from model behaviour: the
/// groups whose accuracy falls below the overall accuracy.
///
/// This is the data-driven counterpart of the paper's unprivileged-group
/// notion — it needs no knowledge of how the synthetic dataset was
/// designed.
///
/// # Panics
///
/// Panics if `predictions.len() != dataset.len()` or `attr` is out of
/// range.
pub fn unprivileged_by_accuracy(
    predictions: &[usize],
    dataset: &Dataset,
    attr: AttributeId,
) -> Vec<u16> {
    assert_eq!(predictions.len(), dataset.len(), "predictions/dataset mismatch");
    let overall = accuracy(predictions, dataset.labels());
    let num_groups = dataset.schema().get(attr).expect("attribute in range").num_groups();
    group_accuracies(predictions, dataset.labels(), dataset.groups(attr), num_groups)
        .iter()
        .filter(|g| g.count > 0 && g.accuracy < overall)
        .map(|g| g.group)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::{AttributeSchema, SensitiveAttribute};
    use muffin_tensor::Matrix;

    fn toy_dataset() -> Dataset {
        // 6 samples; group 1 of attribute "a" is systematically hard.
        let features = Matrix::zeros(6, 2);
        let labels = vec![0, 0, 0, 1, 1, 1];
        let schema = AttributeSchema::new(vec![SensitiveAttribute::new("a", &["g0", "g1"])]);
        let groups = vec![vec![0, 0, 0, 1, 1, 1]];
        Dataset::new(features, labels, 2, schema, groups)
    }

    #[test]
    fn evaluation_separates_attributes_and_overall() {
        let ds = toy_dataset();
        // Predict class 0 always: group 0 perfect, group 1 all wrong.
        let eval = ModelEvaluation::of(&[0; 6], &ds, "const".into());
        assert!((eval.accuracy - 0.5).abs() < 1e-6);
        let a = eval.attribute("a").expect("attribute a");
        assert!((a.unfairness - 1.0).abs() < 1e-6);
        assert!((a.accuracy_gap - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multi_unfairness_sums_selected_attributes() {
        let ds = toy_dataset();
        let eval = ModelEvaluation::of(&[0; 6], &ds, "const".into());
        assert!((eval.multi_unfairness(&["a"]) - 1.0).abs() < 1e-6);
        assert!((eval.multi_unfairness(&[]) - 1.0).abs() < 1e-6);
        assert_eq!(eval.multi_unfairness(&["missing"]), 0.0);
    }

    #[test]
    fn unprivileged_by_accuracy_flags_low_groups() {
        let ds = toy_dataset();
        let unpriv = unprivileged_by_accuracy(&[0; 6], &ds, AttributeId::new(0));
        assert_eq!(unpriv, vec![1]);
    }

    #[test]
    fn unprivileged_is_empty_for_uniform_accuracy() {
        let ds = toy_dataset();
        // Perfect predictions: no group below overall.
        let unpriv = unprivileged_by_accuracy(&[0, 0, 0, 1, 1, 1], &ds, AttributeId::new(0));
        assert!(unpriv.is_empty());
    }

    #[test]
    fn display_mentions_every_attribute() {
        let ds = toy_dataset();
        let text = ModelEvaluation::of(&[0; 6], &ds, "const".into()).to_string();
        assert!(text.contains("const"));
        assert!(text.contains("a: U ="));
    }

    fn two_attr_dataset() -> Dataset {
        // Marginals look fair, but the (g1, h1) joint cell is always wrong
        // under the `hidden` predictions below.
        let features = Matrix::zeros(4, 2);
        let labels = vec![0, 0, 0, 0];
        let schema = AttributeSchema::new(vec![
            SensitiveAttribute::new("a", &["g0", "g1"]),
            SensitiveAttribute::new("b", &["h0", "h1"]),
        ]);
        let groups = vec![vec![0, 0, 1, 1], vec![0, 1, 0, 1]];
        Dataset::new(features, labels, 2, schema, groups)
    }

    #[test]
    fn intersections_expose_hidden_joint_disadvantage() {
        let ds = two_attr_dataset();
        let hidden = [0, 1, 1, 0]; // each marginal group 50% right, cell (1,1) wrong
        let eval = ModelEvaluation::of(&hidden, &ds, "hidden".into());
        assert!(eval.attribute("a").expect("a").unfairness < 1e-6);
        assert!(eval.attribute("b").expect("b").unfairness < 1e-6);
        let ix = eval.intersection("a", "b").expect("pair");
        assert_eq!(ix.name, "a×b");
        assert!(ix.unfairness > 0.5, "joint U must expose the cell, got {}", ix.unfairness);
        // Hand-computed oracle: overall 1/2; cells (0,0)=1, (0,1)=0,
        // (1,0)=1, (1,1)=0 → U∩ = 4·(1/2) = 2.
        assert!((ix.unfairness - 2.0).abs() < 1e-6);
        assert!((ix.accuracy_gap - 1.0).abs() < 1e-6);
        assert_eq!(ix.cells.len(), 4);
    }

    #[test]
    fn intersection_lookup_is_order_insensitive() {
        let ds = two_attr_dataset();
        let eval = ModelEvaluation::of(&[0; 4], &ds, "m".into());
        assert!(eval.intersection("b", "a").is_some());
        assert!(eval.intersection("a", "missing").is_none());
    }

    #[test]
    fn multi_joint_unfairness_sums_pairs_and_degenerates_to_marginal() {
        let ds = two_attr_dataset();
        let hidden = [0, 1, 1, 0];
        let eval = ModelEvaluation::of(&hidden, &ds, "m".into());
        assert!((eval.multi_joint_unfairness(&["a", "b"]) - 2.0).abs() < 1e-6);
        assert!((eval.multi_joint_unfairness(&[]) - 2.0).abs() < 1e-6);
        // Single attribute → marginal fallback (which is ~0 here).
        assert!(eval.multi_joint_unfairness(&["a"]).abs() < 1e-6);
    }

    #[test]
    fn single_attribute_dataset_has_no_intersections() {
        let ds = toy_dataset();
        let eval = ModelEvaluation::of(&[0; 6], &ds, "m".into());
        assert!(eval.intersections.is_empty());
    }
}
