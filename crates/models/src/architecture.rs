use std::fmt;

/// Family of a simulated off-the-shelf architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// ResNet-style residual networks.
    ResNet,
    /// DenseNet-style densely connected networks.
    DenseNet,
    /// MobileNet-style efficient networks.
    MobileNet,
    /// ShuffleNet-style efficient networks.
    ShuffleNet,
}

muffin_json::impl_json!(enum ModelFamily { ResNet, DenseNet, MobileNet, ShuffleNet });

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelFamily::ResNet => "ResNet",
            ModelFamily::DenseNet => "DenseNet",
            ModelFamily::MobileNet => "MobileNet",
            ModelFamily::ShuffleNet => "ShuffleNet",
        };
        f.write_str(s)
    }
}

/// Descriptor of one simulated off-the-shelf model.
///
/// Carries the *real* CNN's name and parameter count (reported in the
/// paper's Table I, e.g. `ShuffleNet_V2_X1_0` = 1 261 804 parameters) plus
/// the simulation knobs: the width of the architecture-specific random
/// feature projection and the trained MLP's hidden widths. Capacity and
/// projection width grow with the real model's size, so larger
/// architectures are more accurate, exactly as in Figure 1.
///
/// # Example
///
/// ```
/// use muffin_models::Architecture;
///
/// let arch = Architecture::shufflenet_v2_x1_0();
/// assert_eq!(arch.reported_params(), 1_261_804);
/// assert_eq!(arch.name(), "ShuffleNet_V2_X1_0");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    name: String,
    family: ModelFamily,
    projection_dim: usize,
    hidden: Vec<usize>,
    reported_params: u64,
    seed_offset: u64,
}

muffin_json::impl_json!(struct Architecture { name, family, projection_dim, hidden, reported_params, seed_offset });

impl Architecture {
    /// Creates a custom architecture descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `projection_dim` is zero or any hidden width is zero.
    pub fn custom(
        name: impl Into<String>,
        family: ModelFamily,
        projection_dim: usize,
        hidden: &[usize],
        reported_params: u64,
        seed_offset: u64,
    ) -> Self {
        assert!(projection_dim > 0, "projection_dim must be positive");
        assert!(hidden.iter().all(|&h| h > 0), "hidden widths must be positive");
        Self {
            name: name.into(),
            family,
            projection_dim,
            hidden: hidden.to_vec(),
            reported_params,
            seed_offset,
        }
    }

    /// `ShuffleNet_V2_X0_5` — the smallest zoo member.
    pub fn shufflenet_v2_x0_5() -> Self {
        Self::custom("ShuffleNet_V2_X0_5", ModelFamily::ShuffleNet, 10, &[24], 1_366_792, 101)
    }

    /// `ShuffleNet_V2_X1_0` (paper Table I: 1 261 804 parameters).
    pub fn shufflenet_v2_x1_0() -> Self {
        Self::custom("ShuffleNet_V2_X1_0", ModelFamily::ShuffleNet, 12, &[32], 1_261_804, 102)
    }

    /// `MobileNet_V3_Small` (paper Table I: 1 526 056 parameters).
    pub fn mobilenet_v3_small() -> Self {
        Self::custom("MobileNet_V3_Small", ModelFamily::MobileNet, 12, &[36], 1_526_056, 103)
    }

    /// `MobileNet_V2`.
    pub fn mobilenet_v2() -> Self {
        Self::custom("MobileNet_V2", ModelFamily::MobileNet, 14, &[48], 3_504_872, 104)
    }

    /// `MobileNet_V3_Large`.
    pub fn mobilenet_v3_large() -> Self {
        Self::custom("MobileNet_V3_Large", ModelFamily::MobileNet, 16, &[64], 5_483_032, 105)
    }

    /// `DenseNet121`.
    pub fn densenet121() -> Self {
        Self::custom("DenseNet121", ModelFamily::DenseNet, 16, &[72, 32], 7_978_856, 106)
    }

    /// `DenseNet201`.
    pub fn densenet201() -> Self {
        Self::custom("DenseNet201", ModelFamily::DenseNet, 18, &[88, 40], 20_013_928, 107)
    }

    /// `ResNet-18`.
    pub fn resnet18() -> Self {
        Self::custom("ResNet-18", ModelFamily::ResNet, 16, &[64, 32], 11_689_512, 108)
    }

    /// `ResNet-34`.
    pub fn resnet34() -> Self {
        Self::custom("ResNet-34", ModelFamily::ResNet, 18, &[80, 40], 21_797_672, 109)
    }

    /// `ResNet-50`.
    pub fn resnet50() -> Self {
        Self::custom("ResNet-50", ModelFamily::ResNet, 20, &[96, 48], 25_557_032, 110)
    }

    /// The full zoo used by the paper's Figure 1, ordered by size.
    pub fn zoo() -> Vec<Architecture> {
        vec![
            Self::shufflenet_v2_x1_0(),
            Self::shufflenet_v2_x0_5(),
            Self::mobilenet_v3_small(),
            Self::mobilenet_v2(),
            Self::mobilenet_v3_large(),
            Self::densenet121(),
            Self::resnet18(),
            Self::densenet201(),
            Self::resnet34(),
            Self::resnet50(),
        ]
    }

    /// Looks an architecture up by its paper name.
    pub fn by_name(name: &str) -> Option<Architecture> {
        Self::zoo().into_iter().find(|a| a.name == name)
    }

    /// The real CNN's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The architecture family.
    pub fn family(&self) -> ModelFamily {
        self.family
    }

    /// Width of the architecture-specific random feature projection.
    pub fn projection_dim(&self) -> usize {
        self.projection_dim
    }

    /// Hidden widths of the trained MLP.
    pub fn hidden(&self) -> &[usize] {
        &self.hidden
    }

    /// Parameter count of the real CNN this descriptor stands in for.
    pub fn reported_params(&self) -> u64 {
        self.reported_params
    }

    /// Seed offset making this architecture's projection unique.
    pub fn seed_offset(&self) -> u64 {
        self.seed_offset
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} params)", self.name, self.reported_params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn zoo_has_ten_distinct_models() {
        let zoo = Architecture::zoo();
        assert_eq!(zoo.len(), 10);
        let names: HashSet<&str> = zoo.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 10);
        let seeds: HashSet<u64> = zoo.iter().map(|a| a.seed_offset()).collect();
        assert_eq!(seeds.len(), 10, "every architecture needs a unique projection seed");
    }

    #[test]
    fn paper_parameter_counts_are_exact() {
        assert_eq!(Architecture::shufflenet_v2_x1_0().reported_params(), 1_261_804);
        assert_eq!(Architecture::mobilenet_v3_small().reported_params(), 1_526_056);
    }

    #[test]
    fn capacity_grows_with_reported_size_within_family() {
        let r18 = Architecture::resnet18();
        let r50 = Architecture::resnet50();
        assert!(r50.reported_params() > r18.reported_params());
        assert!(r50.projection_dim() > r18.projection_dim());
        assert!(r50.hidden()[0] > r18.hidden()[0]);
    }

    #[test]
    fn by_name_round_trips() {
        for arch in Architecture::zoo() {
            assert_eq!(Architecture::by_name(arch.name()), Some(arch.clone()));
        }
        assert!(Architecture::by_name("VGG-16").is_none());
    }

    #[test]
    #[should_panic(expected = "projection_dim")]
    fn custom_rejects_zero_projection() {
        Architecture::custom("bad", ModelFamily::ResNet, 0, &[8], 1, 0);
    }

    #[test]
    fn display_includes_params() {
        let text = Architecture::resnet18().to_string();
        assert!(text.contains("ResNet-18"));
        assert!(text.contains("11689512"));
    }
}
