//! Naive multi-model baselines.
//!
//! Muffin's claim is that a *learned*, fairness-aware head beats the
//! obvious ways of combining models. These combiners are the obvious ways:
//! majority voting, probability averaging, and oracle selection (an upper
//! bound). The ablation benches compare Muffin against them.

use crate::{FrozenModel, ModelEvaluation};
use muffin_data::Dataset;
use muffin_tensor::Matrix;

/// How a naive ensemble combines its members' outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnsembleRule {
    /// Plurality vote over hard predictions; ties resolve to the first
    /// member's prediction.
    MajorityVote,
    /// Argmax of the mean probability vector.
    MeanProbability,
    /// Argmax of the element-wise maximum probability (a confident member
    /// wins).
    MaxProbability,
}

muffin_json::impl_json!(enum EnsembleRule { MajorityVote, MeanProbability, MaxProbability });

/// A fixed (non-learned) ensemble over frozen models.
///
/// # Example
///
/// ```
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, Ensemble, EnsembleRule, ModelPool};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(2);
/// let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::resnet18(), Architecture::densenet121()],
///     &BackboneConfig::fast(),
///     &mut rng,
/// );
/// let ensemble = Ensemble::new(
///     vec![pool.get(0).unwrap().clone(), pool.get(1).unwrap().clone()],
///     EnsembleRule::MeanProbability,
/// );
/// let eval = ensemble.evaluate(&split.test);
/// assert!(eval.accuracy > 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct Ensemble {
    members: Vec<FrozenModel>,
    rule: EnsembleRule,
}

impl Ensemble {
    /// Creates an ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<FrozenModel>, rule: EnsembleRule) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Self { members, rule }
    }

    /// Member models.
    pub fn members(&self) -> &[FrozenModel] {
        &self.members
    }

    /// The combination rule.
    pub fn rule(&self) -> EnsembleRule {
        self.rule
    }

    /// Hard predictions for `features`.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        match self.rule {
            EnsembleRule::MajorityVote => {
                let all: Vec<Vec<usize>> =
                    self.members.iter().map(|m| m.predict(features)).collect();
                let num_classes = self.members[0].num_classes();
                (0..features.rows())
                    .map(|s| {
                        let mut votes = vec![0usize; num_classes];
                        for preds in &all {
                            votes[preds[s]] += 1;
                        }
                        let best = votes.iter().copied().max().unwrap_or(0);
                        if votes.iter().filter(|&&v| v == best).count() > 1 {
                            all[0][s] // tie → trust the first member
                        } else {
                            votes.iter().position(|&v| v == best).unwrap_or(0)
                        }
                    })
                    .collect()
            }
            EnsembleRule::MeanProbability => {
                let mut sum = self.members[0].predict_proba(features);
                for m in &self.members[1..] {
                    sum.axpy(1.0, &m.predict_proba(features));
                }
                sum.argmax_rows()
            }
            EnsembleRule::MaxProbability => {
                let mut max = self.members[0].predict_proba(features);
                for m in &self.members[1..] {
                    max = max.zip_map(&m.predict_proba(features), f32::max);
                }
                max.argmax_rows()
            }
        }
    }

    /// Evaluates accuracy and per-attribute fairness on `dataset`.
    pub fn evaluate(&self, dataset: &Dataset) -> ModelEvaluation {
        let names: Vec<&str> = self.members.iter().map(FrozenModel::name).collect();
        let label = format!("{:?}({})", self.rule, names.join("+"));
        ModelEvaluation::of(&self.predict(dataset.features()), dataset, label)
    }
}

/// Accuracy of the oracle that picks whichever member is correct — the
/// ceiling any combiner (including Muffin) can reach on `dataset`.
pub fn oracle_accuracy(members: &[&FrozenModel], dataset: &Dataset) -> f32 {
    if members.is_empty() || dataset.is_empty() {
        return 0.0;
    }
    let all: Vec<Vec<usize>> = members.iter().map(|m| m.predict(dataset.features())).collect();
    let correct = (0..dataset.len())
        .filter(|&i| all.iter().any(|preds| preds[i] == dataset.labels()[i]))
        .count();
    correct as f32 / dataset.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Architecture, BackboneConfig, ModelPool};
    use muffin_data::IsicLike;
    use muffin_nn::accuracy;
    use muffin_tensor::Rng64;

    fn fixture() -> (ModelPool, muffin_data::DatasetSplit) {
        let mut rng = Rng64::seed(61);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[
                Architecture::resnet18(),
                Architecture::densenet121(),
                Architecture::mobilenet_v2(),
            ],
            &BackboneConfig::fast(),
            &mut rng,
        );
        (pool, split)
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_is_rejected() {
        Ensemble::new(vec![], EnsembleRule::MajorityVote);
    }

    #[test]
    fn single_member_ensembles_equal_the_member() {
        let (pool, split) = fixture();
        let member = pool.get(0).unwrap().clone();
        for rule in
            [EnsembleRule::MajorityVote, EnsembleRule::MeanProbability, EnsembleRule::MaxProbability]
        {
            let ensemble = Ensemble::new(vec![member.clone()], rule);
            assert_eq!(
                ensemble.predict(split.test.features()),
                member.predict(split.test.features()),
                "{rule:?}"
            );
        }
    }

    #[test]
    fn mean_probability_ensemble_is_competitive() {
        let (pool, split) = fixture();
        let members: Vec<FrozenModel> = pool.iter().cloned().collect();
        let ensemble = Ensemble::new(members, EnsembleRule::MeanProbability);
        let ens_acc = accuracy(&ensemble.predict(split.test.features()), split.test.labels());
        let best_single = pool
            .iter()
            .map(|m| accuracy(&m.predict(split.test.features()), split.test.labels()))
            .fold(f32::MIN, f32::max);
        assert!(
            ens_acc > best_single - 0.03,
            "mean-prob ensemble {ens_acc} should be near best single {best_single}"
        );
    }

    #[test]
    fn majority_vote_tie_prefers_first_member() {
        let (pool, split) = fixture();
        // Two members: every disagreement is a tie → output equals member 0.
        let ensemble = Ensemble::new(
            vec![pool.get(0).unwrap().clone(), pool.get(1).unwrap().clone()],
            EnsembleRule::MajorityVote,
        );
        assert_eq!(
            ensemble.predict(split.test.features()),
            pool.get(0).unwrap().predict(split.test.features())
        );
    }

    #[test]
    fn oracle_bounds_every_rule() {
        let (pool, split) = fixture();
        let members: Vec<&FrozenModel> = pool.iter().collect();
        let oracle = oracle_accuracy(&members, &split.test);
        for rule in
            [EnsembleRule::MajorityVote, EnsembleRule::MeanProbability, EnsembleRule::MaxProbability]
        {
            let ensemble = Ensemble::new(pool.iter().cloned().collect(), rule);
            let acc = accuracy(&ensemble.predict(split.test.features()), split.test.labels());
            assert!(acc <= oracle + 1e-6, "{rule:?}: {acc} exceeds oracle {oracle}");
        }
    }

    #[test]
    fn oracle_of_empty_inputs_is_zero() {
        let (pool, split) = fixture();
        assert_eq!(oracle_accuracy(&[], &split.test), 0.0);
        let members: Vec<&FrozenModel> = pool.iter().collect();
        let empty = split.test.subset(&[]);
        assert_eq!(oracle_accuracy(&members, &empty), 0.0);
    }

    #[test]
    fn evaluation_reports_rule_and_members() {
        let (pool, split) = fixture();
        let ensemble = Ensemble::new(
            vec![pool.get(0).unwrap().clone(), pool.get(1).unwrap().clone()],
            EnsembleRule::MeanProbability,
        );
        let eval = ensemble.evaluate(&split.test);
        assert!(eval.model.contains("MeanProbability"));
        assert!(eval.model.contains("ResNet-18"));
    }
}
