use crate::backbone::train_backbone;
use crate::{Architecture, BackboneConfig, FrozenModel};
use muffin_data::{AttributeId, Dataset};
use muffin_tensor::Rng64;
use std::fmt;

/// The two single-attribute fairness interventions the paper compares
/// against (Table I, Figure 2).
///
/// Both target exactly **one** sensitive attribute — which is precisely
/// their weakness: Figure 2 shows that improving one attribute worsens the
/// other (the seesaw), the phenomenon Muffin is built to escape.
///
/// # Example
///
/// ```
/// use muffin_models::FairnessMethod;
///
/// assert_eq!(FairnessMethod::DataBalancing.short_name(), "D");
/// assert_eq!(FairnessMethod::FairLoss.short_name(), "L");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessMethod {
    /// Method **D** (paper ref. \[33\]): re-balance the training data by oversampling the
    /// target attribute's minority groups to parity with the largest group.
    DataBalancing,
    /// Method **L** (paper ref. \[34\]): train with a cost-sensitive (fair) loss that
    /// weights every sample inversely to its group's frequency under the
    /// target attribute.
    FairLoss,
}

muffin_json::impl_json!(enum FairnessMethod { DataBalancing, FairLoss });

impl FairnessMethod {
    /// The paper's one-letter tag (`D` or `L`).
    pub fn short_name(self) -> &'static str {
        match self {
            FairnessMethod::DataBalancing => "D",
            FairnessMethod::FairLoss => "L",
        }
    }

    /// Retrains `architecture` from scratch with this intervention applied
    /// to `target` and freezes the result.
    ///
    /// The returned model is named `"<arch>+<D|L>(<attribute>)"`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range for `train`'s schema.
    pub fn apply(
        self,
        architecture: &Architecture,
        train: &Dataset,
        target: AttributeId,
        config: &BackboneConfig,
        rng: &mut Rng64,
    ) -> FrozenModel {
        let attr = train.schema().get(target).expect("target attribute in range");
        let name = format!("{}+{}({})", architecture.name(), self.short_name(), attr.name());
        match self {
            FairnessMethod::DataBalancing => {
                let indices = oversampled_indices(train, target, rng);
                train_backbone(name, architecture, train, config, None, Some(&indices), rng)
            }
            FairnessMethod::FairLoss => {
                let weights = inverse_frequency_weights(train, target);
                train_backbone(name, architecture, train, config, Some(&weights), None, rng)
            }
        }
    }
}

impl fmt::Display for FairnessMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A record of which method was applied to which attribute — used by the
/// experiment harness to label Table I / Figure 2 rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodApplication {
    /// The intervention.
    pub method: FairnessMethod,
    /// Index of the targeted attribute.
    pub attribute: usize,
    /// Name of the targeted attribute.
    pub attribute_name: String,
}

muffin_json::impl_json!(struct MethodApplication { method, attribute, attribute_name });

impl MethodApplication {
    /// Creates a labelled application record.
    pub fn new(method: FairnessMethod, attribute: AttributeId, attribute_name: &str) -> Self {
        Self { method, attribute: attribute.index(), attribute_name: attribute_name.to_string() }
    }

    /// The paper's label, e.g. `D(Age)`.
    pub fn label(&self) -> String {
        format!("{}({})", self.method.short_name(), self.attribute_name)
    }
}

/// Training indices with every group of `target` oversampled to parity
/// with the largest group.
fn oversampled_indices(train: &Dataset, target: AttributeId, rng: &mut Rng64) -> Vec<usize> {
    let num_groups = train.schema().get(target).expect("attribute in range").num_groups();
    let mut by_group: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
    for (i, &g) in train.groups(target).iter().enumerate() {
        by_group[g as usize].push(i);
    }
    let max_count = by_group.iter().map(Vec::len).max().unwrap_or(0);
    let mut indices: Vec<usize> = (0..train.len()).collect();
    for members in by_group.iter().filter(|m| !m.is_empty()) {
        let deficit = max_count - members.len();
        for _ in 0..deficit {
            indices.push(members[rng.below(members.len())]);
        }
    }
    rng.shuffle(&mut indices);
    indices
}

/// Per-sample weights inversely proportional to the group frequency under
/// `target`, normalised to mean 1.
fn inverse_frequency_weights(train: &Dataset, target: AttributeId) -> Vec<f32> {
    let num_groups = train.schema().get(target).expect("attribute in range").num_groups();
    let mut counts = vec![0usize; num_groups];
    for &g in train.groups(target) {
        counts[g as usize] += 1;
    }
    let n = train.len() as f32;
    let present = counts.iter().filter(|&&c| c > 0).count() as f32;
    let weights: Vec<f32> = train
        .groups(target)
        .iter()
        .map(|&g| n / (present * counts[g as usize] as f32))
        .collect();
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::IsicLike;
    use muffin_tensor::Rng64;

    fn split() -> muffin_data::DatasetSplit {
        let mut rng = Rng64::seed(30);
        IsicLike::small().generate(&mut rng).split_default(&mut rng)
    }

    #[test]
    fn oversampling_balances_group_counts() {
        let s = split();
        let target = s.train.schema().by_name("age").expect("age");
        let indices = oversampled_indices(&s.train, target, &mut Rng64::seed(1));
        let num_groups = s.train.schema().get(target).unwrap().num_groups();
        let mut counts = vec![0usize; num_groups];
        for &i in &indices {
            counts[s.train.group_of(target, i).index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        for (g, &c) in counts.iter().enumerate() {
            if c > 0 {
                assert_eq!(c, max, "group {g} not balanced: {counts:?}");
            }
        }
    }

    #[test]
    fn inverse_frequency_weights_have_mean_one() {
        let s = split();
        let target = s.train.schema().by_name("site").expect("site");
        let w = inverse_frequency_weights(&s.train, target);
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean weight {mean}");
    }

    #[test]
    fn rare_groups_get_heavier_weights() {
        let s = split();
        let target = s.train.schema().by_name("site").expect("site");
        let w = inverse_frequency_weights(&s.train, target);
        // oral/genital (group 7, share 6%) must outweigh anterior torso
        // (group 0, share 17%).
        let rare = s
            .train
            .groups(target)
            .iter()
            .position(|&g| g == 7)
            .map(|i| w[i])
            .expect("rare group present");
        let common = s
            .train
            .groups(target)
            .iter()
            .position(|&g| g == 0)
            .map(|i| w[i])
            .expect("common group present");
        assert!(rare > common * 1.5, "rare {rare} vs common {common}");
    }

    #[test]
    fn applied_model_is_named_after_method() {
        let s = split();
        let target = s.train.schema().by_name("age").expect("age");
        let mut rng = Rng64::seed(2);
        let model = FairnessMethod::FairLoss.apply(
            &Architecture::shufflenet_v2_x1_0(),
            &s.train,
            target,
            &BackboneConfig::fast().with_epochs(2),
            &mut rng,
        );
        assert_eq!(model.name(), "ShuffleNet_V2_X1_0+L(age)");
    }

    #[test]
    fn method_application_label_matches_paper_style() {
        let s = split();
        let target = s.train.schema().by_name("age").expect("age");
        let app = MethodApplication::new(FairnessMethod::DataBalancing, target, "age");
        assert_eq!(app.label(), "D(age)");
    }

    #[test]
    fn data_balancing_improves_target_attribute_fairness() {
        let s = split();
        let target = s.train.schema().by_name("age").expect("age");
        let mut rng = Rng64::seed(3);
        let cfg = BackboneConfig::fast();
        let vanilla = crate::ModelPool::train(
            &s.train,
            &[Architecture::resnet18()],
            &cfg,
            &mut Rng64::seed(4),
        );
        let balanced = FairnessMethod::DataBalancing.apply(
            &Architecture::resnet18(),
            &s.train,
            target,
            &cfg,
            &mut rng,
        );
        let u_vanilla =
            vanilla.get(0).unwrap().evaluate(&s.test).attribute("age").unwrap().unfairness;
        let u_balanced = balanced.evaluate(&s.test).attribute("age").unwrap().unfairness;
        // On the small dataset variance is high; require a non-worsening
        // with modest tolerance rather than a strict improvement.
        assert!(
            u_balanced < u_vanilla + 0.1,
            "D should not substantially worsen its own target: {u_vanilla} -> {u_balanced}"
        );
    }
}
