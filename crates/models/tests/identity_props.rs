//! Property suite for content-addressed model identity: serialization
//! round-trips preserve ids, pool order is a manifest concern (not an
//! identity concern), and the 64-bit id space does not collide in practice.

use std::collections::HashMap;
use std::sync::OnceLock;

use muffin_check::{check, Config};
use muffin_data::IsicLike;
use muffin_models::{Architecture, BackboneConfig, FrozenModel, ModelPool};
use muffin_tensor::Rng64;

fn pool() -> &'static ModelPool {
    static POOL: OnceLock<ModelPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut rng = Rng64::seed(9100);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        ModelPool::train(
            &split.train,
            &[
                Architecture::resnet18(),
                Architecture::densenet121(),
                Architecture::shufflenet_v2_x1_0(),
            ],
            &BackboneConfig::fast(),
            &mut rng,
        )
    })
}

#[test]
fn serialization_round_trip_preserves_content_id() {
    check(
        "round trip preserves id",
        Config::cases(32),
        |g| g.usize_in(0..=pool().len() - 1),
        |&index| {
            let model = pool().get(index).expect("index in range");
            let json = muffin_json::to_string(model);
            let reparsed: FrozenModel = muffin_json::from_str(&json)
                .map_err(|e| format!("round trip failed to parse: {e}"))?;
            if reparsed.content_id() != model.content_id() {
                return Err(format!(
                    "{} changed id across a round trip: {:016x} -> {:016x}",
                    model.name(),
                    model.content_id(),
                    reparsed.content_id()
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn reordering_a_pool_changes_the_manifest_but_not_the_ids() {
    check(
        "reorder changes manifest not ids",
        Config::cases(32),
        |g| {
            // A random permutation of the pool indices, Fisher-Yates style.
            let mut order: Vec<usize> = (0..pool().len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, g.usize_in(0..=i));
            }
            order
        },
        |order| {
            let base = pool();
            let shuffled: ModelPool = order
                .iter()
                .map(|&i| base.get(i).expect("index in range").clone())
                .collect();
            // Identity is content-addressed: each model keeps its id no
            // matter where in the pool it sits.
            for (new_index, &old_index) in order.iter().enumerate() {
                let old = base.get(old_index).expect("old index").identity();
                let new = shuffled.get(new_index).expect("new index").identity();
                if old != new {
                    return Err(format!("identity moved with the pool: {old} != {new}"));
                }
            }
            // The manifest is ordered, so any non-trivial permutation must
            // change it — while the id *set* stays the same.
            let base_ids: Vec<u64> = base.manifest().entries().iter().map(|e| e.id).collect();
            let mut shuffled_ids: Vec<u64> =
                shuffled.manifest().entries().iter().map(|e| e.id).collect();
            if order.iter().enumerate().any(|(i, &o)| i != o)
                && base.manifest() == shuffled.manifest()
            {
                return Err("permuted pool produced an identical manifest".to_string());
            }
            shuffled_ids.sort_unstable();
            let mut sorted_base = base_ids;
            sorted_base.sort_unstable();
            if sorted_base != shuffled_ids {
                return Err("permutation changed the set of model ids".to_string());
            }
            Ok(())
        },
    );
}

#[test]
fn content_ids_do_not_collide_over_many_distinct_models() {
    // Vary a real trained model textually: rewriting its serialized name
    // yields a distinct serialization (and thus should yield a distinct id)
    // without paying for 10k training runs.
    let base = pool().get(0).expect("non-empty pool");
    let base_json = muffin_json::to_string(base);
    let needle = format!("\"name\":\"{}\"", base.name());
    assert!(
        base_json.contains(&needle),
        "serialized model must embed its name"
    );
    let mut seen: HashMap<u64, String> = HashMap::new();
    check(
        "no id collision over 10k models",
        Config::cases(10_000),
        |g| {
            let len = g.usize_in(1..=24);
            (0..len)
                .map(|_| {
                    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_";
                    ALPHABET[g.usize_in(0..=ALPHABET.len() - 1)] as char
                })
                .collect::<String>()
        },
        |name| {
            let mutated = base_json.replace(&needle, &format!("\"name\":\"{name}\""));
            let model: FrozenModel = muffin_json::from_str(&mutated)
                .map_err(|e| format!("mutated model failed to parse: {e}"))?;
            let id = model.content_id();
            match seen.insert(id, name.clone()) {
                Some(prior) if prior != *name => Err(format!(
                    "id collision: {prior:?} and {name:?} both hash to {id:016x}"
                )),
                _ => Ok(()),
            }
        },
    );
}
