//! Behavioural integration tests for the model crate: calibration,
//! ensembles and baselines interacting on realistic generated data.

use muffin_data::IsicLike;
use muffin_models::{
    expected_calibration_error, Architecture, BackboneConfig, Ensemble, EnsembleRule,
    FairnessMethod, ModelPool, TemperatureScale,
};
use muffin_tensor::Rng64;

mod fixture {
    use super::*;

    pub fn build() -> (muffin_data::DatasetSplit, ModelPool, Rng64) {
        let mut rng = Rng64::seed(6000);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[
                Architecture::resnet18(),
                Architecture::densenet121(),
                Architecture::shufflenet_v2_x1_0(),
            ],
            &BackboneConfig::fast(),
            &mut rng,
        );
        (split, pool, rng)
    }
}

#[test]
fn calibration_reduces_or_preserves_ece() {
    let (split, pool, _) = fixture::build();
    for model in pool.iter() {
        let raw = model.predict_proba(split.test.features());
        let before = expected_calibration_error(&raw, split.test.labels(), 10);
        let scale = TemperatureScale::fit(model, &split.val);
        let after =
            expected_calibration_error(&scale.apply(&raw), split.test.labels(), 10);
        // Fitted on val, measured on test: allow a small tolerance.
        assert!(
            after <= before + 0.05,
            "{}: calibration made ECE much worse ({before} -> {after})",
            model.name()
        );
    }
}

#[test]
fn ensembles_of_the_pool_behave_sanely_on_fairness() {
    let (split, pool, _) = fixture::build();
    let ensemble = Ensemble::new(pool.iter().cloned().collect(), EnsembleRule::MeanProbability);
    let eval = ensemble.evaluate(&split.test);
    // The ensemble must report the same schema and bounded unfairness.
    assert_eq!(eval.attributes.len(), 3);
    for attr in &eval.attributes {
        assert!(attr.unfairness >= 0.0 && attr.unfairness.is_finite());
    }
}

#[test]
fn baseline_methods_produce_distinct_models() {
    let (split, _, mut rng) = fixture::build();
    let age = split.train.schema().by_name("age").expect("age");
    let cfg = BackboneConfig::fast().with_epochs(4);
    let d = FairnessMethod::DataBalancing.apply(
        &Architecture::resnet18(),
        &split.train,
        age,
        &cfg,
        &mut rng,
    );
    let l =
        FairnessMethod::FairLoss.apply(&Architecture::resnet18(), &split.train, age, &cfg, &mut rng);
    // Same architecture, different interventions → different predictions
    // somewhere.
    let pd = d.predict(split.test.features());
    let pl = l.predict(split.test.features());
    assert_ne!(pd, pl, "D and L must not be identical");
    assert_ne!(d.name(), l.name());
}
