//! Behavioural integration tests for the model crate: calibration,
//! ensembles and baselines interacting on realistic generated data.

use muffin_data::IsicLike;
use muffin_models::{
    expected_calibration_error, Architecture, BackboneConfig, Ensemble, EnsembleRule,
    FairnessMethod, ModelPool, TemperatureScale,
};
use muffin_tensor::Rng64;

mod fixture {
    use super::*;

    pub fn build() -> (muffin_data::DatasetSplit, ModelPool, Rng64) {
        let mut rng = Rng64::seed(6000);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[
                Architecture::resnet18(),
                Architecture::densenet121(),
                Architecture::shufflenet_v2_x1_0(),
            ],
            &BackboneConfig::fast(),
            &mut rng,
        );
        (split, pool, rng)
    }
}

#[test]
fn calibration_reduces_or_preserves_ece() {
    let (split, pool, _) = fixture::build();
    for model in pool.iter() {
        let scale = TemperatureScale::fit(model, &split.val);
        // On the holdout it was fitted on, temperature scaling must not
        // worsen calibration (NLL and ECE are aligned enough for a small
        // slack to absorb binning effects).
        let raw_val = model.predict_proba(split.val.features());
        let val_before = expected_calibration_error(&raw_val, split.val.labels(), 10);
        let val_after =
            expected_calibration_error(&scale.apply(&raw_val), split.val.labels(), 10);
        assert!(
            val_after <= val_before + 0.03,
            "{}: calibration worsened holdout ECE ({val_before} -> {val_after})",
            model.name()
        );
        // Fitted on val, measured on test: with 240 test samples and 10
        // bins, ECE carries real sampling noise, so only guard against a
        // blow-up rather than demanding improvement.
        let raw = model.predict_proba(split.test.features());
        let before = expected_calibration_error(&raw, split.test.labels(), 10);
        let after =
            expected_calibration_error(&scale.apply(&raw), split.test.labels(), 10);
        assert!(
            after <= before + 0.10,
            "{}: calibration made ECE much worse ({before} -> {after})",
            model.name()
        );
    }
}

#[test]
fn ensembles_of_the_pool_behave_sanely_on_fairness() {
    let (split, pool, _) = fixture::build();
    let ensemble = Ensemble::new(pool.iter().cloned().collect(), EnsembleRule::MeanProbability);
    let eval = ensemble.evaluate(&split.test);
    // The ensemble must report the same schema and bounded unfairness.
    assert_eq!(eval.attributes.len(), 3);
    for attr in &eval.attributes {
        assert!(attr.unfairness >= 0.0 && attr.unfairness.is_finite());
    }
}

#[test]
fn baseline_methods_produce_distinct_models() {
    let (split, _, mut rng) = fixture::build();
    let age = split.train.schema().by_name("age").expect("age");
    let cfg = BackboneConfig::fast().with_epochs(4);
    let d = FairnessMethod::DataBalancing.apply(
        &Architecture::resnet18(),
        &split.train,
        age,
        &cfg,
        &mut rng,
    );
    let l =
        FairnessMethod::FairLoss.apply(&Architecture::resnet18(), &split.train, age, &cfg, &mut rng);
    // Same architecture, different interventions → different predictions
    // somewhere.
    let pd = d.predict(split.test.features());
    let pl = l.predict(split.test.features());
    assert_ne!(pd, pl, "D and L must not be identical");
    assert_ne!(d.name(), l.name());
}
