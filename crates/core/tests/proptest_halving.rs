//! Property tests for the successive-halving primitives: rung budget
//! allocation must conserve the screening total, promotion must keep the
//! top fraction under IEEE `total_cmp` while never promoting NaN rewards,
//! and degenerate inputs (one candidate, budget smaller than the rung
//! count, all-NaN reward vectors) must not panic. Runs on the in-repo
//! `muffin-check` harness with pinned seeds.

use muffin::{promote, promotion_count, rung_budgets};
use muffin_check::{check, prop_assert, prop_assert_eq, Config, Gen, Shrink};

fn config() -> Config {
    Config::cases(64).with_seed(0x7E45_0800)
}

/// A random budget-allocation request: total evaluations, rung count, and
/// the keep fraction. Shrinking moves each field toward its domain
/// minimum, so shrink candidates stay valid requests.
#[derive(Clone, Debug)]
struct BudgetCase {
    total: u32,         // 0..=500 — includes budget < rungs
    rungs: u32,         // 1..=8
    keep_fraction: f32, // 0.05..=0.95
}

impl BudgetCase {
    fn generate(g: &mut Gen) -> Self {
        Self {
            total: g.usize_in(0..=500) as u32,
            rungs: g.usize_in(1..=8) as u32,
            keep_fraction: g.f32_in(0.05, 0.95),
        }
    }
}

impl Shrink for BudgetCase {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.total > 0 {
            out.push(Self {
                total: 0,
                ..self.clone()
            });
            out.push(Self {
                total: self.total / 2,
                ..self.clone()
            });
        }
        if self.rungs > 1 {
            out.push(Self {
                rungs: 1,
                ..self.clone()
            });
            out.push(Self {
                rungs: self.rungs / 2,
                ..self.clone()
            });
        }
        if self.keep_fraction != 0.5 {
            out.push(Self {
                keep_fraction: 0.5,
                ..self.clone()
            });
        }
        out
    }
}

#[test]
fn rung_budgets_conserve_the_total() {
    check(
        "rung budgets conserve the total",
        config(),
        BudgetCase::generate,
        |case| {
            let budgets = rung_budgets(case.total, case.rungs, case.keep_fraction);
            prop_assert_eq!(budgets.len(), case.rungs as usize);
            prop_assert_eq!(budgets.iter().sum::<u32>(), case.total);
            Ok(())
        },
    );
}

#[test]
fn rung_budgets_are_non_increasing_and_front_loaded() {
    check(
        "rung budgets are non-increasing",
        config(),
        BudgetCase::generate,
        |case| {
            let budgets = rung_budgets(case.total, case.rungs, case.keep_fraction);
            prop_assert!(
                budgets.windows(2).all(|w| w[0] >= w[1]),
                "later rungs never get more budget than earlier ones: {budgets:?}"
            );
            // A non-empty total always funds the first (cheapest) rung first.
            if case.total > 0 {
                prop_assert!(
                    budgets[0] > 0,
                    "rung 0 starved despite total {}",
                    case.total
                );
            }
            Ok(())
        },
    );
}

/// A random reward vector with a controllable NaN rate, plus the keep
/// fraction used for promotion.
#[derive(Clone, Debug)]
struct PromoteCase {
    rewards: Vec<f32>,
    keep_fraction: f32,
}

impl PromoteCase {
    fn generate(g: &mut Gen) -> Self {
        let len = g.usize_in(0..=24);
        let nan_rate = g.f32_in(0.0, 0.6);
        let rewards = (0..len)
            .map(|_| {
                if g.bool(nan_rate) {
                    f32::NAN
                } else {
                    g.f32_in(-2.0, 2.0)
                }
            })
            .collect();
        Self {
            rewards,
            keep_fraction: g.f32_in(0.05, 0.95),
        }
    }
}

impl Shrink for PromoteCase {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if !self.rewards.is_empty() {
            out.push(Self {
                rewards: Vec::new(),
                ..self.clone()
            });
            out.push(Self {
                rewards: self.rewards[..self.rewards.len() / 2].to_vec(),
                ..self.clone()
            });
            out.push(Self {
                rewards: self.rewards[1..].to_vec(),
                ..self.clone()
            });
        }
        if self.rewards.iter().any(|r| r.is_nan()) {
            out.push(Self {
                rewards: self
                    .rewards
                    .iter()
                    .copied()
                    .filter(|r| !r.is_nan())
                    .collect(),
                ..self.clone()
            });
        }
        if self.keep_fraction != 0.5 {
            out.push(Self {
                keep_fraction: 0.5,
                ..self.clone()
            });
        }
        out
    }
}

#[test]
fn promotion_keeps_the_top_fraction_and_never_nan() {
    check(
        "promotion keeps the top fraction",
        config(),
        PromoteCase::generate,
        |case| {
            let promoted = promote(&case.rewards, case.keep_fraction);
            let finite: Vec<usize> = (0..case.rewards.len())
                .filter(|&i| !case.rewards[i].is_nan())
                .collect();

            // Exactly min(⌈k·keep⌉ clamped to [1,k], #non-NaN) survive.
            let expected =
                promotion_count(case.rewards.len(), case.keep_fraction).min(finite.len());
            prop_assert_eq!(promoted.len(), expected);

            // NaN rewards are never promoted, and indices are in range & unique.
            let mut seen = std::collections::HashSet::new();
            for &i in &promoted {
                prop_assert!(i < case.rewards.len(), "index {i} out of range");
                prop_assert!(!case.rewards[i].is_nan(), "promoted a NaN reward at {i}");
                prop_assert!(seen.insert(i), "index {i} promoted twice");
            }

            // Every promoted reward >= every excluded non-NaN reward (total_cmp).
            let excluded: Vec<usize> = finite
                .iter()
                .copied()
                .filter(|i| !seen.contains(i))
                .collect();
            for &p in &promoted {
                for &e in &excluded {
                    prop_assert!(
                        case.rewards[p].total_cmp(&case.rewards[e]) != std::cmp::Ordering::Less,
                        "promoted rewards[{p}]={} < excluded rewards[{e}]={}",
                        case.rewards[p],
                        case.rewards[e]
                    );
                }
            }

            // Promoted list is ordered best-first.
            prop_assert!(
                promoted
                    .windows(2)
                    .all(|w| case.rewards[w[0]].total_cmp(&case.rewards[w[1]])
                        != std::cmp::Ordering::Less),
                "promotion order is not best-first: {promoted:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn promotion_count_is_clamped_to_valid_bounds() {
    check(
        "promotion count stays in [1, k]",
        config(),
        PromoteCase::generate,
        |case| {
            let k = case.rewards.len();
            let count = promotion_count(k, case.keep_fraction);
            if k == 0 {
                prop_assert_eq!(count, 0);
            } else {
                prop_assert!((1..=k).contains(&count), "count {count} outside [1, {k}]");
            }
            Ok(())
        },
    );
}

// Degenerate inputs exercised with fixed values: these are the exact edge
// cases the sharded screen can produce, so they get explicit coverage in
// addition to whatever the generators happen to draw.

#[test]
fn degenerate_inputs_do_not_panic() {
    // Budget smaller than the rung count: later rungs get zero, total conserved.
    let starved = rung_budgets(3, 8, 0.5);
    assert_eq!(starved.iter().sum::<u32>(), 3);
    assert_eq!(starved.len(), 8);

    // Zero rungs yields an empty schedule, zero total a zeroed one.
    assert!(rung_budgets(10, 0, 0.5).is_empty());
    assert_eq!(rung_budgets(0, 3, 0.5), vec![0, 0, 0]);

    // A single candidate always survives promotion regardless of fraction.
    assert_eq!(promote(&[0.25], 0.01), vec![0]);
    assert_eq!(promotion_count(1, 0.01), 1);

    // Empty and all-NaN reward vectors promote nothing.
    assert!(promote(&[], 0.5).is_empty());
    assert!(promote(&[f32::NAN, f32::NAN], 0.5).is_empty());

    // Extreme keep fractions are clamped rather than dividing by zero.
    assert_eq!(rung_budgets(10, 2, 0.0).iter().sum::<u32>(), 10);
    assert_eq!(rung_budgets(10, 2, 1.0), vec![5, 5]);
}
