//! Public-API surface tests for the `muffin` crate: the types downstream
//! users hold must satisfy the usual Rust API guidelines (Send + Sync,
//! Debug, Clone where sensible) and the documented constructors must
//! exist. Compile-time guarantees, checked once here.

use muffin::{
    Candidate, ControllerConfig, ControllerState, DisagreementBreakdown, EpisodeRecord,
    EvalCacheFile, FusingStructure, FusionComposition, HalvingConfig, HeadSpec, HeadTrainConfig,
    MuffinError, PersistenceOptions, PrivilegeMap, ProxyDataset, RewardConfig, RewardKind,
    RnnController, SearchCheckpoint, SearchConfig, SearchFingerprint, SearchOutcome, SearchSpace,
    TextTable, TrustReport, CHECKPOINT_VERSION,
};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_debug<T: std::fmt::Debug>() {}
fn assert_clone<T: Clone>() {}

#[test]
fn public_types_are_send_sync() {
    assert_send_sync::<MuffinError>();
    assert_send_sync::<PrivilegeMap>();
    assert_send_sync::<ProxyDataset>();
    assert_send_sync::<FusingStructure>();
    assert_send_sync::<HeadSpec>();
    assert_send_sync::<HeadTrainConfig>();
    assert_send_sync::<RewardConfig>();
    assert_send_sync::<RewardKind>();
    assert_send_sync::<SearchSpace>();
    assert_send_sync::<Candidate>();
    assert_send_sync::<ControllerConfig>();
    assert_send_sync::<RnnController>();
    assert_send_sync::<SearchConfig>();
    assert_send_sync::<SearchOutcome>();
    assert_send_sync::<EpisodeRecord>();
    assert_send_sync::<HalvingConfig>();
    assert_send_sync::<TrustReport>();
    assert_send_sync::<DisagreementBreakdown>();
    assert_send_sync::<FusionComposition>();
    assert_send_sync::<ControllerState>();
    assert_send_sync::<SearchFingerprint>();
    assert_send_sync::<SearchCheckpoint>();
    assert_send_sync::<EvalCacheFile>();
    assert_send_sync::<PersistenceOptions>();
}

#[test]
fn public_types_are_debuggable_and_cloneable() {
    assert_debug::<MuffinError>();
    assert_debug::<SearchOutcome>();
    assert_debug::<FusingStructure>();
    assert_debug::<TrustReport>();
    assert_debug::<TextTable>();
    assert_clone::<PrivilegeMap>();
    assert_clone::<ProxyDataset>();
    assert_clone::<FusingStructure>();
    assert_clone::<SearchConfig>();
    assert_clone::<SearchOutcome>();
    assert_clone::<RnnController>();
    assert_debug::<SearchCheckpoint>();
    assert_debug::<PersistenceOptions>();
    assert_clone::<ControllerState>();
    assert_clone::<SearchFingerprint>();
    assert_clone::<SearchCheckpoint>();
    assert_clone::<EvalCacheFile>();
    assert_clone::<PersistenceOptions>();
}

#[test]
fn errors_format_and_compose_with_boxed_error() {
    // MuffinError must slot into `Box<dyn Error>` pipelines (C-GOOD-ERR).
    fn fails() -> Result<(), Box<dyn std::error::Error>> {
        Err(Box::new(MuffinError::EmptyPool))
    }
    let err = fails().unwrap_err();
    assert!(err.to_string().contains("pool"));
}

#[test]
fn default_configs_are_consistent() {
    let reward = RewardConfig::default();
    assert!(reward.epsilon > 0.0);
    let controller = ControllerConfig::default();
    assert!(controller.gamma > 0.0 && controller.gamma <= 1.0);
    assert!((0.0..1.0).contains(&controller.baseline_decay));
    let halving = HalvingConfig::default();
    halving
        .validate()
        .expect("default halving config must be valid");
    let head = HeadTrainConfig::default();
    assert!(head.epochs > 0 && head.batch_size > 0);
    let paper = SearchConfig::paper(&["age"]);
    assert_eq!(paper.episodes, 500, "the paper's episode count");
    assert_eq!(paper.num_slots, 2, "the paper's paired-model count");
    let persistence = PersistenceOptions::default();
    assert!(persistence.checkpoint.is_none() && persistence.eval_cache.is_none());
    assert!(!persistence.resume && persistence.halt_after.is_none());
    assert_eq!(CHECKPOINT_VERSION, 3, "bump only with a format change");
}
