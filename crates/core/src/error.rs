use std::error::Error;
use std::fmt;

/// Errors surfaced by the Muffin framework.
///
/// # Example
///
/// ```
/// use muffin::MuffinError;
///
/// let err = MuffinError::EmptyPool;
/// assert!(err.to_string().contains("pool"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuffinError {
    /// The model pool has no members to select from.
    EmptyPool,
    /// No unprivileged samples exist, so a proxy dataset cannot be built.
    EmptyProxy,
    /// A configuration value is inconsistent; the message names it.
    InvalidConfig(String),
    /// A requested attribute does not exist in the dataset schema.
    UnknownAttribute(String),
}

impl fmt::Display for MuffinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuffinError::EmptyPool => f.write_str("model pool is empty"),
            MuffinError::EmptyProxy => {
                f.write_str("no unprivileged samples available for the proxy dataset")
            }
            MuffinError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MuffinError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
        }
    }
}

impl Error for MuffinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        assert_eq!(MuffinError::EmptyPool.to_string(), "model pool is empty");
        assert!(MuffinError::InvalidConfig("episodes must be > 0".into())
            .to_string()
            .contains("episodes"));
        assert!(MuffinError::UnknownAttribute("tone".into()).to_string().contains("tone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MuffinError>();
    }
}
