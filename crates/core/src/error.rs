use std::error::Error;
use std::fmt;

/// Errors surfaced by the Muffin framework.
///
/// # Example
///
/// ```
/// use muffin::MuffinError;
///
/// let err = MuffinError::EmptyPool;
/// assert!(err.to_string().contains("pool"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuffinError {
    /// The model pool has no members to select from.
    EmptyPool,
    /// No unprivileged samples exist, so a proxy dataset cannot be built.
    EmptyProxy,
    /// A configuration value is inconsistent; the message names it.
    InvalidConfig(String),
    /// A requested attribute does not exist in the dataset schema.
    UnknownAttribute(String),
    /// A checkpoint or evaluation-cache file failed an IO operation; the
    /// message names the path and the underlying error.
    Io(String),
    /// A checkpoint or evaluation-cache file exists but cannot be used:
    /// corrupt JSON, an unsupported version, or a fingerprint that does
    /// not match the current run. The message says which.
    StaleArtifact(String),
    /// The search stopped early at a batch boundary because
    /// `halt_after` was reached; a checkpoint covering `episode` episodes
    /// was written before returning.
    Halted {
        /// Number of completed episodes at the stop point.
        episode: u32,
    },
}

impl fmt::Display for MuffinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MuffinError::EmptyPool => f.write_str("model pool is empty"),
            MuffinError::EmptyProxy => {
                f.write_str("no unprivileged samples available for the proxy dataset")
            }
            MuffinError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MuffinError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            MuffinError::Io(msg) => write!(f, "io error: {msg}"),
            MuffinError::StaleArtifact(msg) => write!(f, "stale artifact: {msg}"),
            MuffinError::Halted { episode } => {
                write!(
                    f,
                    "search halted after {episode} episode(s); checkpoint written"
                )
            }
        }
    }
}

impl Error for MuffinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        assert_eq!(MuffinError::EmptyPool.to_string(), "model pool is empty");
        assert!(MuffinError::InvalidConfig("episodes must be > 0".into())
            .to_string()
            .contains("episodes"));
        assert!(MuffinError::UnknownAttribute("tone".into())
            .to_string()
            .contains("tone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MuffinError>();
    }
}
