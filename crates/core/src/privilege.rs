use muffin_data::{AttributeId, Dataset};
use muffin_models::ModelPool;

/// Which groups of which attributes are unprivileged.
///
/// The paper's pipeline trains the muffin head only on unprivileged-group
/// data (component ②). This map records, for each *targeted* unfair
/// attribute, the set of groups considered unprivileged. It can be
/// declared manually or inferred from pool behaviour with
/// [`PrivilegeMap::infer`].
///
/// # Example
///
/// ```
/// use muffin::PrivilegeMap;
/// use muffin_data::AttributeId;
///
/// let mut map = PrivilegeMap::new();
/// map.set(AttributeId::new(0), vec![4, 5]);
/// assert!(map.is_unprivileged(AttributeId::new(0), 5));
/// assert!(!map.is_unprivileged(AttributeId::new(0), 0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrivilegeMap {
    entries: Vec<(usize, Vec<u16>)>,
}

muffin_json::impl_json!(struct PrivilegeMap { entries });

impl PrivilegeMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the unprivileged groups of one attribute, replacing any
    /// previous entry.
    pub fn set(&mut self, attr: AttributeId, mut groups: Vec<u16>) {
        groups.sort_unstable();
        groups.dedup();
        if let Some(entry) = self.entries.iter_mut().find(|(a, _)| *a == attr.index()) {
            entry.1 = groups;
        } else {
            self.entries.push((attr.index(), groups));
        }
    }

    /// The attributes this map targets, in insertion order.
    pub fn attributes(&self) -> Vec<AttributeId> {
        self.entries.iter().map(|&(a, _)| AttributeId::new(a)).collect()
    }

    /// Unprivileged groups of `attr` (empty if the attribute is untargeted).
    pub fn unprivileged_groups(&self, attr: AttributeId) -> &[u16] {
        self.entries
            .iter()
            .find(|(a, _)| *a == attr.index())
            .map_or(&[], |(_, groups)| groups.as_slice())
    }

    /// Whether `group` of `attr` is unprivileged.
    pub fn is_unprivileged(&self, attr: AttributeId, group: u16) -> bool {
        self.unprivileged_groups(attr).contains(&group)
    }

    /// Number of targeted attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no attribute is targeted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Indices of the samples of `dataset` that fall in *any* unprivileged
    /// group of *any* targeted attribute — the support of the paper's
    /// proxy dataset.
    pub fn unprivileged_samples(&self, dataset: &Dataset) -> Vec<usize> {
        (0..dataset.len())
            .filter(|&i| {
                self.entries.iter().any(|(a, groups)| {
                    groups.contains(&dataset.groups(AttributeId::new(*a))[i])
                })
            })
            .collect()
    }

    /// Infers the map from pool behaviour: for each attribute in `attrs`, a
    /// group is unprivileged when its **pool-average** accuracy falls below
    /// the pool-average overall accuracy by more than `margin`.
    ///
    /// This is the data-driven counterpart of the paper's unprivileged
    /// groups and requires no knowledge of how the data was generated.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty or an attribute is out of range.
    pub fn infer(pool: &ModelPool, dataset: &Dataset, attrs: &[AttributeId], margin: f32) -> Self {
        assert!(!pool.is_empty(), "cannot infer privilege from an empty pool");
        let evals: Vec<_> = pool.iter().map(|m| m.evaluate(dataset)).collect();
        let overall: f32 =
            evals.iter().map(|e| e.accuracy).sum::<f32>() / evals.len() as f32;
        let mut map = Self::new();
        for &attr in attrs {
            let schema_attr = dataset.schema().get(attr).expect("attribute in range");
            let num_groups = schema_attr.num_groups();
            let mut group_acc = vec![0.0f32; num_groups];
            let mut group_present = vec![false; num_groups];
            for eval in &evals {
                let attr_eval = &eval.attributes[attr.index()];
                for g in &attr_eval.groups {
                    if g.count > 0 {
                        group_acc[g.group as usize] += g.accuracy;
                        group_present[g.group as usize] = true;
                    }
                }
            }
            let unpriv: Vec<u16> = (0..num_groups)
                .filter(|&g| {
                    group_present[g] && group_acc[g] / evals.len() as f32 + margin < overall
                })
                .map(|g| g as u16)
                .collect();
            map.set(attr, unpriv);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::IsicLike;
    use muffin_models::{Architecture, BackboneConfig};
    use muffin_tensor::Rng64;

    #[test]
    fn set_deduplicates_and_sorts() {
        let mut map = PrivilegeMap::new();
        map.set(AttributeId::new(0), vec![3, 1, 3, 2]);
        assert_eq!(map.unprivileged_groups(AttributeId::new(0)), &[1, 2, 3]);
    }

    #[test]
    fn set_replaces_existing_entry() {
        let mut map = PrivilegeMap::new();
        map.set(AttributeId::new(0), vec![1]);
        map.set(AttributeId::new(0), vec![2]);
        assert_eq!(map.unprivileged_groups(AttributeId::new(0)), &[2]);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn untargeted_attribute_has_no_unprivileged_groups() {
        let map = PrivilegeMap::new();
        assert!(map.unprivileged_groups(AttributeId::new(7)).is_empty());
        assert!(map.is_empty());
    }

    #[test]
    fn unprivileged_samples_take_the_union() {
        let mut rng = Rng64::seed(1);
        let ds = IsicLike::small().generate(&mut rng);
        let age = ds.schema().by_name("age").unwrap();
        let site = ds.schema().by_name("site").unwrap();
        let mut map = PrivilegeMap::new();
        map.set(age, vec![4, 5]);
        map.set(site, vec![7]);
        let samples = map.unprivileged_samples(&ds);
        assert!(!samples.is_empty());
        for &i in &samples {
            let in_age = [4usize, 5].contains(&ds.group_of(age, i).index());
            let in_site = ds.group_of(site, i).index() == 7;
            assert!(in_age || in_site);
        }
        // And nothing outside the union was included.
        let count_manual = (0..ds.len())
            .filter(|&i| {
                [4usize, 5].contains(&ds.group_of(age, i).index())
                    || ds.group_of(site, i).index() == 7
            })
            .count();
        assert_eq!(samples.len(), count_manual);
    }

    #[test]
    fn infer_finds_designed_unprivileged_groups() {
        let mut rng = Rng64::seed(2);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = muffin_models::ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::densenet121()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let age = split.train.schema().by_name("age").unwrap();
        let map = PrivilegeMap::infer(&pool, &split.val, &[age], 0.02);
        let found = map.unprivileged_groups(age);
        // The designed unprivileged age groups are 4 and 5; inference on a
        // small sample may pick up a borderline extra group but must find
        // the designed ones.
        assert!(found.contains(&5), "group 5 (81+) must be flagged, got {found:?}");
        assert!(found.contains(&4), "group 4 (66-80) must be flagged, got {found:?}");
        assert!(!found.contains(&2), "majority group 2 must not be flagged, got {found:?}");
    }
}
