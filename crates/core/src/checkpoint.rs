//! Durable persistence for the search loop: checkpoints and the
//! cross-run evaluation cache.
//!
//! The search (paper Sec. 3.2 ④) is the expensive phase of the pipeline —
//! every distinct candidate trains a muffin head from scratch. This module
//! makes that work durable in two layers:
//!
//! * [`SearchCheckpoint`] — a complete, versioned snapshot of a run in
//!   flight: RNG stream position, controller parameters + optimizer
//!   moments + EMA baseline, the episode history and the action-vector →
//!   [`EpisodeRecord`] evaluation cache. Written atomically (temp file +
//!   rename) at REINFORCE batch boundaries, so a killed run resumes
//!   **bit-identically** — the resumed [`SearchOutcome`] is byte-equal to
//!   an uninterrupted run at any worker count (enforced by the
//!   golden-snapshot suite).
//! * [`EvalCacheFile`] — just the evaluation cache, shared **across**
//!   runs: a repeated search over the same space skips already-trained
//!   candidates and reports each skip on the `search.cache_hit_disk`
//!   trace counter.
//!
//! Both artifacts carry a [`SearchFingerprint`] identifying the exact
//! run they belong to. Loading rejects loudly
//! ([`MuffinError::StaleArtifact`]) on any mismatch rather than silently
//! producing a drifted search.
//!
//! [`SearchOutcome`]: crate::SearchOutcome

use crate::controller::ControllerState;
use crate::search::{EpisodeRecord, SearchConfig};
use crate::{MuffinError, SearchSpace};
use muffin_models::{PoolManifest, PoolRelation};
use std::path::Path;

/// Format version written into every checkpoint and eval-cache file.
/// Bumped whenever the serialised layout changes incompatibly; loading a
/// file with a different version is a [`MuffinError::StaleArtifact`].
/// Version 2 added [`SearchCheckpoint::exchanges_applied`] for sharded
/// elite exchange; version 3 added the per-model
/// [`PoolManifest`] to [`SearchFingerprint`] for content-addressed pool
/// lifecycle.
pub const CHECKPOINT_VERSION: u32 = 3;

/// The 64-bit FNV-1a hash, used to fingerprint the model pool and the
/// dataset split without embedding them in the checkpoint. Canonically
/// defined in `muffin-models` ([`muffin_models::fnv1a64`]), where it also
/// provides per-model content ids.
pub use muffin_models::fnv1a64;

/// Identity of a search run, for staleness detection.
///
/// Two runs share a fingerprint exactly when they are guaranteed to walk
/// the same search trajectory prefix: same caller-RNG entry state, same
/// configuration (modulo the episode budget — a longer run's trajectory
/// extends a shorter one's, so cached evaluations stay valid), same
/// decoded search space, and the same pool and dataset bytes.
#[derive(Debug, Clone)]
pub struct SearchFingerprint {
    /// The caller's [`Rng64`](muffin_tensor::Rng64) state on entry to the
    /// run, before the controller consumed anything.
    pub rng_state: [u64; 4],
    /// The search configuration with `episodes` normalised to zero.
    pub config: SearchConfig,
    /// The controller's decoded search space.
    pub space: SearchSpace,
    /// [`fnv1a64`] over the serialised model pool.
    pub pool_hash: u64,
    /// The pool's ordered per-model content ids. This is what lets a
    /// later run tell a safe pool *extension* (old manifest is a prefix
    /// of the new one) apart from a genuine pool *change*, and lets
    /// rejection messages name the models involved.
    pub manifest: PoolManifest,
    /// [`fnv1a64`] over the serialised train/val/test split.
    pub data_hash: u64,
}

muffin_json::impl_json!(struct SearchFingerprint {
    rng_state, config, space, pool_hash, manifest, data_hash,
});

impl SearchFingerprint {
    /// Builds the fingerprint for a run. `config.episodes` is normalised
    /// to zero so artifacts stay valid across episode-budget changes.
    pub fn new(
        rng_state: [u64; 4],
        config: &SearchConfig,
        space: &SearchSpace,
        pool_json: &str,
        manifest: PoolManifest,
        split_json: &str,
    ) -> Self {
        let mut config = config.clone();
        config.episodes = 0;
        Self {
            rng_state,
            config,
            space: space.clone(),
            pool_hash: fnv1a64(pool_json.as_bytes()),
            manifest,
            data_hash: fnv1a64(split_json.as_bytes()),
        }
    }

    /// Names the first component differing from `other`, or `None` when
    /// the fingerprints match. Field-by-field so rejection messages say
    /// *what* went stale (reseeded run, edited config, retrained pool,
    /// regenerated data) instead of a bare "mismatch". Pool mismatches
    /// name the added/removed/mutated models by id when the manifests
    /// can tell (see [`PoolRelation::describe`]).
    pub fn mismatch(&self, other: &Self) -> Option<String> {
        if self.rng_state != other.rng_state {
            return Some("rng seed/state changed".to_string());
        }
        self.mismatch_ignoring_rng(other)
    }

    /// Like [`Self::mismatch`] but ignores the caller-RNG entry state.
    ///
    /// This is the matching rule for artifacts **shared across seeds**:
    /// a sharded fleet's islands run distinct controller seeds but train
    /// candidates on identical pool/data/config, so their evaluations are
    /// interchangeable even though their trajectories differ.
    pub fn mismatch_ignoring_rng(&self, other: &Self) -> Option<String> {
        if muffin_json::to_string(&self.config) != muffin_json::to_string(&other.config) {
            return Some("search configuration changed".to_string());
        }
        // Pool before space: a grown pool also grows the space's pool
        // size, and the manifest diff is the message operators need.
        if self.pool_hash != other.pool_hash || self.manifest != other.manifest {
            return Some(self.describe_pool_mismatch(other));
        }
        if muffin_json::to_string(&self.space) != muffin_json::to_string(&other.space) {
            return Some("search space changed".to_string());
        }
        if self.data_hash != other.data_hash {
            return Some("dataset split changed".to_string());
        }
        None
    }

    /// Operator-facing description of a pool mismatch between an artifact
    /// fingerprint (`other`, read from disk) and the current run
    /// (`self`), naming models by id wherever the manifests can tell.
    fn describe_pool_mismatch(&self, other: &Self) -> String {
        match other.manifest.relation_to(&self.manifest) {
            // Manifests agree but pool_hash differs: pre-manifest callers
            // (unit fixtures) or byte-level drift outside any model.
            PoolRelation::Identical => "model pool changed".to_string(),
            relation => relation.describe(),
        }
    }

    /// Classifies an artifact fingerprint (`old`, read from disk) against
    /// the current run (`self`) for **warm resume after pool growth**.
    ///
    /// Returns the pool relation when every non-pool component matches
    /// and the pool either matches too ([`PoolRelation::Identical`]) or
    /// strictly grew ([`PoolRelation::Grew`]: the old pool is a prefix of
    /// the new one, so every recorded pool index still names the same
    /// model). The search space is allowed to differ in its pool size
    /// only. Any other difference — including removed, mutated, inserted
    /// or reordered models — is an error naming what changed.
    ///
    /// `ignore_rng` matches [`Self::mismatch_ignoring_rng`]: pass `true`
    /// for cross-seed shared artifacts (fleet caches).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first disqualifying
    /// difference; required models that vanished from the pool are named
    /// by identity.
    pub fn growth_from(&self, old: &Self, ignore_rng: bool) -> Result<PoolRelation, String> {
        if !ignore_rng && self.rng_state != old.rng_state {
            return Err("rng seed/state changed".to_string());
        }
        if muffin_json::to_string(&self.config) != muffin_json::to_string(&old.config) {
            return Err("search configuration changed".to_string());
        }
        if self.data_hash != old.data_hash {
            return Err("dataset split changed".to_string());
        }
        // A required model must survive any pool edit *at its recorded
        // index*: report it by identity before the generic pool verdict.
        for &index in old.space.required_models() {
            if old.manifest.get(index).is_some() && self.manifest.get(index) != old.manifest.get(index)
            {
                let ident = old.manifest.get(index).expect("checked above");
                return Err(format!(
                    "required model {ident} is no longer at pool index {index}"
                ));
            }
        }
        let relation = old.manifest.relation_to(&self.manifest);
        match relation {
            PoolRelation::Identical => {
                if self.pool_hash != old.pool_hash {
                    return Err("model pool changed".to_string());
                }
                if muffin_json::to_string(&self.space) != muffin_json::to_string(&old.space) {
                    return Err("search space changed".to_string());
                }
                Ok(PoolRelation::Identical)
            }
            PoolRelation::Grew { added } => {
                let shrunk = self.space.clone().with_pool_size(old.space.pool_size());
                match shrunk {
                    Ok(s) if muffin_json::to_string(&s) == muffin_json::to_string(&old.space) => {
                        Ok(PoolRelation::Grew { added })
                    }
                    _ => Err("search space changed beyond the pool size".to_string()),
                }
            }
            changed => Err(changed.describe()),
        }
    }
}

/// A complete snapshot of a search run at a REINFORCE batch boundary.
///
/// Everything the loop in
/// [`MuffinSearch::run_persistent`](crate::MuffinSearch::run_persistent)
/// carries across batches is here; restoring it and continuing produces
/// the byte-identical [`SearchOutcome`](crate::SearchOutcome) an
/// uninterrupted run would have returned.
#[derive(Debug, Clone)]
pub struct SearchCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Identity of the run this snapshot belongs to.
    pub fingerprint: SearchFingerprint,
    /// The episode budget of the interrupted run.
    pub target_episodes: u32,
    /// Completed episodes (always a batch boundary, except in the final
    /// checkpoint of a finished run whose last batch was partial).
    pub episode: u32,
    /// The caller RNG's state at the boundary.
    pub rng_state: [u64; 4],
    /// Seed of the [`SplitMix64`](muffin_tensor::SplitMix64) stream the
    /// per-episode head seeds are derived from (one draw off the caller
    /// RNG at run start).
    pub seed_stream_seed: u64,
    /// The controller's learnable state.
    pub controller: ControllerState,
    /// One record per completed episode, in order.
    pub history: Vec<EpisodeRecord>,
    /// The evaluation cache, sorted by action vector for a deterministic
    /// serialisation.
    pub cache: Vec<EpisodeRecord>,
    /// Number of sharded elite-exchange rounds already folded into
    /// `controller` (see [`crate::run_sharded`]). The supervisor bumps
    /// this **before** launching the post-exchange segment, so a crash
    /// between the nudge and the segment can never apply the same
    /// exchange twice. Plain (non-sharded) runs leave it at zero.
    pub exchanges_applied: u32,
}

muffin_json::impl_json!(struct SearchCheckpoint {
    version, fingerprint, target_episodes, episode, rng_state, seed_stream_seed,
    controller, history, cache, exchanges_applied,
});

impl SearchCheckpoint {
    /// Writes the checkpoint atomically: the JSON goes to a `.tmp`
    /// sibling first and is renamed over `path`, so a crash mid-write
    /// leaves the previous checkpoint intact rather than a truncated one.
    ///
    /// # Errors
    ///
    /// [`MuffinError::Io`] naming the path on any filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MuffinError> {
        write_atomic(path.as_ref(), &muffin_json::to_string(self))
    }

    /// Loads and validates a checkpoint written by
    /// [`SearchCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// * [`MuffinError::Io`] if the file cannot be read;
    /// * [`MuffinError::StaleArtifact`] if it does not parse, its version
    ///   is unsupported, or its fingerprint names a different run than
    ///   `expected`.
    pub fn load(path: impl AsRef<Path>, expected: &SearchFingerprint) -> Result<Self, MuffinError> {
        let path = path.as_ref();
        let ckpt = Self::parse_checked(path)?;
        if let Some(what) = expected.mismatch(&ckpt.fingerprint) {
            return Err(MuffinError::StaleArtifact(format!(
                "checkpoint {} belongs to a different run: {what}",
                path.display()
            )));
        }
        Ok(ckpt)
    }

    /// Loads a checkpoint for `muffin search --resume`, additionally
    /// accepting one written against a pool that has since **grown** by
    /// appended models ([`SearchFingerprint::growth_from`]).
    ///
    /// Returns the checkpoint together with the pool relation:
    /// [`PoolRelation::Identical`] is the plain bit-identical resume;
    /// [`PoolRelation::Grew`] means the caller must warm-start — extend
    /// the controller over the grown pool and continue, reusing every
    /// recorded evaluation (old pool indices are still valid because the
    /// old pool is a prefix of the new one).
    ///
    /// # Errors
    ///
    /// As [`Self::load`]; pool edits other than pure growth are rejected
    /// naming the added/removed/mutated models by id.
    pub fn load_for_resume(
        path: impl AsRef<Path>,
        expected: &SearchFingerprint,
    ) -> Result<(Self, PoolRelation), MuffinError> {
        let path = path.as_ref();
        let ckpt = Self::parse_checked(path)?;
        if expected.mismatch(&ckpt.fingerprint).is_none() {
            return Ok((ckpt, PoolRelation::Identical));
        }
        match expected.growth_from(&ckpt.fingerprint, false) {
            Ok(relation) => Ok((ckpt, relation)),
            Err(what) => Err(MuffinError::StaleArtifact(format!(
                "checkpoint {} belongs to a different run: {what}",
                path.display()
            ))),
        }
    }

    /// Reads, parses and structurally validates a checkpoint, without any
    /// fingerprint comparison.
    fn parse_checked(path: &Path) -> Result<Self, MuffinError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            MuffinError::Io(format!("cannot read checkpoint {}: {e}", path.display()))
        })?;
        let ckpt: Self = muffin_json::from_str(&text).map_err(|e| {
            MuffinError::StaleArtifact(format!(
                "checkpoint {} is corrupt or truncated: {e}",
                path.display()
            ))
        })?;
        if ckpt.version != CHECKPOINT_VERSION {
            return Err(MuffinError::StaleArtifact(format!(
                "checkpoint {} has version {}, this build reads version {CHECKPOINT_VERSION}",
                path.display(),
                ckpt.version
            )));
        }
        if ckpt.episode as usize != ckpt.history.len() {
            return Err(MuffinError::StaleArtifact(format!(
                "checkpoint {} records {} episodes but holds {} history entries",
                path.display(),
                ckpt.episode,
                ckpt.history.len()
            )));
        }
        Ok(ckpt)
    }
}

/// The cross-run evaluation cache: trained-candidate metrics keyed by
/// action vector, reusable by any run sharing the same
/// [`SearchFingerprint`].
///
/// Because a matching fingerprint pins the whole search trajectory,
/// every cached record is bit-identical to what a fresh evaluation would
/// produce — loading the cache changes wall-clock time and the
/// `search.cache_hit_disk` counter, never the
/// [`SearchOutcome`](crate::SearchOutcome).
#[derive(Debug, Clone)]
pub struct EvalCacheFile {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Identity of the runs this cache serves.
    pub fingerprint: SearchFingerprint,
    /// Cached evaluations, sorted by action vector.
    pub records: Vec<EpisodeRecord>,
}

muffin_json::impl_json!(struct EvalCacheFile { version, fingerprint, records });

impl EvalCacheFile {
    /// Writes the cache atomically (see [`SearchCheckpoint::save`]).
    ///
    /// # Errors
    ///
    /// [`MuffinError::Io`] naming the path on any filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MuffinError> {
        write_atomic(path.as_ref(), &muffin_json::to_string(self))
    }

    /// Loads and validates an evaluation cache.
    ///
    /// A missing or empty file yields `Ok(None)` — a cold cache is the
    /// normal first-run state, not an error. An unreadable, corrupt,
    /// wrong-version or wrong-fingerprint file is rejected loudly so a
    /// stale cache can never silently feed wrong metrics into a search.
    ///
    /// # Errors
    ///
    /// * [`MuffinError::Io`] if the file exists but cannot be read;
    /// * [`MuffinError::StaleArtifact`] if it does not parse or does not
    ///   match `expected`.
    pub fn load(
        path: impl AsRef<Path>,
        expected: &SearchFingerprint,
    ) -> Result<Option<Self>, MuffinError> {
        Self::load_impl(path.as_ref(), expected, false)
    }

    /// Loads a cache in **shared** mode: the fingerprint must match
    /// `expected` on everything except the caller-RNG entry state
    /// ([`SearchFingerprint::mismatch_ignoring_rng`]).
    ///
    /// This is how sharded-search islands read the fleet cache: every
    /// island has a distinct controller seed, but candidate evaluations
    /// depend only on (config, space, pool, data), so records written
    /// under any island's seed are valid for all of them.
    ///
    /// # Errors
    ///
    /// As [`Self::load`].
    pub fn load_shared(
        path: impl AsRef<Path>,
        expected: &SearchFingerprint,
    ) -> Result<Option<Self>, MuffinError> {
        Self::load_impl(path.as_ref(), expected, true)
    }

    /// Loads a cache for a run whose pool may have **grown** since the
    /// cache was written ([`SearchFingerprint::growth_from`]).
    ///
    /// On success the cache comes with the pool relation:
    /// [`PoolRelation::Identical`] is a plain warm cache,
    /// [`PoolRelation::Grew`] means the cache was written against a
    /// prefix of the current pool — call [`Self::rekey_records`] before
    /// use so every record's slot entries index the current pool.
    /// `shared` selects the cross-seed rule of [`Self::load_shared`].
    ///
    /// # Errors
    ///
    /// As [`Self::load`]; pool edits other than pure growth are rejected
    /// naming the added/removed/mutated models by id.
    pub fn load_warm(
        path: impl AsRef<Path>,
        expected: &SearchFingerprint,
        shared: bool,
    ) -> Result<Option<(Self, PoolRelation)>, MuffinError> {
        let path = path.as_ref();
        let Some(cache) = Self::parse_checked(path)? else {
            return Ok(None);
        };
        let strict = if shared {
            expected.mismatch_ignoring_rng(&cache.fingerprint)
        } else {
            expected.mismatch(&cache.fingerprint)
        };
        if strict.is_none() {
            return Ok(Some((cache, PoolRelation::Identical)));
        }
        match expected.growth_from(&cache.fingerprint, shared) {
            Ok(relation) => Ok(Some((cache, relation))),
            Err(what) => Err(MuffinError::StaleArtifact(format!(
                "eval cache {} belongs to a different run: {what} — \
                 delete it or pass a fresh path",
                path.display()
            ))),
        }
    }

    /// Re-keys every record's slot entries from the pool this cache was
    /// written against ([`SearchFingerprint::manifest`]) to `new`: each
    /// chosen model translates pool index → content id → index in `new`.
    /// Records choosing a model absent from `new` are dropped. Returns
    /// the number of records dropped.
    ///
    /// Under pure prefix growth this is the identity map — the method
    /// exists so cache reuse is keyed by model *ids*, never by the
    /// accident of pool position.
    pub fn rekey_records(&mut self, num_slots: usize, new: &PoolManifest) -> usize {
        let old = self.fingerprint.manifest.clone();
        let before = self.records.len();
        self.records.retain_mut(|record| {
            for slot in record.actions.iter_mut().take(num_slots) {
                let Some(idx) = old.get(*slot).and_then(|e| new.index_of_id(e.id)) else {
                    return false;
                };
                *slot = idx;
            }
            true
        });
        before - self.records.len()
    }

    fn load_impl(
        path: &Path,
        expected: &SearchFingerprint,
        ignore_rng: bool,
    ) -> Result<Option<Self>, MuffinError> {
        let Some(cache) = Self::parse_checked(path)? else {
            return Ok(None);
        };
        let what = if ignore_rng {
            expected.mismatch_ignoring_rng(&cache.fingerprint)
        } else {
            expected.mismatch(&cache.fingerprint)
        };
        if let Some(what) = what {
            return Err(MuffinError::StaleArtifact(format!(
                "eval cache {} belongs to a different run: {what} — \
                 delete it or pass a fresh path",
                path.display()
            )));
        }
        Ok(Some(cache))
    }

    /// Reads, parses and version-checks a cache file, without any
    /// fingerprint comparison. Missing or empty files are `Ok(None)`.
    fn parse_checked(path: &Path) -> Result<Option<Self>, MuffinError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(MuffinError::Io(format!(
                    "cannot read eval cache {}: {e}",
                    path.display()
                )))
            }
        };
        if text.trim().is_empty() {
            return Ok(None);
        }
        let cache: Self = muffin_json::from_str(&text).map_err(|e| {
            MuffinError::StaleArtifact(format!(
                "eval cache {} is corrupt or truncated: {e}",
                path.display()
            ))
        })?;
        if cache.version != CHECKPOINT_VERSION {
            return Err(MuffinError::StaleArtifact(format!(
                "eval cache {} has version {}, this build reads version {CHECKPOINT_VERSION}",
                path.display(),
                cache.version
            )));
        }
        Ok(Some(cache))
    }

    /// Writes the cache with **merge-on-write** semantics, safe for
    /// concurrent writers sharing one path.
    ///
    /// Plain [`Self::save`] is last-writer-wins: two processes finishing
    /// around the same time would each temp+rename their own snapshot and
    /// silently drop the other's entries. `save_merged` instead takes a
    /// sibling `<path>.lock` file (atomic `create_new`), re-reads the
    /// current file, unions its records with `self.records` keyed by
    /// action vector (entries are content-addressed, so the union is
    /// conflict-free; on a duplicate key the existing record wins), and
    /// only then renames the merged snapshot into place.
    ///
    /// Existing content that does not parse or belongs to a different run
    /// (checked with [`SearchFingerprint::mismatch_ignoring_rng`], the
    /// shared-mode rule) is treated as absent and overwritten, matching
    /// [`Self::save`].
    ///
    /// A lock older than ten seconds is presumed abandoned (writer
    /// crashed between `create_new` and the guard drop) and is stolen.
    ///
    /// # Errors
    ///
    /// [`MuffinError::Io`] on filesystem failure or when the lock cannot
    /// be acquired within five seconds.
    pub fn save_merged(&self, path: impl AsRef<Path>) -> Result<(), MuffinError> {
        let path = path.as_ref();
        let _lock = LockGuard::acquire(path)?;
        let mut merged: std::collections::BTreeMap<Vec<usize>, EpisodeRecord> = self
            .records
            .iter()
            .map(|r| (r.actions.clone(), r.clone()))
            .collect();
        if let Ok(Some(existing)) = Self::load_shared(path, &self.fingerprint) {
            for record in existing.records {
                merged.insert(record.actions.clone(), record);
            }
        }
        let file = Self {
            version: self.version,
            fingerprint: self.fingerprint.clone(),
            records: merged.into_values().collect(),
        };
        write_atomic(path, &muffin_json::to_string(&file))
    }
}

/// Holds `<path>.lock` for the merge-on-write critical section of
/// [`EvalCacheFile::save_merged`]; removes it on drop (including the
/// error paths).
struct LockGuard(std::path::PathBuf);

impl LockGuard {
    const STALE_AFTER: std::time::Duration = std::time::Duration::from_secs(10);
    const TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

    fn acquire(target: &Path) -> Result<Self, MuffinError> {
        let mut name = target
            .file_name()
            .ok_or_else(|| MuffinError::Io(format!("{} has no file name", target.display())))?
            .to_os_string();
        name.push(".lock");
        let lock = target.with_file_name(name);
        let start = std::time::Instant::now();
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock)
            {
                Ok(_) => return Ok(Self(lock)),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Steal locks abandoned by a crashed writer.
                    if let Ok(meta) = std::fs::metadata(&lock) {
                        let abandoned = meta
                            .modified()
                            .ok()
                            .and_then(|m| m.elapsed().ok())
                            .is_some_and(|age| age > Self::STALE_AFTER);
                        if abandoned {
                            std::fs::remove_file(&lock).ok();
                            continue;
                        }
                    }
                    if start.elapsed() > Self::TIMEOUT {
                        return Err(MuffinError::Io(format!(
                            "timed out waiting for cache lock {}",
                            lock.display()
                        )));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(MuffinError::Io(format!(
                        "cannot create cache lock {}: {e}",
                        lock.display()
                    )))
                }
            }
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

/// How [`MuffinSearch::run_persistent`](crate::MuffinSearch::run_persistent)
/// persists its progress. The default persists nothing, which is exactly
/// [`MuffinSearch::run_with_pool`](crate::MuffinSearch::run_with_pool).
#[derive(Debug, Clone, Default)]
pub struct PersistenceOptions {
    /// Checkpoint file, written atomically during the run. `None`
    /// disables checkpointing.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Minimum episodes between checkpoint writes. Checkpoints land on
    /// the next REINFORCE batch boundary at or after this spacing; `0`
    /// checkpoints at every boundary.
    pub checkpoint_every: u32,
    /// Resume from `checkpoint` instead of starting fresh. The file must
    /// exist, parse, and fingerprint-match the current run.
    pub resume: bool,
    /// Cross-run evaluation cache file: loaded (if present) before the
    /// run and rewritten with the merged cache afterwards.
    pub eval_cache: Option<std::path::PathBuf>,
    /// Load the eval cache in shared mode
    /// ([`EvalCacheFile::load_shared`]): accept records written under a
    /// different caller-RNG seed. Used by sharded-search islands reading
    /// the fleet cache.
    pub eval_cache_shared: bool,
    /// Never write the eval cache back — treat it as a read-only input
    /// snapshot. Sharded islands set this so only the supervisor mutates
    /// fleet cache files, and only at round barriers.
    pub eval_cache_read_only: bool,
    /// Stop at the first batch boundary ≥ this episode count, write a
    /// checkpoint, and return [`MuffinError::Halted`]. Simulates a kill
    /// deterministically; requires `checkpoint`.
    pub halt_after: Option<u32>,
}

impl PersistenceOptions {
    /// Options that checkpoint to `path` at every batch boundary.
    pub fn checkpoint_to(path: impl Into<std::path::PathBuf>) -> Self {
        Self {
            checkpoint: Some(path.into()),
            ..Self::default()
        }
    }

    /// Sets the checkpoint spacing in episodes.
    pub fn with_every(mut self, episodes: u32) -> Self {
        self.checkpoint_every = episodes;
        self
    }

    /// Enables resuming from the checkpoint file.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Sets the cross-run evaluation cache file.
    pub fn with_eval_cache(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.eval_cache = Some(path.into());
        self
    }

    /// Loads the eval cache in shared (rng-agnostic) mode.
    pub fn with_eval_cache_shared(mut self, shared: bool) -> Self {
        self.eval_cache_shared = shared;
        self
    }

    /// Treats the eval cache as a read-only input snapshot.
    pub fn with_eval_cache_read_only(mut self, read_only: bool) -> Self {
        self.eval_cache_read_only = read_only;
        self
    }

    /// Halts (with a checkpoint) at the first batch boundary ≥
    /// `episodes`.
    pub fn with_halt_after(mut self, episodes: u32) -> Self {
        self.halt_after = Some(episodes);
        self
    }
}

/// Writes `contents` to a `.tmp` sibling of `path` and renames it into
/// place — the old file survives any crash before the rename commits.
///
/// The temp file is flushed to stable storage (`File::sync_all`) **before**
/// the rename: without it, a power loss shortly after the rename could
/// commit the new name while the data blocks were still only in the page
/// cache, leaving an empty or truncated checkpoint where a valid old one
/// used to be. The parent directory is synced best-effort afterwards so
/// the rename itself is durable too (some filesystems refuse to fsync a
/// directory handle; losing only the rename re-exposes the intact old
/// file, which is safe).
pub(crate) fn write_atomic(path: &Path, contents: &str) -> Result<(), MuffinError> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| MuffinError::Io(format!("{} has no file name", path.display())))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| MuffinError::Io(format!("cannot create {}: {e}", tmp.display())))?;
        file.write_all(contents.as_bytes())
            .map_err(|e| MuffinError::Io(format!("cannot write {}: {e}", tmp.display())))?;
        file.sync_all()
            .map_err(|e| MuffinError::Io(format!("cannot sync {}: {e}", tmp.display())))?;
    }
    std::fs::rename(&tmp, path)
        .map_err(|e| MuffinError::Io(format!("cannot rename {} into place: {e}", tmp.display())))?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_flushes_and_renames_the_tmp_file_away() {
        let dir = std::env::temp_dir().join("muffin_write_atomic_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("state.json");
        let tmp = dir.join("state.json.tmp");

        write_atomic(&path, "first").expect("first write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "first");
        assert!(!tmp.exists(), "tmp sibling must be renamed away");

        // Overwrite: the new contents replace the old atomically and the
        // synced tmp file is again gone.
        write_atomic(&path, "second, longer contents").expect("second write");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "second, longer contents"
        );
        assert!(!tmp.exists(), "tmp sibling must be renamed away");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_atomic_rejects_a_pathless_target() {
        let err = write_atomic(Path::new("/"), "x").unwrap_err();
        assert!(matches!(err, MuffinError::Io(_)));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    fn fingerprint(seed_word: u64) -> SearchFingerprint {
        let config = SearchConfig::fast(&["age"]);
        let space = SearchSpace::paper_default(3);
        SearchFingerprint::new(
            [seed_word, 1, 2, 3],
            &config,
            &space,
            "pool",
            PoolManifest::default(),
            "data",
        )
    }

    fn entry(name: &str, id: u64) -> muffin_models::ModelIdentity {
        muffin_models::ModelIdentity {
            name: name.to_string(),
            id,
        }
    }

    #[test]
    fn fingerprint_normalises_episodes_and_names_mismatches() {
        let a = fingerprint(0);
        // Same run with a different episode budget: identical fingerprint.
        let mut config = SearchConfig::fast(&["age"]).with_episodes(5000);
        let space = SearchSpace::paper_default(3);
        let b = SearchFingerprint::new(
            [0, 1, 2, 3],
            &config,
            &space,
            "pool",
            PoolManifest::default(),
            "data",
        );
        assert_eq!(a.mismatch(&b), None);

        let c = fingerprint(9);
        assert_eq!(a.mismatch(&c).as_deref(), Some("rng seed/state changed"));

        config.reinforce_batch = 4;
        let d = SearchFingerprint::new(
            [0, 1, 2, 3],
            &config,
            &space,
            "pool",
            PoolManifest::default(),
            "data",
        );
        assert_eq!(a.mismatch(&d).as_deref(), Some("search configuration changed"));

        let e = SearchFingerprint::new(
            [0, 1, 2, 3],
            &a.config,
            &space,
            "other pool",
            PoolManifest::default(),
            "data",
        );
        assert_eq!(a.mismatch(&e).as_deref(), Some("model pool changed"));
        let f = SearchFingerprint::new(
            [0, 1, 2, 3],
            &a.config,
            &space,
            "pool",
            PoolManifest::default(),
            "other data",
        );
        assert_eq!(a.mismatch(&f).as_deref(), Some("dataset split changed"));
    }

    #[test]
    fn pool_mismatches_name_the_differing_models_by_id() {
        let mut old = fingerprint(0);
        old.manifest = PoolManifest::new(vec![entry("ResNet-18", 0xaa), entry("DenseNet121", 0xbb)]);
        // `pool remove DenseNet121` + retrain of ResNet-18 + a new model.
        let mut new = fingerprint(0);
        new.pool_hash ^= 1;
        new.manifest =
            PoolManifest::new(vec![entry("ResNet-18", 0xcc), entry("MobileNet_V2", 0xdd)]);
        let msg = new.mismatch(&old).expect("pools differ");
        assert!(msg.contains("removed DenseNet121 (id 00000000000000bb)"), "{msg}");
        assert!(msg.contains("mutated ResNet-18 (id 00000000000000aa)"), "{msg}");
        assert!(msg.contains("added MobileNet_V2 (id 00000000000000dd)"), "{msg}");

        // A pure extension reads as growth, not generic change.
        let mut grown = fingerprint(0);
        grown.pool_hash ^= 1;
        grown.manifest = PoolManifest::new(vec![
            entry("ResNet-18", 0xaa),
            entry("DenseNet121", 0xbb),
            entry("MobileNet_V2", 0xdd),
        ]);
        let msg = grown.mismatch(&old).expect("pools differ");
        assert!(
            msg.contains("model pool grew: added MobileNet_V2 (id 00000000000000dd)"),
            "{msg}"
        );
    }

    #[test]
    fn growth_from_accepts_prefix_growth_and_rejects_everything_else() {
        let mut old = fingerprint(0);
        old.manifest = PoolManifest::new(vec![entry("a", 1), entry("b", 2)]);

        let mut same = old.clone();
        assert_eq!(
            same.growth_from(&old, false).expect("identical pools"),
            PoolRelation::Identical
        );
        same.rng_state[0] ^= 1;
        assert!(same
            .growth_from(&old, false)
            .unwrap_err()
            .contains("rng seed/state"));
        // The shared-artifact rule ignores the rng difference.
        assert_eq!(
            same.growth_from(&old, true).expect("rng ignored"),
            PoolRelation::Identical
        );

        // Prefix growth: accepted, naming the appended models, with the
        // space allowed to differ in pool size only.
        let config = SearchConfig::fast(&["age"]);
        let mut grown = SearchFingerprint::new(
            [0, 1, 2, 3],
            &config,
            &SearchSpace::paper_default(4),
            "bigger pool",
            PoolManifest::new(vec![entry("a", 1), entry("b", 2), entry("c", 3), entry("d", 4)]),
            "data",
        );
        match grown.growth_from(&old, false).expect("grown pool") {
            PoolRelation::Grew { added } => {
                assert_eq!(added, vec![entry("c", 3), entry("d", 4)]);
            }
            other => panic!("expected growth, got {other:?}"),
        }

        // Same manifest shape but a slot-count change: not warm-resumable.
        grown.config.num_slots += 1;
        assert!(grown
            .growth_from(&old, false)
            .unwrap_err()
            .contains("configuration"));
        grown.config.num_slots -= 1;

        // Removal is named by model id.
        let shrunk = SearchFingerprint::new(
            [0, 1, 2, 3],
            &config,
            &SearchSpace::paper_default(1),
            "smaller pool",
            PoolManifest::new(vec![entry("a", 1)]),
            "data",
        );
        let err = shrunk.growth_from(&old, false).unwrap_err();
        assert!(err.contains("removed b (id 0000000000000002)"), "{err}");
    }

    #[test]
    fn growth_from_names_a_required_model_that_moved_or_vanished() {
        let config = SearchConfig::fast(&["age"]);
        let space = SearchSpace::paper_default(2)
            .with_required_models(vec![1])
            .expect("in range");
        let old = SearchFingerprint::new(
            [0, 1, 2, 3],
            &config,
            &space,
            "pool",
            PoolManifest::new(vec![entry("a", 1), entry("b", 2)]),
            "data",
        );
        // `pool remove b` dangles the required index: the error names the
        // model, not the index alone.
        let new = SearchFingerprint::new(
            [0, 1, 2, 3],
            &config,
            &SearchSpace::paper_default(1)
                .with_required_models(vec![])
                .expect("in range"),
            "pool without b",
            PoolManifest::new(vec![entry("a", 1)]),
            "data",
        );
        let err = new.growth_from(&old, false).unwrap_err();
        assert!(
            err.contains("required model b (id 0000000000000002)"),
            "{err}"
        );
    }

    #[test]
    fn missing_or_empty_eval_cache_is_cold_not_fatal() {
        let fp = fingerprint(0);
        let dir = std::env::temp_dir().join("muffin_ckpt_unit");
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(EvalCacheFile::load(dir.join("absent.json"), &fp)
            .expect("missing file is cold")
            .is_none());
        let empty = dir.join("empty.json");
        std::fs::write(&empty, "").expect("write");
        assert!(EvalCacheFile::load(&empty, &fp)
            .expect("empty file is cold")
            .is_none());
        std::fs::remove_file(empty).ok();
    }

    #[test]
    fn corrupt_and_mismatched_artifacts_are_rejected_loudly() {
        let fp = fingerprint(0);
        let dir = std::env::temp_dir().join("muffin_ckpt_unit");
        std::fs::create_dir_all(&dir).expect("mkdir");

        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{\"version\": 1,").expect("write");
        let err = EvalCacheFile::load(&corrupt, &fp).unwrap_err();
        assert!(matches!(err, MuffinError::StaleArtifact(_)), "{err}");
        let err = SearchCheckpoint::load(&corrupt, &fp).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");

        let stale = dir.join("stale.json");
        let cache = EvalCacheFile {
            version: CHECKPOINT_VERSION,
            fingerprint: fingerprint(7),
            records: vec![],
        };
        cache.save(&stale).expect("save");
        let err = EvalCacheFile::load(&stale, &fp).unwrap_err();
        assert!(err.to_string().contains("rng seed/state"), "{err}");

        let old = dir.join("old_version.json");
        let cache = EvalCacheFile {
            version: 99,
            fingerprint: fingerprint(0),
            records: vec![],
        };
        cache.save(&old).expect("save");
        let err = EvalCacheFile::load(&old, &fp).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        for f in ["corrupt.json", "stale.json", "old_version.json"] {
            std::fs::remove_file(dir.join(f)).ok();
        }
    }

    fn record(tag: usize) -> EpisodeRecord {
        EpisodeRecord {
            episode: tag as u32,
            actions: vec![tag, tag + 1],
            model_names: vec!["m".into()],
            head_desc: format!("h{tag}"),
            accuracy: 0.5,
            unfairness: vec![0.1],
            reward: tag as f32,
            head_params: 1,
            total_params: 2,
            head_seed: tag as u64,
            first_seen: tag as u32,
        }
    }

    #[test]
    fn shared_mode_accepts_a_cache_from_a_different_seed() {
        let dir = std::env::temp_dir().join("muffin_ckpt_unit");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("shared.json");
        let cache = EvalCacheFile {
            version: CHECKPOINT_VERSION,
            fingerprint: fingerprint(7),
            records: vec![record(1)],
        };
        cache.save(&path).expect("save");

        // Strict load: rejected (different rng entry state).
        let err = EvalCacheFile::load(&path, &fingerprint(0)).unwrap_err();
        assert!(err.to_string().contains("rng seed/state"), "{err}");
        // Shared load: accepted.
        let loaded = EvalCacheFile::load_shared(&path, &fingerprint(0))
            .expect("shared load")
            .expect("present");
        assert_eq!(loaded.records.len(), 1);
        // Shared load still rejects a genuinely different run.
        let mut other = fingerprint(0);
        other.pool_hash ^= 1;
        let err = EvalCacheFile::load_shared(&path, &other).unwrap_err();
        assert!(err.to_string().contains("model pool"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_merged_unions_with_the_existing_file() {
        let dir = std::env::temp_dir().join("muffin_ckpt_unit_merge");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache.json");
        std::fs::remove_file(&path).ok();
        let fp = fingerprint(0);

        let a = EvalCacheFile {
            version: CHECKPOINT_VERSION,
            fingerprint: fp.clone(),
            records: vec![record(1), record(3)],
        };
        a.save_merged(&path).expect("first write");
        // Second writer carries a disjoint set plus one overlapping key.
        let b = EvalCacheFile {
            version: CHECKPOINT_VERSION,
            fingerprint: fp.clone(),
            records: vec![record(2), record(3)],
        };
        b.save_merged(&path).expect("second write");

        let merged = EvalCacheFile::load(&path, &fp)
            .expect("load")
            .expect("present");
        let actions: Vec<Vec<usize>> = merged.records.iter().map(|r| r.actions.clone()).collect();
        assert_eq!(actions, vec![vec![1, 2], vec![2, 3], vec![3, 4]]);
        assert!(!path.with_extension("json.lock").exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_writers_lose_no_cache_entries() {
        let dir = std::env::temp_dir().join("muffin_ckpt_unit_stress");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache.json");
        std::fs::remove_file(&path).ok();
        let fp = fingerprint(0);

        const WRITERS: usize = 2;
        const WRITES_EACH: usize = 12;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let path = path.clone();
                let fp = fp.clone();
                scope.spawn(move || {
                    for i in 0..WRITES_EACH {
                        let file = EvalCacheFile {
                            version: CHECKPOINT_VERSION,
                            fingerprint: fp.clone(),
                            records: vec![record(1000 * (w + 1) + i)],
                        };
                        file.save_merged(&path).expect("merged write");
                    }
                });
            }
        });

        let merged = EvalCacheFile::load(&path, &fp)
            .expect("load")
            .expect("present");
        assert_eq!(
            merged.records.len(),
            WRITERS * WRITES_EACH,
            "every writer's entries must survive"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn atomic_write_leaves_no_tmp_and_replaces_content() {
        let dir = std::env::temp_dir().join("muffin_ckpt_unit");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("atomic.json");
        write_atomic(&path, "first").expect("write");
        write_atomic(&path, "second").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "second");
        assert!(
            !dir.join("atomic.json.tmp").exists(),
            "tmp file must be renamed away"
        );
        std::fs::remove_file(path).ok();
    }
}
