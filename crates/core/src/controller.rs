use crate::{HeadSpec, MuffinError};
use muffin_nn::{Activation, Linear, Optimizer, Parameterized, RnnCache, RnnCell};
use muffin_tensor::{Matrix, Rng64};

/// The controller's discrete search space (paper component ①).
///
/// Decision steps, in order:
///
/// 1. one pool-model choice per body slot (`num_slots` steps),
/// 2. the head depth (number of hidden layers),
/// 3. one width choice per *potential* hidden layer (`max_depth` steps;
///    widths beyond the chosen depth are ignored when decoding),
/// 4. the activation function.
///
/// # Example
///
/// ```
/// use muffin::SearchSpace;
///
/// let space = SearchSpace::paper_default(6);
/// assert_eq!(space.num_steps(), 2 + 1 + 4 + 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    pool_size: usize,
    num_slots: usize,
    depth_choices: Vec<usize>,
    width_choices: Vec<usize>,
    activation_choices: Vec<Activation>,
    required_models: Vec<usize>,
}

muffin_json::impl_json!(struct SearchSpace {
    pool_size, num_slots, depth_choices, width_choices, activation_choices, required_models,
});

impl SearchSpace {
    /// Creates a search space.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] if any choice list is empty,
    /// the pool is empty, or `num_slots` is zero.
    pub fn new(
        pool_size: usize,
        num_slots: usize,
        depth_choices: Vec<usize>,
        width_choices: Vec<usize>,
        activation_choices: Vec<Activation>,
    ) -> Result<Self, MuffinError> {
        if pool_size == 0 {
            return Err(MuffinError::EmptyPool);
        }
        if num_slots == 0 {
            return Err(MuffinError::InvalidConfig(
                "num_slots must be positive".into(),
            ));
        }
        if depth_choices.is_empty() || depth_choices.contains(&0) {
            return Err(MuffinError::InvalidConfig(
                "depth choices must be positive".into(),
            ));
        }
        if width_choices.is_empty() || width_choices.contains(&0) {
            return Err(MuffinError::InvalidConfig(
                "width choices must be positive".into(),
            ));
        }
        if activation_choices.is_empty() {
            return Err(MuffinError::InvalidConfig(
                "need at least one activation".into(),
            ));
        }
        Ok(Self {
            pool_size,
            num_slots,
            depth_choices,
            width_choices,
            activation_choices,
            required_models: Vec::new(),
        })
    }

    /// The space used throughout the paper's experiments: two paired
    /// models and four-layer-max heads with widths drawn from the paper's
    /// Table I structures (8–18 units).
    pub fn paper_default(pool_size: usize) -> Self {
        Self::new(
            pool_size,
            2,
            vec![2, 3, 4],
            vec![8, 10, 12, 13, 16, 18],
            Activation::SEARCHABLE.to_vec(),
        )
        .expect("builtin space is valid")
    }

    /// Same space with a different number of body slots (Fig. 9b sweeps
    /// 1–4 paired models).
    pub fn with_slots(mut self, num_slots: usize) -> Result<Self, MuffinError> {
        if num_slots == 0 {
            return Err(MuffinError::InvalidConfig(
                "num_slots must be positive".into(),
            ));
        }
        self.num_slots = num_slots;
        Ok(self)
    }

    /// Forces the listed pool models into every candidate's body (Table I:
    /// the base model is fixed and the controller searches its partner).
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] if an index is out of range.
    pub fn with_required_models(mut self, required: Vec<usize>) -> Result<Self, MuffinError> {
        if let Some(&bad) = required.iter().find(|&&i| i >= self.pool_size) {
            return Err(MuffinError::InvalidConfig(format!(
                "required model {bad} out of range for pool of {}",
                self.pool_size
            )));
        }
        self.required_models = required;
        Ok(self)
    }

    /// Same space indexing into a different pool size. The pool
    /// lifecycle layer uses this to compare a grown pool's space against
    /// the one an artifact recorded, and to rebuild a controller for an
    /// extended pool.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::EmptyPool`] for a zero pool size and
    /// [`MuffinError::InvalidConfig`] when a required model index does
    /// not fit the new pool.
    pub fn with_pool_size(mut self, pool_size: usize) -> Result<Self, MuffinError> {
        if pool_size == 0 {
            return Err(MuffinError::EmptyPool);
        }
        if let Some(&bad) = self.required_models.iter().find(|&&i| i >= pool_size) {
            return Err(MuffinError::InvalidConfig(format!(
                "required model {bad} out of range for pool of {pool_size}"
            )));
        }
        self.pool_size = pool_size;
        Ok(self)
    }

    /// The models forced into every candidate.
    pub fn required_models(&self) -> &[usize] {
        &self.required_models
    }

    /// Number of body slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Pool size the space indexes into.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Maximum head depth.
    pub fn max_depth(&self) -> usize {
        *self
            .depth_choices
            .iter()
            .max()
            .expect("validated non-empty")
    }

    /// Number of decision steps in one episode.
    pub fn num_steps(&self) -> usize {
        self.num_slots + 1 + self.max_depth() + 1
    }

    /// Number of choices available at each step.
    pub fn step_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![self.pool_size; self.num_slots];
        sizes.push(self.depth_choices.len());
        sizes.extend(std::iter::repeat_n(
            self.width_choices.len(),
            self.max_depth(),
        ));
        sizes.push(self.activation_choices.len());
        sizes
    }

    /// The largest choice count over all steps.
    pub fn max_choices(&self) -> usize {
        self.step_sizes()
            .into_iter()
            .max()
            .expect("at least one step")
    }

    /// Decodes an action vector into a candidate structure.
    ///
    /// Duplicate model selections collapse (the body keeps distinct models
    /// in first-seen order), matching the paper's "select models" intent.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] if the action vector has the
    /// wrong length or an action is out of range.
    pub fn decode(&self, actions: &[usize]) -> Result<Candidate, MuffinError> {
        let sizes = self.step_sizes();
        if actions.len() != sizes.len() {
            return Err(MuffinError::InvalidConfig(format!(
                "expected {} actions, got {}",
                sizes.len(),
                actions.len()
            )));
        }
        for (t, (&a, &n)) in actions.iter().zip(&sizes).enumerate() {
            if a >= n {
                return Err(MuffinError::InvalidConfig(format!(
                    "action {a} out of range {n} at step {t}"
                )));
            }
        }
        let mut model_indices: Vec<usize> = Vec::new();
        for &m in self
            .required_models
            .iter()
            .chain(&actions[..self.num_slots])
        {
            if !model_indices.contains(&m) {
                model_indices.push(m);
            }
        }
        let depth = self.depth_choices[actions[self.num_slots]];
        let widths: Vec<usize> = (0..depth)
            .map(|l| self.width_choices[actions[self.num_slots + 1 + l]])
            .collect();
        let activation = self.activation_choices[actions[self.num_slots + 1 + self.max_depth()]];
        Ok(Candidate {
            model_indices,
            head: HeadSpec::new(widths, activation),
        })
    }
}

/// A decoded candidate: the selected body models plus the head shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Distinct pool indices forming the muffin body.
    pub model_indices: Vec<usize>,
    /// The muffin-head architecture.
    pub head: HeadSpec,
}

muffin_json::impl_json!(struct Candidate { model_indices, head });

/// Hyper-parameters of the REINFORCE controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// RNN hidden width.
    pub hidden_dim: usize,
    /// Action-embedding width.
    pub embed_dim: usize,
    /// Adam learning rate for the policy update.
    pub learning_rate: f32,
    /// The paper's exponential reward discount γ (Eq. 4).
    pub gamma: f32,
    /// Decay of the exponential-moving-average baseline `b` (Eq. 4).
    pub baseline_decay: f32,
    /// Entropy-bonus weight keeping exploration alive.
    pub entropy_weight: f32,
}

muffin_json::impl_json!(struct ControllerConfig {
    hidden_dim, embed_dim, learning_rate, gamma, baseline_decay, entropy_weight,
});

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            hidden_dim: 48,
            embed_dim: 24,
            learning_rate: 0.01,
            gamma: 0.95,
            baseline_decay: 0.9,
            entropy_weight: 0.01,
        }
    }
}

/// Serialisable snapshot of everything a trained [`RnnController`] has
/// learned: the flattened parameter buffers (in [`Parameterized`]
/// visitation order), the optimizer moments, the EMA reward baseline and
/// the update counter.
///
/// Captured by [`RnnController::export_state`] and restored with
/// [`RnnController::import_state`]; a restored controller continues
/// training bit-identically, which is what lets a search checkpoint resume
/// without drift.
#[derive(Debug, Clone)]
pub struct ControllerState {
    /// Every parameter buffer, concatenated in visitation order.
    pub params: Vec<f32>,
    /// Optimizer hyper-parameters plus accumulated moments.
    pub optimizer: Optimizer,
    /// The EMA reward baseline `b` of Eq. 4 (`None` before any update).
    pub baseline: Option<f32>,
    /// Number of policy updates applied so far.
    pub updates: u64,
}

muffin_json::impl_json!(struct ControllerState { params, optimizer, baseline, updates });

/// One sampled episode: the action vector plus the forward caches the
/// policy-gradient update needs.
#[derive(Debug, Clone)]
pub struct SampledEpisode {
    /// The sampled action at each step.
    pub actions: Vec<usize>,
    /// Log-probability of each sampled action under the sampling policy.
    pub log_probs: Vec<f32>,
    caches: Vec<StepCache>,
}

impl SampledEpisode {
    /// Total log-probability of the episode.
    pub fn total_log_prob(&self) -> f32 {
        self.log_probs.iter().sum()
    }
}

#[derive(Debug, Clone)]
struct StepCache {
    rnn: RnnCache,
    embed_input: Matrix,
    probs: Vec<f32>,
    action: usize,
}

/// The paper's RNN controller (component ④): at every step a recurrent
/// cell consumes an embedding of the previous decision and a per-step
/// fully-connected head emits a categorical distribution over the step's
/// choices. Parameters are updated with the Monte-Carlo policy gradient of
/// Eq. 4, using an exponential-moving-average baseline and discount γ.
///
/// # Example
///
/// ```
/// use muffin::{ControllerConfig, RnnController, SearchSpace};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(0);
/// let space = SearchSpace::paper_default(4);
/// let mut controller = RnnController::new(space.clone(), ControllerConfig::default(), &mut rng);
/// let episode = controller.sample(&mut rng);
/// assert_eq!(episode.actions.len(), space.num_steps());
/// controller.update(&episode, 1.5);
/// ```
#[derive(Debug, Clone)]
pub struct RnnController {
    space: SearchSpace,
    config: ControllerConfig,
    embed: Linear,
    cell: RnnCell,
    heads: Vec<Linear>,
    optimizer: Optimizer,
    baseline: Option<f32>,
    updates: u64,
}

impl RnnController {
    /// Creates a controller for `space`.
    pub fn new(space: SearchSpace, config: ControllerConfig, rng: &mut Rng64) -> Self {
        let vocab = space.max_choices() + 1; // +1 start token
        let embed = Linear::new(vocab, config.embed_dim, rng);
        let cell = RnnCell::new(config.embed_dim, config.hidden_dim, rng);
        let heads = space
            .step_sizes()
            .iter()
            .map(|&n| Linear::new(config.hidden_dim, n, rng))
            .collect();
        Self {
            space,
            config,
            embed,
            cell,
            heads,
            optimizer: Optimizer::adam(),
            baseline: None,
            updates: 0,
        }
    }

    /// The search space this controller samples from.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The current reward baseline `b` (None before the first update).
    pub fn baseline(&self) -> Option<f32> {
        self.baseline
    }

    /// Number of policy updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    fn one_hot_token(&self, token: usize) -> Matrix {
        let vocab = self.space.max_choices() + 1;
        let mut x = Matrix::zeros(1, vocab);
        x.set(0, token, 1.0);
        x
    }

    fn rollout(&self, mut pick: impl FnMut(&[f32]) -> usize) -> SampledEpisode {
        let sizes = self.space.step_sizes();
        let mut h = Matrix::zeros(1, self.config.hidden_dim);
        let mut prev_token = self.space.max_choices(); // start token
        let mut actions = Vec::with_capacity(sizes.len());
        let mut log_probs = Vec::with_capacity(sizes.len());
        let mut caches = Vec::with_capacity(sizes.len());
        for (t, _) in sizes.iter().enumerate() {
            let embed_input = self.one_hot_token(prev_token);
            let x = self.embed.forward(&embed_input);
            let (h_new, rnn_cache) = self.cell.forward(&x, &h);
            h = h_new;
            let logits = self.heads[t].forward(&h);
            let probs_matrix = logits.softmax_rows();
            let probs = probs_matrix.row(0).to_vec();
            let action = pick(&probs);
            log_probs.push(probs[action].max(1e-20).ln());
            caches.push(StepCache {
                rnn: rnn_cache,
                embed_input,
                probs,
                action,
            });
            actions.push(action);
            prev_token = action;
        }
        SampledEpisode {
            actions,
            log_probs,
            caches,
        }
    }

    /// Samples one episode from the current policy.
    pub fn sample(&self, rng: &mut Rng64) -> SampledEpisode {
        self.rollout(|probs| rng.categorical(probs))
    }

    /// The greedy (argmax) rollout — the controller's current best guess.
    pub fn greedy(&self) -> SampledEpisode {
        self.rollout(muffin_tensor::argmax)
    }

    /// Teacher-forced rollout of a fixed action sequence: re-derives the
    /// forward caches and log-probabilities that `actions` has under the
    /// *current* policy, so an episode sampled elsewhere (e.g. an elite
    /// from another search island) can feed [`Self::update_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] when `actions` has the
    /// wrong length for this controller's space or any action index is
    /// out of range for its step.
    pub fn replay(&self, actions: &[usize]) -> Result<SampledEpisode, MuffinError> {
        let sizes = self.space.step_sizes();
        if actions.len() != sizes.len() {
            return Err(MuffinError::InvalidConfig(format!(
                "replay expects {} actions, got {}",
                sizes.len(),
                actions.len()
            )));
        }
        for (t, (&action, &size)) in actions.iter().zip(sizes.iter()).enumerate() {
            if action >= size {
                return Err(MuffinError::InvalidConfig(format!(
                    "replay action {action} out of range at step {t} (size {size})"
                )));
            }
        }
        let mut next = actions.iter();
        Ok(self.rollout(|_| *next.next().expect("length validated above")))
    }

    /// Applies one REINFORCE update (paper Eq. 4 with `m = 1`) for
    /// `episode` with the observed `reward`. Returns the advantage
    /// `R − b` used.
    pub fn update(&mut self, episode: &SampledEpisode, reward: f32) -> f32 {
        self.update_batch(&[(episode.clone(), reward)])
    }

    /// Applies one **batched** REINFORCE update — the paper's Eq. 4 in
    /// full, averaging the policy gradient over the `m` episodes of the
    /// batch before stepping:
    ///
    /// ```text
    /// ∇J(θ) = 1/m Σ_{k=1..m} Σ_{t=1..T} γ^{T−t} ∇ log π(a_t|a_{t−1:1}) (R_k − b)
    /// ```
    ///
    /// Returns the mean advantage over the batch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty.
    pub fn update_batch(&mut self, batch: &[(SampledEpisode, f32)]) -> f32 {
        assert!(!batch.is_empty(), "REINFORCE batch must be non-empty");
        let m = batch.len() as f32;
        let mean_reward: f32 = batch.iter().map(|(_, r)| r).sum::<f32>() / m;
        let baseline = *self.baseline.get_or_insert(mean_reward);
        self.baseline = Some(
            self.config.baseline_decay * baseline
                + (1.0 - self.config.baseline_decay) * mean_reward,
        );

        self.embed.zero_grad();
        self.cell.zero_grad();
        for head in &mut self.heads {
            head.zero_grad();
        }

        let mut mean_advantage = 0.0;
        for (episode, reward) in batch {
            let advantage = reward - baseline;
            mean_advantage += advantage / m;
            let steps = episode.caches.len();
            let mut dh_carry = Matrix::zeros(1, self.config.hidden_dim);
            for t in (0..steps).rev() {
                let cache = &episode.caches[t];
                let discount = self.config.gamma.powi((steps - 1 - t) as i32);
                // d(-logπ·A)/dlogits = A·(p − onehot); plus entropy bonus
                // pushing toward uniform: d(−βH)/dz_i = β·p_i·(log p_i + H).
                let entropy: f32 = -cache
                    .probs
                    .iter()
                    .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
                    .sum::<f32>();
                let mut dlogits = Matrix::zeros(1, cache.probs.len());
                for (i, &p) in cache.probs.iter().enumerate() {
                    let pg = discount * advantage * (p - if i == cache.action { 1.0 } else { 0.0 });
                    let ent = self.config.entropy_weight
                        * p
                        * (if p > 0.0 { p.ln() } else { 0.0 } + entropy);
                    dlogits.set(0, i, (pg + ent) / m);
                }
                let dh_head = self.heads[t].backward(cache.rnn.hidden(), &dlogits);
                let dh_total = &dh_head + &dh_carry;
                let (dx, dh_prev) = self.cell.backward(&cache.rnn, &dh_total);
                self.embed.backward(&cache.embed_input, &dx);
                dh_carry = dh_prev;
            }
        }

        self.clip_grad_norm(5.0);
        // Split the borrow: step needs &mut optimizer and &mut params.
        let mut opt = std::mem::replace(&mut self.optimizer, Optimizer::adam());
        opt.step(self, self.config.learning_rate);
        self.optimizer = opt;
        self.updates += 1;
        mean_advantage
    }

    /// Snapshots the controller's learnable state for serialisation.
    ///
    /// Takes `&mut self` because parameter visitation is defined on
    /// mutable buffers; the state is not modified.
    pub fn export_state(&mut self) -> ControllerState {
        let mut params = Vec::new();
        self.visit_params(&mut |p, _| params.extend_from_slice(p));
        ControllerState {
            params,
            optimizer: self.optimizer.clone(),
            baseline: self.baseline,
            updates: self.updates,
        }
    }

    /// Restores state captured by [`RnnController::export_state`] into a
    /// structurally identical controller (same space and config).
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] if the flattened parameter
    /// count does not match this controller's architecture — the loudest
    /// available signal that the checkpoint belongs to a different space.
    pub fn import_state(&mut self, state: ControllerState) -> Result<(), MuffinError> {
        // The flat checkpoint mirrors `visit_params` buffers verbatim
        // (including matrix padding lanes), so the expected length is the
        // visited total, not the logical `num_params` count.
        let mut expected = 0;
        self.visit_params(&mut |p, _| expected += p.len());
        if state.params.len() != expected {
            return Err(MuffinError::InvalidConfig(format!(
                "controller state has {} parameters, expected {expected}",
                state.params.len()
            )));
        }
        let mut offset = 0;
        self.visit_params(&mut |p, _| {
            p.copy_from_slice(&state.params[offset..offset + p.len()]);
            offset += p.len();
        });
        self.optimizer = state.optimizer;
        self.baseline = state.baseline;
        self.updates = state.updates;
        Ok(())
    }

    /// Restores state exported by a controller over `old_space` into this
    /// controller, whose space may index a **larger pool** — the in-place
    /// choice-dimension extension of the pool lifecycle layer.
    ///
    /// The two spaces must be identical apart from the pool size. Every
    /// learned quantity carries over exactly where it lived before:
    /// embedding rows for existing tokens, the recurrent cell, the slot
    /// heads' logit columns for existing models, and all non-slot heads.
    /// The start-token embedding row moves to the new vocabulary end.
    /// Rows and columns for the appended models keep the deterministic
    /// initialisation this controller was constructed with, and the
    /// optimizer's per-buffer moments are remapped alongside the
    /// parameters (zero moments for new entries), so training continues
    /// as if the new models had simply never been sampled yet.
    ///
    /// With equal pool sizes this is exactly [`Self::import_state`].
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] when the spaces differ in
    /// anything but pool size, the pool shrank, or the flattened
    /// parameter/moment counts do not match `old_space`'s architecture.
    pub fn import_extended(
        &mut self,
        old_space: &SearchSpace,
        state: ControllerState,
    ) -> Result<(), MuffinError> {
        if old_space.pool_size() > self.space.pool_size() {
            return Err(MuffinError::InvalidConfig(format!(
                "controller extension cannot shrink the pool ({} -> {})",
                old_space.pool_size(),
                self.space.pool_size()
            )));
        }
        let shrunk = self.space.clone().with_pool_size(old_space.pool_size())?;
        if &shrunk != old_space {
            return Err(MuffinError::InvalidConfig(
                "controller extension requires spaces differing only in pool size".into(),
            ));
        }
        if old_space.pool_size() == self.space.pool_size() {
            return self.import_state(state);
        }

        let segs = self.extension_segments(old_space);
        let old_total: usize = segs.iter().map(|s| s.old_len).sum();
        if state.params.len() != old_total {
            return Err(MuffinError::InvalidConfig(format!(
                "controller state has {} parameters, expected {old_total} for the old space",
                state.params.len()
            )));
        }
        // Background: the deterministic fresh initialisation this
        // controller was constructed with. Mapped regions are overwritten
        // from the old state; appended rows/columns keep their init.
        let mut new_params = Vec::new();
        self.visit_params(&mut |p, _| new_params.extend_from_slice(p));
        debug_assert_eq!(
            new_params.len(),
            segs.iter().map(|s| s.new_len).sum::<usize>(),
            "segment plan must tile the new parameter vector"
        );
        let mut off_old = 0;
        let mut off_new = 0;
        for seg in &segs {
            seg.apply(
                &state.params[off_old..off_old + seg.old_len],
                &mut new_params[off_new..off_new + seg.new_len],
            );
            off_old += seg.old_len;
            off_new += seg.new_len;
        }
        let mut offset = 0;
        self.visit_params(&mut |p, _| {
            p.copy_from_slice(&new_params[offset..offset + p.len()]);
            offset += p.len();
        });

        self.optimizer = match state.optimizer {
            Optimizer::Adam {
                beta1,
                beta2,
                eps,
                m,
                v,
                t,
            } => Optimizer::Adam {
                beta1,
                beta2,
                eps,
                m: Self::remap_moments(&segs, m)?,
                v: Self::remap_moments(&segs, v)?,
                t,
            },
            Optimizer::Sgd { config, velocity } => Optimizer::Sgd {
                config,
                velocity: Self::remap_moments(&segs, velocity)?,
            },
        };
        self.baseline = state.baseline;
        self.updates = state.updates;
        Ok(())
    }

    /// Plans the old-buffer → new-buffer mapping for
    /// [`Self::import_extended`], one segment per `visit_params` buffer
    /// in visitation order (embed weight, embed bias, cell buffers, then
    /// per-step head weight + bias).
    fn extension_segments(&mut self, old_space: &SearchSpace) -> Vec<ExtensionSegment> {
        let lane = |cols: usize| Matrix::zeros(1, cols).stride();
        let embed_stride = lane(self.config.embed_dim);
        let old_vocab = old_space.max_choices() + 1;
        let new_vocab = self.space.max_choices() + 1;
        let hidden = self.config.hidden_dim;

        let mut new_lens = Vec::new();
        self.visit_params(&mut |p, _| new_lens.push(p.len()));
        let num_heads = self.heads.len();
        let cell_buffers = new_lens.len() - 2 - 2 * num_heads;

        let mut segs = Vec::with_capacity(new_lens.len());
        // Embed weight: one row per token; the start token (last row of
        // the old vocabulary) moves to the last row of the new one.
        segs.push(ExtensionSegment {
            old_len: old_vocab * embed_stride,
            new_len: new_vocab * embed_stride,
            map: SegmentMap::Rows {
                rows_old: old_vocab,
                stride_old: embed_stride,
                stride_new: embed_stride,
                cols: embed_stride,
                start_token_row: true,
            },
        });
        // Embed bias and the recurrent cell depend only on the config.
        for &len in &new_lens[1..2 + cell_buffers] {
            segs.push(ExtensionSegment::verbatim(len));
        }
        // Heads: slot steps widen from the old pool size to the new one;
        // depth/width/activation steps are untouched.
        let old_sizes = old_space.step_sizes();
        let new_sizes = self.space.step_sizes();
        for (&n_old, &n_new) in old_sizes.iter().zip(&new_sizes) {
            if n_old == n_new {
                segs.push(ExtensionSegment::verbatim(hidden * lane(n_new)));
                segs.push(ExtensionSegment::verbatim(n_new));
            } else {
                segs.push(ExtensionSegment {
                    old_len: hidden * lane(n_old),
                    new_len: hidden * lane(n_new),
                    map: SegmentMap::Rows {
                        rows_old: hidden,
                        stride_old: lane(n_old),
                        stride_new: lane(n_new),
                        cols: n_old,
                        start_token_row: false,
                    },
                });
                segs.push(ExtensionSegment {
                    old_len: n_old,
                    new_len: n_new,
                    map: SegmentMap::Rows {
                        rows_old: 1,
                        stride_old: n_old,
                        stride_new: n_new,
                        cols: n_old,
                        start_token_row: false,
                    },
                });
            }
        }
        debug_assert_eq!(segs.len(), new_lens.len());
        segs
    }

    /// Remaps per-buffer optimizer moments through the segment plan:
    /// surviving entries keep their accumulated moments, appended entries
    /// start at zero. Lazily-initialised (empty) moment lists pass
    /// through untouched.
    fn remap_moments(
        segs: &[ExtensionSegment],
        buffers: Vec<Vec<f32>>,
    ) -> Result<Vec<Vec<f32>>, MuffinError> {
        if buffers.is_empty() {
            return Ok(buffers);
        }
        if buffers.len() != segs.len()
            || buffers.iter().zip(segs).any(|(b, s)| b.len() != s.old_len)
        {
            return Err(MuffinError::InvalidConfig(
                "optimizer moments do not match the old controller architecture".into(),
            ));
        }
        Ok(buffers
            .iter()
            .zip(segs)
            .map(|(buffer, seg)| {
                let mut out = vec![0.0; seg.new_len];
                seg.apply(buffer, &mut out);
                out
            })
            .collect())
    }

    /// Probability vector of step `t` under the current policy, for
    /// inspection and tests.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or `prefix` is shorter than `t`.
    pub fn step_probs(&self, t: usize, prefix: &[usize]) -> Vec<f32> {
        assert!(t < self.heads.len(), "step out of range");
        assert!(prefix.len() >= t, "prefix must cover steps before t");
        let mut h = Matrix::zeros(1, self.config.hidden_dim);
        let mut prev_token = self.space.max_choices();
        for (step, _) in (0..=t).enumerate() {
            let x = self.embed.forward(&self.one_hot_token(prev_token));
            let (h_new, _) = self.cell.forward(&x, &h);
            h = h_new;
            if step == t {
                return self.heads[t].forward(&h).softmax_rows().row(0).to_vec();
            }
            prev_token = prefix[step];
        }
        unreachable!("loop returns at step t");
    }
}

impl Parameterized for RnnController {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.embed.visit_params(f);
        self.cell.visit_params(f);
        for head in &mut self.heads {
            head.visit_params(f);
        }
    }
}

/// One `visit_params` buffer's worth of the old→new mapping used by
/// [`RnnController::import_extended`].
struct ExtensionSegment {
    old_len: usize,
    new_len: usize,
    map: SegmentMap,
}

enum SegmentMap {
    /// The buffer is unchanged: copy wholesale.
    Verbatim,
    /// A padded row-major matrix whose leading dimension may have grown:
    /// copy `cols` values of each of `rows_old` rows from stride
    /// `stride_old` to stride `stride_new`. With `start_token_row`, the
    /// last old row (the start token's embedding) lands on the last *new*
    /// row instead of staying in place.
    Rows {
        rows_old: usize,
        stride_old: usize,
        stride_new: usize,
        cols: usize,
        start_token_row: bool,
    },
}

impl ExtensionSegment {
    fn verbatim(len: usize) -> Self {
        Self {
            old_len: len,
            new_len: len,
            map: SegmentMap::Verbatim,
        }
    }

    /// Copies the surviving entries of `old` over the matching positions
    /// of `new`, leaving the rest of `new` untouched.
    fn apply(&self, old: &[f32], new: &mut [f32]) {
        debug_assert_eq!(old.len(), self.old_len);
        debug_assert_eq!(new.len(), self.new_len);
        match self.map {
            SegmentMap::Verbatim => new.copy_from_slice(old),
            SegmentMap::Rows {
                rows_old,
                stride_old,
                stride_new,
                cols,
                start_token_row,
            } => {
                for row in 0..rows_old {
                    let dst_row = if start_token_row && row == rows_old - 1 {
                        new.len() / stride_new - 1
                    } else {
                        row
                    };
                    let src = &old[row * stride_old..row * stride_old + cols];
                    new[dst_row * stride_new..dst_row * stride_new + cols].copy_from_slice(src);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> SearchSpace {
        SearchSpace::paper_default(4)
    }

    #[test]
    fn paper_space_has_expected_steps() {
        let s = space();
        assert_eq!(s.step_sizes(), vec![4, 4, 3, 6, 6, 6, 6, 4]);
        assert_eq!(s.max_choices(), 6);
    }

    #[test]
    fn decode_builds_candidate() {
        let s = space();
        //               m0 m1 depth  w w w w  act
        let actions = vec![1, 3, 2, 0, 5, 2, 1, 0];
        let c = s.decode(&actions).expect("valid actions");
        assert_eq!(c.model_indices, vec![1, 3]);
        // depth choice index 2 → 4 layers, widths [8, 18, 12, 10].
        assert_eq!(c.head.hidden(), &[8, 18, 12, 10]);
        assert_eq!(c.head.activation(), Activation::Relu);
    }

    #[test]
    fn decode_collapses_duplicate_models() {
        let s = space();
        let actions = vec![2, 2, 0, 0, 0, 0, 0, 1];
        let c = s.decode(&actions).expect("valid actions");
        assert_eq!(c.model_indices, vec![2]);
        assert_eq!(c.head.hidden().len(), 2); // depth choice 0 → 2 layers
    }

    #[test]
    fn decode_rejects_bad_lengths_and_ranges() {
        let s = space();
        assert!(s.decode(&[0; 3]).is_err());
        assert!(s.decode(&[9, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn sampling_is_in_range_and_deterministic_per_seed() {
        let mut rng = Rng64::seed(1);
        let controller = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        let e1 = controller.sample(&mut Rng64::seed(5));
        let e2 = controller.sample(&mut Rng64::seed(5));
        assert_eq!(e1.actions, e2.actions);
        for (a, n) in e1.actions.iter().zip(space().step_sizes()) {
            assert!(*a < n);
        }
        assert!(e1.total_log_prob() < 0.0);
    }

    #[test]
    fn rewarded_actions_become_more_likely() {
        let mut rng = Rng64::seed(2);
        let mut controller = RnnController::new(
            space(),
            ControllerConfig {
                entropy_weight: 0.0,
                ..ControllerConfig::default()
            },
            &mut rng,
        );
        // Reward only episodes whose first action is 3.
        let before = controller.step_probs(0, &[])[3];
        for _ in 0..200 {
            let episode = controller.sample(&mut rng);
            let reward = if episode.actions[0] == 3 { 2.0 } else { 0.0 };
            controller.update(&episode, reward);
        }
        let after = controller.step_probs(0, &[])[3];
        assert!(after > before + 0.15, "P(action 3): {before} -> {after}");
    }

    #[test]
    fn baseline_tracks_rewards() {
        let mut rng = Rng64::seed(3);
        let mut controller = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        assert!(controller.baseline().is_none());
        for _ in 0..50 {
            let e = controller.sample(&mut rng);
            controller.update(&e, 4.0);
        }
        let b = controller.baseline().expect("set after updates");
        assert!((b - 4.0).abs() < 0.5, "baseline {b} should approach 4.0");
        assert_eq!(controller.updates(), 50);
    }

    #[test]
    fn greedy_rollout_is_deterministic() {
        let mut rng = Rng64::seed(4);
        let controller = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        assert_eq!(controller.greedy().actions, controller.greedy().actions);
    }

    #[test]
    fn advantage_is_reward_minus_baseline() {
        let mut rng = Rng64::seed(5);
        let mut controller = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        let e = controller.sample(&mut rng);
        // First update: baseline initialises to the reward → advantage 0.
        let adv = controller.update(&e, 3.0);
        assert_eq!(adv, 0.0);
        let e2 = controller.sample(&mut rng);
        let adv2 = controller.update(&e2, 5.0);
        assert!(adv2 > 0.0);
    }

    #[test]
    fn batched_update_matches_eq4_averaging() {
        // A batch of m identical episodes must produce the same update as
        // one episode at the same advantage (gradients average, not sum).
        let mut rng = Rng64::seed(7);
        let config = ControllerConfig {
            entropy_weight: 0.0,
            ..ControllerConfig::default()
        };
        let mut single = RnnController::new(space(), config, &mut rng);
        let mut batched = single.clone();
        let e = single.sample(&mut Rng64::seed(9));
        // Prime both baselines identically.
        single.update(&e, 2.0);
        batched.update(&e, 2.0);
        // Now: one high-reward episode vs a batch of three copies.
        single.update(&e, 5.0);
        batched.update_batch(&[(e.clone(), 5.0), (e.clone(), 5.0), (e.clone(), 5.0)]);
        let p_single = single.step_probs(0, &[]);
        let p_batched = batched.step_probs(0, &[]);
        for (a, b) in p_single.iter().zip(&p_batched) {
            assert!((a - b).abs() < 1e-4, "single {a} vs batched {b}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_is_rejected() {
        let mut rng = Rng64::seed(8);
        let mut controller = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        controller.update_batch(&[]);
    }

    #[test]
    fn batched_training_still_learns() {
        let mut rng = Rng64::seed(10);
        let mut controller = RnnController::new(
            space(),
            ControllerConfig {
                entropy_weight: 0.0,
                ..ControllerConfig::default()
            },
            &mut rng,
        );
        let before = controller.step_probs(0, &[])[1];
        for _ in 0..60 {
            let batch: Vec<(SampledEpisode, f32)> = (0..4)
                .map(|_| {
                    let e = controller.sample(&mut rng);
                    let r = if e.actions[0] == 1 { 2.0 } else { 0.0 };
                    (e, r)
                })
                .collect();
            controller.update_batch(&batch);
        }
        let after = controller.step_probs(0, &[])[1];
        assert!(after > before + 0.1, "P(action 1): {before} -> {after}");
    }

    #[test]
    fn entropy_bonus_resists_collapse() {
        let mut rng = Rng64::seed(6);
        let mut with_entropy = RnnController::new(
            space(),
            ControllerConfig {
                entropy_weight: 0.5,
                ..ControllerConfig::default()
            },
            &mut rng,
        );
        // Hammer one action with reward.
        for _ in 0..150 {
            let e = with_entropy.sample(&mut rng);
            let reward = if e.actions[0] == 0 { 2.0 } else { 0.0 };
            with_entropy.update(&e, reward);
        }
        let probs = with_entropy.step_probs(0, &[]);
        assert!(
            probs.iter().all(|&p| p > 0.005),
            "entropy keeps support: {probs:?}"
        );
    }

    #[test]
    fn replay_reproduces_sampled_episode_bit_identically() {
        let mut rng = Rng64::seed(13);
        let controller = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        let sampled = controller.sample(&mut rng);
        let replayed = controller.replay(&sampled.actions).expect("valid actions");
        assert_eq!(replayed.actions, sampled.actions);
        for (a, b) in sampled.log_probs.iter().zip(&replayed.log_probs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn replay_rejects_malformed_action_vectors() {
        let mut rng = Rng64::seed(14);
        let controller = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        let good = controller.greedy().actions;
        let mut short = good.clone();
        short.pop();
        assert!(matches!(
            controller.replay(&short),
            Err(MuffinError::InvalidConfig(_))
        ));
        let mut out_of_range = good;
        out_of_range[0] = usize::MAX;
        assert!(matches!(
            controller.replay(&out_of_range),
            Err(MuffinError::InvalidConfig(_))
        ));
    }

    #[test]
    fn exported_state_resumes_training_bit_identically() {
        let mut rng = Rng64::seed(11);
        let mut original = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        for _ in 0..5 {
            let e = original.sample(&mut rng);
            original.update(&e, 1.0);
        }
        // Serialise, rebuild a fresh controller structure, restore.
        let json = muffin_json::to_string(&original.export_state());
        let state: ControllerState = muffin_json::from_str(&json).expect("parse");
        let mut restored =
            RnnController::new(space(), ControllerConfig::default(), &mut Rng64::seed(999));
        restored.import_state(state).expect("shapes match");
        assert_eq!(restored.baseline(), original.baseline());
        assert_eq!(restored.updates(), original.updates());
        // Continue training both on identical streams: must stay in
        // lockstep down to the bit.
        let mut rng_a = Rng64::seed(55);
        let mut rng_b = Rng64::seed(55);
        for _ in 0..4 {
            let ea = original.sample(&mut rng_a);
            let eb = restored.sample(&mut rng_b);
            assert_eq!(ea.actions, eb.actions);
            original.update(&ea, 0.5);
            restored.update(&eb, 0.5);
        }
        let pa = original.step_probs(0, &[]);
        let pb = restored.step_probs(0, &[]);
        for (a, b) in pa.iter().zip(&pb) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn import_rejects_mismatched_parameter_count() {
        let mut rng = Rng64::seed(12);
        let mut controller = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        let mut state = controller.export_state();
        state.params.pop();
        assert!(matches!(
            controller.import_state(state),
            Err(MuffinError::InvalidConfig(_))
        ));
    }

    #[test]
    fn required_models_lead_every_decoded_body() {
        let s = space().with_required_models(vec![2]).expect("in range");
        let actions = vec![0, 1, 0, 0, 0, 0, 0, 0];
        let c = s.decode(&actions).expect("valid actions");
        assert_eq!(c.model_indices, vec![2, 0, 1]);
        // Sampling a slot equal to the required model collapses it.
        let actions = vec![2, 2, 0, 0, 0, 0, 0, 0];
        let c = s.decode(&actions).expect("valid actions");
        assert_eq!(c.model_indices, vec![2]);
    }

    #[test]
    fn required_models_out_of_range_are_rejected() {
        assert!(space().with_required_models(vec![99]).is_err());
        assert!(space().with_required_models(vec![0, 3]).is_ok());
    }

    #[test]
    fn required_models_accessor_round_trips() {
        let s = space().with_required_models(vec![1, 3]).expect("in range");
        assert_eq!(s.required_models(), &[1, 3]);
        assert!(space().required_models().is_empty());
    }

    #[test]
    fn slots_can_be_reconfigured() {
        let s = space().with_slots(4).expect("valid");
        assert_eq!(s.num_slots(), 4);
        assert_eq!(s.num_steps(), 4 + 1 + 4 + 1);
        assert!(space().with_slots(0).is_err());
    }

    #[test]
    fn pool_size_can_be_regrown_but_not_below_required_models() {
        let s = space().with_pool_size(12).expect("grow");
        assert_eq!(s.pool_size(), 12);
        assert_eq!(s.with_pool_size(4).expect("shrink back"), space());
        assert!(space().with_pool_size(0).is_err());
        let required = space().with_required_models(vec![3]).expect("in range");
        assert!(required.with_pool_size(3).is_err());
    }

    /// A controller trained on pool 4, plus its extension to `new_pool`.
    /// Pool 12 crosses the padding-lane boundary of the slot heads (4 → 12
    /// logits) *and* grows the token vocabulary (max_choices 6 → 12), so
    /// both row-remap shapes are exercised.
    fn trained_and_extended(new_pool: usize) -> (RnnController, RnnController) {
        let mut rng = Rng64::seed(21);
        let mut old = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        for _ in 0..6 {
            let e = old.sample(&mut rng);
            old.update(&e, 1.0 + e.actions[0] as f32);
        }
        let state = old.export_state();
        let grown = space().with_pool_size(new_pool).expect("grow");
        let mut ext = RnnController::new(grown, ControllerConfig::default(), &mut Rng64::seed(777));
        ext.import_extended(&space(), state).expect("prefix growth");
        (old, ext)
    }

    #[test]
    fn extension_preserves_learned_behaviour_for_old_choices() {
        let (old, ext) = trained_and_extended(12);
        assert_eq!(ext.baseline(), old.baseline());
        assert_eq!(ext.updates(), old.updates());
        // Slot logits for the surviving models are untouched, so their
        // probability *ratios* survive exactly (the softmax support grew,
        // so absolute probabilities shrink together).
        let p_old = old.step_probs(0, &[]);
        let p_new = ext.step_probs(0, &[]);
        assert_eq!(p_new.len(), 12);
        for i in 1..4 {
            let r_old = p_old[i] / p_old[0];
            let r_new = p_new[i] / p_new[0];
            assert!(
                (r_old - r_new).abs() <= 1e-5 * r_old.abs().max(1.0),
                "slot ratio {i}: {r_old} vs {r_new}"
            );
        }
        // Non-slot steps see identical hidden trajectories for old-token
        // prefixes and identical heads: bit-identical distributions.
        let prefix = vec![1, 3];
        let d_old = old.step_probs(2, &prefix);
        let d_new = ext.step_probs(2, &prefix);
        assert_eq!(d_old.len(), d_new.len());
        for (a, b) in d_old.iter().zip(&d_new) {
            assert_eq!(a.to_bits(), b.to_bits(), "depth step drifted");
        }
    }

    #[test]
    fn extension_trains_on_and_can_pick_new_models() {
        let (_, mut ext) = trained_and_extended(12);
        let mut rng = Rng64::seed(33);
        // Reward only the newly added model 9 in slot 0: the extended
        // optimizer state must keep training (moments were remapped).
        let before = ext.step_probs(0, &[])[9];
        for _ in 0..200 {
            let e = ext.sample(&mut rng);
            let reward = if e.actions[0] == 9 { 2.0 } else { 0.0 };
            ext.update(&e, reward);
        }
        let after = ext.step_probs(0, &[])[9];
        assert!(after > before, "P(new model 9): {before} -> {after}");
        for (a, n) in ext.sample(&mut rng).actions.iter().zip(
            space()
                .with_pool_size(12)
                .expect("grow")
                .step_sizes(),
        ) {
            assert!(*a < n);
        }
    }

    #[test]
    fn extension_is_deterministic_and_plain_import_with_equal_pools() {
        let (_, mut a) = trained_and_extended(12);
        let (_, mut b) = trained_and_extended(12);
        assert_eq!(a.export_state().params, b.export_state().params);
        // Equal pool sizes: exactly import_state.
        let mut rng = Rng64::seed(21);
        let mut old = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        let e = old.sample(&mut rng);
        old.update(&e, 1.0);
        let state = old.export_state();
        let mut same = RnnController::new(space(), ControllerConfig::default(), &mut Rng64::seed(5));
        same.import_extended(&space(), state).expect("same space");
        assert_eq!(same.export_state().params, old.export_state().params);
    }

    #[test]
    fn extension_rejects_shrink_wrong_space_and_bad_lengths() {
        let mut rng = Rng64::seed(40);
        let mut old = RnnController::new(space(), ControllerConfig::default(), &mut rng);
        let state = old.export_state();
        // Shrinking the pool is never a warm extension.
        let mut small = RnnController::new(
            SearchSpace::paper_default(3),
            ControllerConfig::default(),
            &mut Rng64::seed(41),
        );
        assert!(matches!(
            small.import_extended(&space(), state.clone()),
            Err(MuffinError::InvalidConfig(_))
        ));
        // Spaces differing in more than pool size are rejected.
        let mut other = RnnController::new(
            space()
                .with_pool_size(12)
                .expect("grow")
                .with_slots(3)
                .expect("valid"),
            ControllerConfig::default(),
            &mut Rng64::seed(42),
        );
        assert!(matches!(
            other.import_extended(&space(), state.clone()),
            Err(MuffinError::InvalidConfig(_))
        ));
        // Truncated parameter vectors are rejected before any copying.
        let mut ext = RnnController::new(
            space().with_pool_size(12).expect("grow"),
            ControllerConfig::default(),
            &mut Rng64::seed(43),
        );
        let mut short = state;
        short.params.pop();
        assert!(matches!(
            ext.import_extended(&space(), short),
            Err(MuffinError::InvalidConfig(_))
        ));
    }
}
