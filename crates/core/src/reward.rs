use muffin_models::ModelEvaluation;

/// Configuration of the multi-fairness reward (paper Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardConfig {
    /// Floor applied to each unfairness score before dividing, so a
    /// perfectly fair attribute doesn't produce an infinite reward.
    pub epsilon: f32,
}

muffin_json::impl_json!(struct RewardConfig { epsilon });

impl Default for RewardConfig {
    fn default() -> Self {
        Self { epsilon: 0.05 }
    }
}

/// The paper's multi-fairness reward:
///
/// ```text
/// Reward = Σ_{k=1..K} A(f', D) / U(f', D)_{a_k}
/// ```
///
/// A larger reward means higher accuracy and lower unfairness on average
/// over the `K` targeted unfair attributes.
///
/// # Example
///
/// ```
/// use muffin::{multi_fairness_reward, RewardConfig};
/// use muffin_models::ModelEvaluation;
/// use muffin_data::{AttributeSchema, Dataset, SensitiveAttribute};
/// use muffin_tensor::Matrix;
///
/// let ds = Dataset::new(
///     Matrix::zeros(4, 1),
///     vec![0, 0, 1, 1],
///     2,
///     AttributeSchema::new(vec![SensitiveAttribute::new("a", &["g0", "g1"])]),
///     vec![vec![0, 0, 1, 1]],
/// );
/// let eval = ModelEvaluation::of(&[0, 0, 1, 1], &ds, "perfect".into());
/// let r = multi_fairness_reward(&eval, &["a"], RewardConfig::default());
/// // accuracy 1.0, unfairness floored at epsilon=0.05 → reward 20.
/// assert!((r - 20.0).abs() < 1e-4);
/// ```
pub fn multi_fairness_reward(
    evaluation: &ModelEvaluation,
    target_attributes: &[&str],
    config: RewardConfig,
) -> f32 {
    target_attributes
        .iter()
        .filter_map(|name| evaluation.attribute(name))
        .map(|attr| evaluation.accuracy / attr.unfairness.max(config.epsilon))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::{AttributeSchema, Dataset, SensitiveAttribute};
    use muffin_tensor::Matrix;

    fn dataset() -> Dataset {
        Dataset::new(
            Matrix::zeros(8, 1),
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            2,
            AttributeSchema::new(vec![
                SensitiveAttribute::new("a", &["g0", "g1"]),
                SensitiveAttribute::new("b", &["g0", "g1"]),
            ]),
            vec![vec![0, 0, 1, 1, 0, 0, 1, 1], vec![0, 1, 0, 1, 0, 1, 0, 1]],
        )
    }

    #[test]
    fn fairer_model_earns_higher_reward() {
        let ds = dataset();
        // Both models are 6/8 accurate. The unfair one concentrates its two
        // errors in attribute-a group 1 (U_a = 0.5); the fair one spreads
        // them so every group of every attribute is 3/4 accurate (U = 0).
        let unfair = ModelEvaluation::of(&[0, 0, 1, 1, 1, 1, 1, 1], &ds, "unfair".into());
        let fair = ModelEvaluation::of(&[0, 1, 0, 0, 1, 1, 0, 1], &ds, "fair".into());
        assert!((unfair.accuracy - fair.accuracy).abs() < 1e-6);
        let cfg = RewardConfig::default();
        let r_unfair = multi_fairness_reward(&unfair, &["a", "b"], cfg);
        let r_fair = multi_fairness_reward(&fair, &["a", "b"], cfg);
        assert!(r_fair > r_unfair, "fair {r_fair} vs unfair {r_unfair}");
    }

    #[test]
    fn reward_sums_over_attributes() {
        let ds = dataset();
        let eval = ModelEvaluation::of(&[0, 0, 0, 0, 1, 1, 1, 1], &ds, "perfect".into());
        let cfg = RewardConfig { epsilon: 0.1 };
        let one = multi_fairness_reward(&eval, &["a"], cfg);
        let two = multi_fairness_reward(&eval, &["a", "b"], cfg);
        assert!((two - 2.0 * one).abs() < 1e-5);
    }

    #[test]
    fn unknown_attributes_contribute_nothing() {
        let ds = dataset();
        let eval = ModelEvaluation::of(&[0; 8], &ds, "m".into());
        assert_eq!(multi_fairness_reward(&eval, &["zzz"], RewardConfig::default()), 0.0);
    }

    #[test]
    fn epsilon_floors_division() {
        let ds = dataset();
        let eval = ModelEvaluation::of(&[0, 0, 0, 0, 1, 1, 1, 1], &ds, "perfect".into());
        let r = multi_fairness_reward(&eval, &["a"], RewardConfig { epsilon: 0.5 });
        assert!((r - 2.0).abs() < 1e-5); // 1.0 accuracy / 0.5 floor
    }
}
