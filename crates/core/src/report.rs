//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple fixed-width text table used by the benchmark harness to print
/// the paper's tables and figure series.
///
/// # Example
///
/// ```
/// use muffin::TextTable;
///
/// let mut table = TextTable::new(&["model", "acc"]);
/// table.row(&["ResNet-18", "78.3%"]);
/// let text = table.to_string();
/// assert!(text.contains("ResNet-18"));
/// assert!(text.contains("model"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let mut row = cells;
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut line = String::new();
        for (w, cell) in widths.iter().zip(&self.header) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        writeln!(f, "{}", line.trim_end())?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:<w$}  ");
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals, e.g. `78.32%`.
///
/// # Example
///
/// ```
/// assert_eq!(muffin::fmt_percent(0.78324), "78.32%");
/// ```
pub fn fmt_percent(fraction: f32) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// Formats an improvement between two unfairness scores as the paper does:
/// the relative reduction `(before − after) / before`, signed.
///
/// Returns `"—"` when `before` is not positive.
///
/// # Example
///
/// ```
/// // 0.38 → 0.28 is a 26.32% improvement (the paper's MobileNet age gain).
/// assert_eq!(muffin::fmt_improvement(0.38, 0.28), "+26.32%");
/// assert_eq!(muffin::fmt_improvement(0.30, 0.33), "-10.00%");
/// ```
pub fn fmt_improvement(before: f32, after: f32) -> String {
    if before <= 0.0 {
        return "—".to_string();
    }
    let rel = (before - after) / before;
    format!("{}{:.2}%", if rel >= 0.0 { "+" } else { "-" }, rel.abs() * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["wide-cell-content", "x"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row share column offsets.
        let col2_header = lines[0].find("long-header").unwrap();
        let col2_row = lines[2].find('x').unwrap();
        assert_eq!(col2_header, col2_row);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains('1'));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(fmt_percent(1.0), "100.00%");
        assert_eq!(fmt_percent(0.0), "0.00%");
    }

    #[test]
    fn improvement_formatting_matches_paper_quotes() {
        // ShuffleNet site: 0.45 → 0.44 ≈ +2.22%.
        assert_eq!(fmt_improvement(0.45, 0.44), "+2.22%");
        // Paper: 19.44% age improvement for 0.36 → 0.29.
        assert_eq!(fmt_improvement(0.36, 0.29), "+19.44%");
    }

    #[test]
    fn improvement_handles_degenerate_before() {
        assert_eq!(fmt_improvement(0.0, 0.1), "—");
    }

    #[test]
    fn empty_table_prints_header_only() {
        let t = TextTable::new(&["x"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains('x'));
    }
}
