//! Explaining a trained fusing structure: on disagreements, whom does the
//! head trust?
//!
//! With consensus gating the head only ever decides samples where the body
//! models disagree. The [`TrustReport`] summarises those decisions: how
//! often the fused output sides with each body model, and how often it
//! invents a class neither body predicted — overall and per group of a
//! chosen attribute. This is the quantitative form of the paper's
//! Figure 6 narrative ("all correct determinations from ResNet-50 are kept
//! by Muffin-Site…").

use crate::FusingStructure;
use muffin_data::{AttributeId, Dataset};
use muffin_models::ModelPool;

/// Who the head sided with on the disagreement samples of one slice.
#[derive(Debug, Clone)]
pub struct TrustSlice {
    /// Group index (`u16::MAX` for the overall slice).
    pub group: u16,
    /// Number of disagreement samples in the slice.
    pub disagreements: usize,
    /// P(fused output equals body model m's prediction | disagreement),
    /// in body order. Rows can overlap when bodies partially agree.
    pub sided_with: Vec<f32>,
    /// P(fused output matches none of the bodies | disagreement).
    pub invented: f32,
    /// Accuracy of the fused output on the slice's disagreements.
    pub accuracy: f32,
}

muffin_json::impl_json!(struct TrustSlice { group, disagreements, sided_with, invented, accuracy });

/// Trust analysis of a fusing structure on one dataset.
#[derive(Debug, Clone)]
pub struct TrustReport {
    /// Names of the body models, in body order.
    pub body: Vec<String>,
    /// The overall slice plus one slice per group of the chosen attribute.
    pub slices: Vec<TrustSlice>,
}

muffin_json::impl_json!(struct TrustReport { body, slices });

impl TrustReport {
    /// Analyses `fusing` on `dataset`, slicing by `attr` when given.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range for the dataset schema.
    pub fn analyze(
        fusing: &FusingStructure,
        pool: &ModelPool,
        dataset: &Dataset,
        attr: Option<AttributeId>,
    ) -> Self {
        let body_preds: Vec<Vec<usize>> = fusing
            .model_indices()
            .iter()
            .map(|&i| pool.get(i).expect("valid body index").predict(dataset.features()))
            .collect();
        let fused = fusing.predict(pool, dataset.features());
        let body = fusing
            .model_indices()
            .iter()
            .filter_map(|&i| pool.get(i))
            .map(|m| m.name().to_string())
            .collect();

        let slice_of = |indices: &[usize], group: u16| -> TrustSlice {
            let disagreement_idx: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&s| body_preds.iter().any(|p| p[s] != body_preds[0][s]))
                .collect();
            let n = disagreement_idx.len().max(1) as f32;
            let sided_with = body_preds
                .iter()
                .map(|p| {
                    disagreement_idx.iter().filter(|&&s| fused[s] == p[s]).count() as f32 / n
                })
                .collect();
            let invented = disagreement_idx
                .iter()
                .filter(|&&s| body_preds.iter().all(|p| fused[s] != p[s]))
                .count() as f32
                / n;
            let accuracy = disagreement_idx
                .iter()
                .filter(|&&s| fused[s] == dataset.labels()[s])
                .count() as f32
                / n;
            TrustSlice {
                group,
                disagreements: disagreement_idx.len(),
                sided_with,
                invented,
                accuracy,
            }
        };

        let all: Vec<usize> = (0..dataset.len()).collect();
        let mut slices = vec![slice_of(&all, u16::MAX)];
        if let Some(attr) = attr {
            let num_groups =
                dataset.schema().get(attr).expect("attribute in range").num_groups();
            for g in 0..num_groups as u16 {
                let members: Vec<usize> = dataset
                    .groups(attr)
                    .iter()
                    .enumerate()
                    .filter(|(_, &gg)| gg == g)
                    .map(|(i, _)| i)
                    .collect();
                slices.push(slice_of(&members, g));
            }
        }
        Self { body, slices }
    }

    /// The overall (non-grouped) slice.
    pub fn overall(&self) -> &TrustSlice {
        &self.slices[0]
    }

    /// The slice for one group, if the report was grouped.
    pub fn group(&self, group: u16) -> Option<&TrustSlice> {
        self.slices.iter().find(|s| s.group == group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeadSpec, HeadTrainConfig, PrivilegeMap, ProxyDataset};
    use muffin_data::IsicLike;
    use muffin_models::{Architecture, BackboneConfig};
    use muffin_nn::Activation;
    use muffin_tensor::Rng64;

    fn fixture() -> (FusingStructure, ModelPool, muffin_data::DatasetSplit) {
        let mut rng = Rng64::seed(90);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::densenet121()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let age = split.train.schema().by_name("age").unwrap();
        let site = split.train.schema().by_name("site").unwrap();
        let privilege = PrivilegeMap::infer(&pool, &split.val, &[age, site], 0.02);
        let proxy = ProxyDataset::build(&split.train, &privilege).expect("proxy");
        let mut fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 12], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        fusing.train_head(&pool, &split.train, &proxy, &HeadTrainConfig::fast(), &mut rng);
        (fusing, pool, split)
    }

    #[test]
    fn overall_slice_counts_disagreements() {
        let (fusing, pool, split) = fixture();
        let report = TrustReport::analyze(&fusing, &pool, &split.test, None);
        assert_eq!(report.body.len(), 2);
        assert_eq!(report.slices.len(), 1);
        let overall = report.overall();
        assert!(overall.disagreements > 0, "models should disagree somewhere");
        // With two bodies that disagree, siding probabilities are disjoint
        // events plus "invented": they partition the disagreements.
        let total = overall.sided_with.iter().sum::<f32>() + overall.invented;
        assert!((total - 1.0).abs() < 1e-5, "partition sums to {total}");
    }

    #[test]
    fn grouped_report_has_one_slice_per_group_plus_overall() {
        let (fusing, pool, split) = fixture();
        let site = split.test.schema().by_name("site").unwrap();
        let report = TrustReport::analyze(&fusing, &pool, &split.test, Some(site));
        assert_eq!(report.slices.len(), 1 + 9);
        assert!(report.group(7).is_some());
        assert!(report.group(99).is_none());
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (fusing, pool, split) = fixture();
        let report = TrustReport::analyze(&fusing, &pool, &split.test, None);
        for slice in &report.slices {
            assert!((0.0..=1.0).contains(&slice.invented));
            assert!((0.0..=1.0 + 1e-6).contains(&slice.accuracy));
            for &p in &slice.sided_with {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
