//! # Muffin — multi-dimension AI fairness by uniting off-the-shelf models
//!
//! A from-scratch Rust reproduction of *"Muffin: A Framework Toward
//! Multi-Dimension AI Fairness by Uniting Off-the-Shelf Models"*
//! (DAC 2023). Real-world datasets carry **several** sensitive attributes
//! (age, disease site, gender, skin tone), and single-attribute fairness
//! fixes behave like a seesaw: improving one attribute's fairness degrades
//! another's. Muffin escapes the seesaw by *uniting* frozen off-the-shelf
//! models:
//!
//! * a **model-fusing structure** ([`FusingStructure`]) feeds the output
//!   probabilities of selected pool models (the "muffin body") into a
//!   small MLP (the "muffin head") that arbitrates disagreements, with
//!   consensus gating;
//! * the head trains on a **fairness proxy dataset** ([`ProxyDataset`])
//!   holding only unprivileged-group samples, weighted by the paper's
//!   Algorithm 1 so samples that are unprivileged under *several*
//!   attributes pull more gradient (Eq. 2);
//! * each candidate earns the **multi-fairness reward**
//!   ([`multi_fairness_reward`], Eq. 3);
//! * an **RNN controller** ([`RnnController`]) trained with REINFORCE
//!   (Eq. 4) searches over model pairings and head shapes, driven by
//!   [`MuffinSearch`].
//!
//! The substrates live in sibling crates: `muffin-tensor` (matrix math),
//! `muffin-nn` (layers/losses/optimizers), `muffin-data` (synthetic
//! dermatology datasets with multi-attribute group structure) and
//! `muffin-models` (the off-the-shelf pool and the D/L baselines).
//!
//! # Quickstart
//!
//! ```
//! use muffin::{MuffinSearch, SearchConfig};
//! use muffin_data::IsicLike;
//! use muffin_models::{Architecture, BackboneConfig, ModelPool};
//! use muffin_tensor::Rng64;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::seed(7);
//! // 1. A dataset with two entangled unfair attributes (age, site).
//! let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
//! // 2. An off-the-shelf model pool.
//! let pool = ModelPool::train(
//!     &split.train,
//!     &[Architecture::resnet18(), Architecture::densenet121()],
//!     &BackboneConfig::fast(),
//!     &mut rng,
//! );
//! // 3. Search for a fusing structure optimising both attributes at once.
//! let config = SearchConfig::fast(&["age", "site"]).with_episodes(3);
//! let search = MuffinSearch::new(pool, split, config)?;
//! let outcome = search.run(&mut rng)?;
//! println!("best: {} reward {:.2}", outcome.best().head_desc, outcome.best().reward);
//! # Ok(())
//! # }
//! ```

mod analysis;
mod body_cache;
mod checkpoint;
mod controller;
mod distill;
mod error;
mod explain;
mod fusing;
mod halving;
mod pareto;
mod privilege;
mod proxy;
mod random_search;
mod report;
mod reward;
mod reward_variants;
mod search;
mod sharded;

pub use analysis::{per_group_accuracy_table, DisagreementBreakdown, FusionComposition};
pub use body_cache::BodyOutputCache;
pub use checkpoint::{
    fnv1a64, EvalCacheFile, PersistenceOptions, SearchCheckpoint, SearchFingerprint,
    CHECKPOINT_VERSION,
};
pub use controller::{
    Candidate, ControllerConfig, ControllerState, RnnController, SampledEpisode, SearchSpace,
};
pub use distill::{distill_student, DistillConfig, DistilledStudent};
pub use error::MuffinError;
pub use explain::{TrustReport, TrustSlice};
pub use fusing::{FusingStructure, HeadSpec, HeadTrainConfig};
pub use halving::{promote, promotion_count, rung_budgets, successive_halving, HalvingConfig};
pub use pareto::{dominates_min, pareto_max_min_indices, pareto_min_indices};
pub use privilege::PrivilegeMap;
pub use proxy::ProxyDataset;
pub use random_search::random_search;
pub use report::{fmt_improvement, fmt_percent, TextTable};
pub use reward::{multi_fairness_reward, RewardConfig};
pub use reward_variants::RewardKind;
pub use search::{EpisodeRecord, MuffinSearch, SearchConfig, SearchOutcome};
pub use sharded::{merge_shard_histories, run_sharded, ShardedConfig};

// Re-exported so downstream users (CLI, benches) size and share one pool
// without depending on `muffin-par` directly.
pub use muffin_par::{available_parallelism, WorkerPool};

// Re-exported so downstream users attach observability without depending
// on `muffin-trace` directly.
pub use muffin_trace::{summarize, TraceLog, Tracer};

// Re-export the fairness metric primitives so downstream users need only
// this crate for the paper's Section 3.1 definitions.
pub use muffin_data::{
    group_accuracies, group_accuracy_gap, intersectional_group_accuracies,
    intersectional_unfairness, joint_group_ids, joint_unfairness, unfairness_score, GroupAccuracy,
    Scenario, ScenarioError, ScenarioFamily, ScenarioRegistry,
};
pub use muffin_models::{
    unprivileged_by_accuracy, AttributeEvaluation, IntersectionEvaluation, ModelEvaluation,
};
