//! Sharded multi-island REINFORCE search over a shared eval cache.
//!
//! [`run_sharded`] runs a *fleet* of search islands — independent
//! [`MuffinSearch::run_persistent`] loops with distinct controller seeds
//! derived from one root seed — that cooperate through two channels:
//!
//! * a **shared on-disk eval cache**, so no candidate fusing structure is
//!   trained twice across the fleet, and
//! * periodic **elite exchange**: at REINFORCE-batch-aligned round
//!   barriers, the fleet's best candidates nudge every island's policy
//!   via a teacher-forced [`RnnController::replay`] +
//!   [`RnnController::update_batch`] step.
//!
//! # Determinism model
//!
//! The merged [`SearchOutcome`] depends only on `(seed, config,
//! ShardedConfig identity knobs)` — never on process scheduling:
//!
//! * **Seed derivation.** One [`SplitMix64`] stream off the root seed
//!   yields, in island order, a controller entry seed and a screen seed
//!   per island. Island `i`'s trajectory is a function of its seeds and
//!   the barrier inputs alone.
//! * **Immutable round snapshots.** Islands read a frozen per-round cache
//!   file (`cache-screen.json`, then `cache-round-{r}.json`) and never
//!   write it (`eval_cache_read_only`); only the supervisor writes cache
//!   files, single-threaded, at barriers. Concurrent islands therefore
//!   cannot observe each other mid-round, so `--shards`/worker counts are
//!   pure concurrency knobs.
//! * **Deterministic reduce.** Barrier unions and elite selection iterate
//!   islands in index order with total-order comparators, and the final
//!   merge sorts shard histories by island index before concatenating —
//!   completion order is irrelevant.
//! * **Crash idempotence.** Per-island checkpoints resume bit-identically
//!   (the PR 4 contract); [`SearchCheckpoint::exchanges_applied`] is
//!   bumped *before* the post-exchange segment launches so an exchange is
//!   never applied twice; barrier files are only recomputed when missing,
//!   from end-of-round checkpoints that no island has advanced past.
//!
//! The shared cache's fingerprint carries the canonical root-seed RNG
//! state and is matched ignoring the RNG component
//! ([`SearchFingerprint::mismatch_ignoring_rng`]): evaluations depend
//! only on (config, space, pool, data), so any island may consume any
//! other island's records.

use crate::checkpoint::{
    EvalCacheFile, PersistenceOptions, SearchCheckpoint, SearchFingerprint, CHECKPOINT_VERSION,
};
use crate::halving::{evaluate_at_epochs, promote, rung_budgets};
use crate::search::{EpisodeRecord, SearchConfig, SearchOutcome};
use crate::{MuffinError, MuffinSearch, RnnController, SampledEpisode};
use muffin_data::DatasetSplit;
use muffin_models::ModelPool;
use muffin_par::WorkerPool;
use muffin_tensor::{Rng64, SplitMix64};
use muffin_trace::Tracer;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};

/// Configuration of a sharded search fleet.
///
/// The first seven fields are **identity-bearing**: they shape the merged
/// outcome and are pinned by the fleet manifest on resume. `shards` and
/// `island_workers` are pure concurrency knobs — any value produces
/// byte-identical results.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of search islands the episode budget is split across.
    pub islands: usize,
    /// Per-island episodes between elite-exchange barriers; `0` disables
    /// exchange (one round). Segments end at the first REINFORCE-batch
    /// boundary at or after each multiple, so the effective cadence
    /// rounds up to batch boundaries.
    pub exchange_every: u32,
    /// Fleet-wide distinct elites broadcast at each barrier.
    pub elites: usize,
    /// Successive-halving screen budget per island (candidates entering
    /// rung 0); `0` disables the screen.
    pub screen_budget: u32,
    /// Screen rungs (final rung evaluates at the full head budget).
    pub screen_rungs: u32,
    /// Fraction promoted between screen rungs.
    pub screen_keep: f32,
    /// Head epochs in the cheapest screen rung.
    pub screen_epochs: u32,
    /// Islands run concurrently (capped at `islands`). Concurrency only.
    pub shards: usize,
    /// Worker threads inside each island's evaluation pool. Concurrency
    /// only.
    pub island_workers: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            islands: 4,
            exchange_every: 10,
            elites: 2,
            screen_budget: 0,
            screen_rungs: 2,
            screen_keep: 0.5,
            screen_epochs: 2,
            shards: 1,
            island_workers: 1,
        }
    }
}

impl ShardedConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] naming the violated field.
    pub fn validate(&self) -> Result<(), MuffinError> {
        if self.islands == 0 {
            return Err(MuffinError::InvalidConfig(
                "islands must be positive".into(),
            ));
        }
        if self.shards == 0 || self.island_workers == 0 {
            return Err(MuffinError::InvalidConfig(
                "shards and island_workers must be positive".into(),
            ));
        }
        if self.screen_budget > 0 {
            if self.screen_rungs == 0 || self.screen_epochs == 0 {
                return Err(MuffinError::InvalidConfig(
                    "screen_rungs and screen_epochs must be positive".into(),
                ));
            }
            if !(self.screen_keep > 0.0 && self.screen_keep < 1.0) {
                return Err(MuffinError::InvalidConfig(
                    "screen_keep must be in (0, 1)".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Identity record pinned in `<shard-dir>/fleet.json`: a resumed fleet
/// must use the same identity knobs or the merged bytes would drift.
#[derive(Debug, Clone)]
struct FleetManifest {
    version: u32,
    seed: u64,
    islands: usize,
    exchange_every: u32,
    elites: usize,
    screen_budget: u32,
    screen_rungs: u32,
    screen_keep: f32,
    screen_epochs: u32,
}

muffin_json::impl_json!(struct FleetManifest {
    version, seed, islands, exchange_every, elites, screen_budget, screen_rungs,
    screen_keep, screen_epochs,
});

impl FleetManifest {
    fn new(seed: u64, sharded: &ShardedConfig) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            seed,
            islands: sharded.islands,
            exchange_every: sharded.exchange_every,
            elites: sharded.elites,
            screen_budget: sharded.screen_budget,
            screen_rungs: sharded.screen_rungs,
            screen_keep: sharded.screen_keep,
            screen_epochs: sharded.screen_epochs,
        }
    }
}

/// Prefixes an island-scoped error with the offending shard's index, so
/// operators (and the fault-injection suite) can tell *which* shard's
/// artifact went bad.
fn shard_error(island: usize, e: MuffinError) -> MuffinError {
    match e {
        MuffinError::Io(m) => MuffinError::Io(format!("shard {island}: {m}")),
        MuffinError::StaleArtifact(m) => MuffinError::StaleArtifact(format!("shard {island}: {m}")),
        other => other,
    }
}

/// Deterministically merges per-shard episode histories into one
/// [`SearchOutcome`].
///
/// Shards are sorted by island index (so the caller may supply them in
/// any completion order), histories are concatenated, episodes are
/// renumbered globally, `first_seen` is recomputed as the global first
/// occurrence of each action vector, and `best_by_reward` is the first
/// strict maximum — the same rule the single-process loop uses.
///
/// # Errors
///
/// [`MuffinError::InvalidConfig`] on an empty shard list, duplicate
/// island indices, or an entirely empty merged history.
pub fn merge_shard_histories(
    mut shards: Vec<(usize, Vec<EpisodeRecord>)>,
    target_attributes: Vec<String>,
) -> Result<SearchOutcome, MuffinError> {
    if shards.is_empty() {
        return Err(MuffinError::InvalidConfig(
            "cannot merge an empty shard list".into(),
        ));
    }
    shards.sort_by_key(|&(island, _)| island);
    if shards.windows(2).any(|w| w[0].0 == w[1].0) {
        return Err(MuffinError::InvalidConfig(
            "duplicate island index in shard histories".into(),
        ));
    }
    let mut history: Vec<EpisodeRecord> = shards.into_iter().flat_map(|(_, h)| h).collect();
    if history.is_empty() {
        return Err(MuffinError::InvalidConfig(
            "merged shard history is empty".into(),
        ));
    }
    let mut first_seen: HashMap<Vec<usize>, u32> = HashMap::new();
    let mut best_idx = 0usize;
    let mut best_reward = f32::MIN;
    for (global, record) in history.iter_mut().enumerate() {
        let global = global as u32;
        record.episode = global;
        record.first_seen = *first_seen.entry(record.actions.clone()).or_insert(global);
        if record.reward > best_reward {
            best_reward = record.reward;
            best_idx = global as usize;
        }
    }
    Ok(SearchOutcome {
        history,
        best_by_reward: best_idx,
        target_attributes,
    })
}

/// Paths of every artifact a fleet writes under its shard directory.
struct FleetPaths {
    dir: PathBuf,
}

impl FleetPaths {
    fn manifest(&self) -> PathBuf {
        self.dir.join("fleet.json")
    }
    fn shard_checkpoint(&self, island: usize) -> PathBuf {
        self.dir.join(format!("shard-{island}.ckpt.json"))
    }
    /// Round input caches: the screen snapshot feeds round 0, round `r`'s
    /// barrier snapshot feeds round `r + 1`.
    fn cache_screen(&self) -> PathBuf {
        self.dir.join("cache-screen.json")
    }
    fn cache_round(&self, round: u32) -> PathBuf {
        self.dir.join(format!("cache-round-{round}.json"))
    }
    fn elites_round(&self, round: u32) -> PathBuf {
        self.dir.join(format!("elites-round-{round}.json"))
    }
    fn round_input(&self, round: u32) -> PathBuf {
        if round == 0 {
            self.cache_screen()
        } else {
            self.cache_round(round - 1)
        }
    }
}

/// Runs a sharded multi-island search and returns the merged outcome.
///
/// `dir` holds all fleet state: the identity manifest, one checkpoint per
/// island, per-round cache snapshots and elite files. With `resume` the
/// fleet continues from whatever state the directory holds (any subset of
/// islands at any boundary); without it, stale fleet artifacts in `dir`
/// are removed first.
///
/// `warm_cache`, when given, is an external shared-mode eval-cache file:
/// read before the screen so a previous fleet's work is reused, and
/// rewritten afterwards (merge-on-write) with everything this fleet
/// evaluated — the cross-fleet cache-sharing workflow.
///
/// The merged bytes are invariant under `sharded.shards`,
/// `sharded.island_workers`, shard completion order, and kill/resume at
/// any point (see the module docs for the model, and the
/// sharded-equivalence + CLI fault-injection suites for the proof).
///
/// # Errors
///
/// Configuration errors up front; [`MuffinError::Io`] /
/// [`MuffinError::StaleArtifact`] (prefixed with the offending shard
/// index where island-scoped) on artifact problems.
pub fn run_sharded(
    pool: ModelPool,
    split: DatasetSplit,
    config: SearchConfig,
    sharded: &ShardedConfig,
    seed: u64,
    dir: impl AsRef<Path>,
    resume: bool,
    warm_cache: Option<&Path>,
    tracer: &Tracer,
) -> Result<SearchOutcome, MuffinError> {
    sharded.validate()?;
    let paths = FleetPaths {
        dir: dir.as_ref().to_path_buf(),
    };
    std::fs::create_dir_all(&paths.dir).map_err(|e| {
        MuffinError::Io(format!(
            "cannot create shard dir {}: {e}",
            paths.dir.display()
        ))
    })?;

    let islands = sharded.islands;
    let island_episodes = config.episodes.div_ceil(islands as u32).max(1);
    let island_config = config.clone().with_episodes(island_episodes);
    let segment = if sharded.exchange_every == 0 {
        island_episodes
    } else {
        sharded.exchange_every.min(island_episodes)
    };
    let rounds = island_episodes.div_ceil(segment);

    // Pin the identity knobs across resumes.
    let manifest = FleetManifest::new(seed, sharded);
    if resume && paths.manifest().exists() {
        let text = std::fs::read_to_string(paths.manifest())
            .map_err(|e| MuffinError::Io(format!("cannot read fleet manifest: {e}")))?;
        let existing: FleetManifest = muffin_json::from_str(&text)
            .map_err(|e| MuffinError::StaleArtifact(format!("fleet manifest is corrupt: {e}")))?;
        if muffin_json::to_string(&existing) != muffin_json::to_string(&manifest) {
            return Err(MuffinError::StaleArtifact(format!(
                "fleet manifest {} pins different identity knobs (seed/islands/exchange/elites/\
                 screen); resume with the original values or use a fresh shard dir",
                paths.manifest().display()
            )));
        }
    } else {
        // Fresh fleet: clear every artifact a previous fleet in this
        // directory could have left, then pin the manifest.
        let mut stale: Vec<PathBuf> = vec![paths.cache_screen()];
        for i in 0..islands {
            stale.push(paths.shard_checkpoint(i));
        }
        for r in 0..rounds {
            stale.push(paths.cache_round(r));
            stale.push(paths.elites_round(r));
        }
        for p in stale {
            std::fs::remove_file(p).ok();
        }
        crate::checkpoint::write_atomic(&paths.manifest(), &muffin_json::to_string(&manifest))?;
    }

    // Serialise identity inputs once; build per-island fingerprints (the
    // entry RNG state differs per island) and the fleet fingerprint used
    // by shared cache artifacts (canonical root-seed entry state).
    let pool_json = muffin_json::to_string(&pool);
    let split_json = muffin_json::to_string(&split);

    // Seed derivation: one SplitMix64 stream, two draws per island in
    // island order — controller entry seed, then screen seed.
    let mut stream = SplitMix64::new(seed);
    let island_seeds: Vec<(u64, u64)> = (0..islands)
        .map(|_| (stream.next_u64(), stream.next_u64()))
        .collect();

    // Island 0 runs full validation and infers the privilege map; the
    // rest share it so every island trains on the identical proxy data.
    let first = MuffinSearch::new(pool.clone(), split.clone(), island_config.clone())?;
    let privilege = first.privilege().clone();
    let space = first.space();
    let forks: Vec<Tracer> = (0..islands).map(|_| tracer.fork()).collect();
    let mut fleet: Vec<MuffinSearch> = vec![first.with_tracer(forks[0].clone())];
    for fork in forks.iter().take(islands).skip(1) {
        fleet.push(
            MuffinSearch::with_privilege(
                pool.clone(),
                split.clone(),
                island_config.clone(),
                privilege.clone(),
            )?
            .with_tracer(fork.clone()),
        );
    }

    let island_fp: Vec<SearchFingerprint> = island_seeds
        .iter()
        .map(|&(search_seed, _)| {
            SearchFingerprint::new(
                Rng64::seed(search_seed).state(),
                &island_config,
                &space,
                &pool_json,
                pool.manifest(),
                &split_json,
            )
        })
        .collect();
    let fleet_fp = SearchFingerprint::new(
        Rng64::seed(seed).state(),
        &island_config,
        &space,
        &pool_json,
        pool.manifest(),
        &split_json,
    );

    let mut run_span = tracer.span("sharded.run");
    run_span.field("islands", islands);
    run_span.field("rounds", rounds as usize);
    run_span.field("episodes_per_island", island_episodes as usize);
    run_span.field("screen_budget", sharded.screen_budget as usize);

    let outer = WorkerPool::new(sharded.shards.min(islands));

    // ---- Screen phase: successive-halving warm-up feeding round 0. ----
    if !paths.cache_screen().exists() {
        let screened: Vec<Vec<EpisodeRecord>> = if sharded.screen_budget > 0 {
            let indices: Vec<usize> = (0..islands).collect();
            outer
                .map(&indices, |_, &i| {
                    run_screen(&fleet[i], sharded, island_seeds[i].1).map_err(|e| shard_error(i, e))
                })
                .into_iter()
                .collect::<Result<Vec<_>, _>>()?
        } else {
            vec![Vec::new(); islands]
        };
        for fork in &forks {
            tracer.absorb(fork);
        }
        // Union: external warm records first, then islands in order;
        // first entry per action vector wins.
        let mut seen: HashSet<Vec<usize>> = HashSet::new();
        let mut records: Vec<EpisodeRecord> = Vec::new();
        if let Some(warm) = warm_cache {
            if let Some(file) = EvalCacheFile::load_shared(warm, &fleet_fp)? {
                tracer.progress(|| format!("warm cache: {} record(s)", file.records.len()));
                for record in file.records {
                    if seen.insert(record.actions.clone()) {
                        records.push(record);
                    }
                }
            }
        }
        for island_records in screened {
            for record in island_records {
                if seen.insert(record.actions.clone()) {
                    records.push(record);
                }
            }
        }
        records.sort_by(|a, b| a.actions.cmp(&b.actions));
        tracer.progress(|| format!("screen snapshot: {} record(s)", records.len()));
        EvalCacheFile {
            version: CHECKPOINT_VERSION,
            fingerprint: fleet_fp.clone(),
            records,
        }
        .save(paths.cache_screen())?;
    }

    // ---- Rounds: segments between elite-exchange barriers. ----
    let mut round_elites: Vec<EpisodeRecord> = Vec::new();
    for round in 0..rounds {
        let end = (segment * (round + 1)).min(island_episodes);
        let input_cache = paths.round_input(round);
        if round > 0 {
            round_elites = EvalCacheFile::load_shared(&paths.elites_round(round - 1), &fleet_fp)?
                .map(|f| f.records)
                .unwrap_or_default();
        }
        let indices: Vec<usize> = (0..islands).collect();
        let elites_ref = &round_elites;
        let input_ref = &input_cache;
        let results = outer.map(&indices, |_, &i| {
            run_island_segment(
                &fleet[i],
                &paths.shard_checkpoint(i),
                &island_fp[i],
                island_seeds[i].0,
                input_ref,
                elites_ref,
                round,
                end,
                island_episodes,
                sharded,
            )
            .map_err(|e| shard_error(i, e))
        });
        // Deterministic absorption order regardless of which island's
        // thread finished first.
        for fork in &forks {
            tracer.absorb(fork);
        }
        results.into_iter().collect::<Result<Vec<_>, _>>()?;

        // Barrier: publish the round's elites and cache snapshot before
        // any next-round segment may launch. Skipped when both files
        // already exist (crash-resume past a completed barrier).
        if round + 1 < rounds {
            let elites_path = paths.elites_round(round);
            let cache_path = paths.cache_round(round);
            if !(elites_path.exists() && cache_path.exists()) {
                let checkpoints: Vec<SearchCheckpoint> = (0..islands)
                    .map(|i| {
                        SearchCheckpoint::load(paths.shard_checkpoint(i), &island_fp[i])
                            .map_err(|e| shard_error(i, e))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let elites = select_elites(&checkpoints, sharded.elites);
                tracer.count("sharded.elite_exchange", elites.len() as u64);
                EvalCacheFile {
                    version: CHECKPOINT_VERSION,
                    fingerprint: fleet_fp.clone(),
                    records: elites,
                }
                .save(&elites_path)?;
                let mut union: BTreeMap<Vec<usize>, EpisodeRecord> = BTreeMap::new();
                for ckpt in &checkpoints {
                    for record in &ckpt.cache {
                        union
                            .entry(record.actions.clone())
                            .or_insert_with(|| record.clone());
                    }
                }
                EvalCacheFile {
                    version: CHECKPOINT_VERSION,
                    fingerprint: fleet_fp.clone(),
                    records: union.into_values().collect(),
                }
                .save(&cache_path)?;
            }
        }
    }

    // ---- Reduce: merge final checkpoints in island-index order. ----
    let mut shard_histories: Vec<(usize, Vec<EpisodeRecord>)> = Vec::with_capacity(islands);
    let mut final_cache: BTreeMap<Vec<usize>, EpisodeRecord> = BTreeMap::new();
    for i in 0..islands {
        let ckpt = SearchCheckpoint::load(paths.shard_checkpoint(i), &island_fp[i])
            .map_err(|e| shard_error(i, e))?;
        if ckpt.episode != island_episodes {
            return Err(MuffinError::StaleArtifact(format!(
                "shard {i}: checkpoint stopped at episode {} of {island_episodes}",
                ckpt.episode
            )));
        }
        for record in &ckpt.cache {
            final_cache
                .entry(record.actions.clone())
                .or_insert_with(|| record.clone());
        }
        shard_histories.push((i, ckpt.history));
    }
    if let Some(warm) = warm_cache {
        EvalCacheFile {
            version: CHECKPOINT_VERSION,
            fingerprint: fleet_fp.clone(),
            records: final_cache.into_values().collect(),
        }
        .save_merged(warm)?;
    }
    run_span.finish();
    merge_shard_histories(shard_histories, config.target_attributes.clone())
}

/// One island's successive-halving screen: cheap low-epoch rungs promote
/// by reward into a final rung evaluated at the full head budget, whose
/// records seed the fleet's round-0 cache.
fn run_screen(
    search: &MuffinSearch,
    sharded: &ShardedConfig,
    screen_seed: u64,
) -> Result<Vec<EpisodeRecord>, MuffinError> {
    let space = search.space();
    let sizes = space.step_sizes();
    let budgets = rung_budgets(
        sharded.screen_budget,
        sharded.screen_rungs,
        sharded.screen_keep,
    );
    let full_epochs = search.config().head.epochs;
    let mut rng = Rng64::seed(screen_seed);

    // Rung-0 population: distinct random action vectors (the attempt cap
    // covers spaces smaller than the budget).
    let rung0 = budgets.first().copied().unwrap_or(0) as usize;
    let mut population: Vec<Vec<usize>> = Vec::new();
    let mut attempts = 0usize;
    while population.len() < rung0 && attempts < rung0.saturating_mul(20) {
        let actions: Vec<usize> = sizes.iter().map(|&n| rng.below(n)).collect();
        if !population.contains(&actions) {
            population.push(actions);
        }
        attempts += 1;
    }

    let mut epochs = sharded.screen_epochs.min(full_epochs);
    let mut promoted_records: Vec<EpisodeRecord> = Vec::new();
    for rung in 0..sharded.screen_rungs {
        population.truncate(budgets[rung as usize] as usize);
        if population.is_empty() {
            break;
        }
        let last = rung + 1 == sharded.screen_rungs;
        // The final rung runs the full budget and drops the `@ep` tag:
        // its records are real evaluations the search loop can serve
        // from cache.
        let rung_epochs = if last { full_epochs } else { epochs };
        let mut scored: Vec<EpisodeRecord> = Vec::with_capacity(population.len());
        for actions in &population {
            let head_seed = rng.next_u64();
            scored.push(evaluate_at_epochs(
                search,
                actions,
                head_seed,
                rung_epochs,
                0,
                !last,
            )?);
        }
        search
            .tracer()
            .count("sharded.screen_eval", scored.len() as u64);
        if last {
            promoted_records = scored;
            break;
        }
        let rewards: Vec<f32> = scored.iter().map(|r| r.reward).collect();
        population = promote(&rewards, sharded.screen_keep)
            .into_iter()
            .map(|i| scored[i].actions.clone())
            .collect();
        epochs = epochs.saturating_mul(2).min(full_epochs);
    }
    Ok(promoted_records)
}

/// Runs one island's segment of one round: apply the pending elite
/// exchange (at most once, guarded by `exchanges_applied`), then resume
/// the island's persistent loop until the round's halt boundary.
#[allow(clippy::too_many_arguments)]
fn run_island_segment(
    search: &MuffinSearch,
    checkpoint: &Path,
    fingerprint: &SearchFingerprint,
    search_seed: u64,
    input_cache: &Path,
    elites: &[EpisodeRecord],
    round: u32,
    end: u32,
    island_episodes: u32,
    sharded: &ShardedConfig,
) -> Result<(), MuffinError> {
    let mut resume = false;
    if checkpoint.exists() {
        let mut ckpt = SearchCheckpoint::load(checkpoint, fingerprint)?;
        if round > 0 && ckpt.episode < end && ckpt.exchanges_applied < round {
            apply_elite_exchange(search, &mut ckpt, elites, round)?;
            ckpt.save(checkpoint)?;
        }
        if ckpt.episode >= end {
            // This round's segment already completed (fleet resume).
            return Ok(());
        }
        resume = true;
    }
    let opts = PersistenceOptions {
        checkpoint: Some(checkpoint.to_path_buf()),
        checkpoint_every: 0,
        resume,
        eval_cache: Some(input_cache.to_path_buf()),
        eval_cache_shared: true,
        eval_cache_read_only: true,
        halt_after: (end < island_episodes).then_some(end),
    };
    let mut rng = Rng64::seed(search_seed);
    match search.run_persistent(&mut rng, &WorkerPool::new(sharded.island_workers), &opts) {
        // Non-final rounds halt at the boundary by design; the final
        // round returns the island outcome, which the reduce step
        // reconstructs from the checkpoint instead.
        Ok(_) => Ok(()),
        Err(MuffinError::Halted { .. }) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Nudges an island's checkpointed policy toward the fleet's elites: a
/// throwaway controller imports the checkpoint state, replays each elite
/// teacher-forced, applies one batched REINFORCE update at the elites'
/// observed rewards, and exports the state back. `exchanges_applied` is
/// bumped in the same checkpoint write, so a crash after the save can
/// never replay the exchange.
fn apply_elite_exchange(
    search: &MuffinSearch,
    ckpt: &mut SearchCheckpoint,
    elites: &[EpisodeRecord],
    round: u32,
) -> Result<(), MuffinError> {
    if !elites.is_empty() {
        let mut controller = RnnController::new(
            search.space(),
            search.config().controller,
            &mut Rng64::seed(0),
        );
        controller.import_state(ckpt.controller.clone())?;
        let batch: Vec<(SampledEpisode, f32)> = elites
            .iter()
            .map(|e| controller.replay(&e.actions).map(|ep| (ep, e.reward)))
            .collect::<Result<_, _>>()?;
        controller.update_batch(&batch);
        ckpt.controller = controller.export_state();
    }
    ckpt.exchanges_applied = round;
    Ok(())
}

/// The fleet-wide elite set at a barrier: distinct finite-reward records
/// (first writer wins per action vector, islands in index order), ranked
/// by reward descending under `total_cmp` with action-vector ascending as
/// the tie break, truncated to `count`.
fn select_elites(checkpoints: &[SearchCheckpoint], count: usize) -> Vec<EpisodeRecord> {
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let mut pool: Vec<EpisodeRecord> = Vec::new();
    for ckpt in checkpoints {
        for record in &ckpt.history {
            if record.reward.is_finite() && seen.insert(record.actions.clone()) {
                pool.push(record.clone());
            }
        }
    }
    pool.sort_by(|a, b| {
        b.reward
            .total_cmp(&a.reward)
            .then_with(|| a.actions.cmp(&b.actions))
    });
    pool.truncate(count);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(island: usize, episode: u32, reward: f32) -> EpisodeRecord {
        EpisodeRecord {
            episode,
            actions: vec![island, episode as usize],
            model_names: vec!["m".into()],
            head_desc: "h".into(),
            accuracy: 0.5,
            unfairness: vec![0.1],
            reward,
            head_params: 1,
            total_params: 2,
            head_seed: 9,
            first_seen: episode,
        }
    }

    #[test]
    fn merge_is_independent_of_shard_order() {
        let shard = |i: usize| {
            (
                i,
                vec![record(i, 0, i as f32), record(i, 1, 10.0 - i as f32)],
            )
        };
        let sorted = merge_shard_histories(vec![shard(0), shard(1), shard(2)], vec!["age".into()])
            .expect("merge");
        let reversed =
            merge_shard_histories(vec![shard(2), shard(1), shard(0)], vec!["age".into()])
                .expect("merge");
        let shuffled =
            merge_shard_histories(vec![shard(1), shard(2), shard(0)], vec!["age".into()])
                .expect("merge");
        let json = |o: &SearchOutcome| muffin_json::to_string(o);
        assert_eq!(json(&sorted), json(&reversed));
        assert_eq!(json(&sorted), json(&shuffled));
        // Episodes renumbered globally, best is the strict maximum.
        assert_eq!(
            sorted.history.iter().map(|r| r.episode).collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
        assert_eq!(sorted.best_by_reward, 1); // island 0 episode 1, reward 10
    }

    #[test]
    fn merge_recomputes_first_seen_globally() {
        let mut duplicate = record(0, 0, 1.0);
        duplicate.actions = vec![7, 7];
        let mut later = duplicate.clone();
        later.episode = 1;
        let merged = merge_shard_histories(
            vec![(1, vec![later]), (0, vec![duplicate])],
            vec!["age".into()],
        )
        .expect("merge");
        assert_eq!(merged.history[0].first_seen, 0);
        assert_eq!(merged.history[1].first_seen, 0, "same actions, later shard");
    }

    #[test]
    fn merge_rejects_duplicates_and_empty_input() {
        assert!(merge_shard_histories(Vec::new(), vec![]).is_err());
        assert!(merge_shard_histories(vec![(0, vec![]), (1, vec![])], vec![]).is_err());
        let dup = vec![(3, vec![record(3, 0, 1.0)]), (3, vec![record(3, 0, 1.0)])];
        assert!(merge_shard_histories(dup, vec![]).is_err());
    }

    #[test]
    fn elite_selection_is_total_ordered_and_distinct() {
        let fp = {
            let config = crate::SearchConfig::fast(&["age"]);
            let space = crate::SearchSpace::paper_default(3);
            SearchFingerprint::new(
                [0, 1, 2, 3],
                &config,
                &space,
                "pool",
                muffin_models::PoolManifest::default(),
                "data",
            )
        };
        let mut throwaway = RnnController::new(
            crate::SearchSpace::paper_default(3),
            crate::ControllerConfig::default(),
            &mut Rng64::seed(1),
        );
        let controller_state = throwaway.export_state();
        let ckpt = |history: Vec<EpisodeRecord>| SearchCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: fp.clone(),
            target_episodes: 4,
            episode: history.len() as u32,
            rng_state: [1, 2, 3, 4],
            seed_stream_seed: 5,
            controller: controller_state.clone(),
            history,
            cache: vec![],
            exchanges_applied: 0,
        };
        let mut nan = record(0, 2, f32::NAN);
        nan.actions = vec![9, 9];
        let a = ckpt(vec![record(0, 0, 1.0), record(0, 1, 5.0), nan]);
        // Island 1 re-evaluated island 0's [0, 0] candidate: distinctness
        // keeps the island-0 copy.
        let mut dup = record(0, 0, 1.0);
        dup.episode = 3;
        let b = ckpt(vec![dup, record(1, 1, 3.0)]);
        let elites = select_elites(&[a, b], 2);
        assert_eq!(elites.len(), 2);
        assert_eq!(elites[0].reward, 5.0);
        assert_eq!(elites[1].reward, 3.0);
        let top = select_elites(&[], 2);
        assert!(top.is_empty());
    }

    #[test]
    fn sharded_config_validates() {
        assert!(ShardedConfig::default().validate().is_ok());
        let bad = ShardedConfig {
            islands: 0,
            ..ShardedConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ShardedConfig {
            shards: 0,
            ..ShardedConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ShardedConfig {
            screen_budget: 4,
            screen_keep: 1.5,
            ..ShardedConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rung_budget_allocation_feeds_the_screen() {
        // The screen's budget split: geometric, conserving, non-increasing.
        assert_eq!(rung_budgets(6, 2, 0.5), vec![4, 2]);
        assert_eq!(rung_budgets(0, 3, 0.5).iter().sum::<u32>(), 0);
        assert_eq!(rung_budgets(7, 3, 0.5).iter().sum::<u32>(), 7);
    }
}
