use muffin_models::ModelPool;
use muffin_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Per-model cached body outputs on one fixed feature matrix.
#[derive(Debug)]
struct BodyOutput {
    probs: Matrix,
    preds: Vec<usize>,
}

/// Lazily computed, shareable cache of frozen-body outputs on one dataset
/// split.
///
/// Muffin's pool models are frozen: their probabilities and predictions on
/// a fixed feature matrix never change, so each (model × split) forward
/// pass needs to run **once** per search, not once per candidate. The cache
/// holds one slot per pool model; a slot is filled on first access (a
/// *miss*, counted) and every later access returns the stored output (a
/// *hit*). Slots are [`OnceLock`]s, so a cache shared by reference across
/// search workers computes each forward exactly once regardless of
/// scheduling — hit/miss totals are deterministic for every worker count.
///
/// Probabilities and predictions are produced by a single backbone forward
/// via [`muffin_models::FrozenModel::outputs`], byte-identical to the
/// separate `predict_proba`/`predict` calls they replace.
///
/// # Example
///
/// ```
/// use muffin::BodyOutputCache;
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, ModelPool};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(3);
/// let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::resnet18()],
///     &BackboneConfig::fast(),
///     &mut rng,
/// );
/// let cache = BodyOutputCache::new(&pool, split.val.features().clone());
/// assert_eq!(cache.misses(), 0);
/// let preds = cache.predictions(0).to_vec();
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(preds, pool.get(0).unwrap().predict(split.val.features()));
/// assert_eq!(cache.predictions(0), preds); // second access: a hit
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug)]
pub struct BodyOutputCache<'p> {
    pool: &'p ModelPool,
    features: Matrix,
    slots: Vec<OnceLock<BodyOutput>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'p> BodyOutputCache<'p> {
    /// Creates an empty cache over `pool` for the given feature matrix.
    /// No forward pass runs until a slot is first accessed.
    pub fn new(pool: &'p ModelPool, features: Matrix) -> Self {
        let slots = (0..pool.len()).map(|_| OnceLock::new()).collect();
        Self {
            pool,
            features,
            slots,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The feature matrix all cached outputs are computed on.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Number of pool models the cache holds a slot for.
    pub fn pool_len(&self) -> usize {
        self.slots.len()
    }

    /// Number of cache accesses that found an already-computed slot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache accesses that computed a slot (at most one per
    /// pool model over the cache's lifetime).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn slot(&self, model: usize) -> &BodyOutput {
        let lock = self.slots.get(model).unwrap_or_else(|| {
            panic!(
                "model index {model} out of range for pool of {}",
                self.slots.len()
            )
        });
        if let Some(out) = lock.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return out;
        }
        let mut computed = false;
        let out = lock.get_or_init(|| {
            computed = true;
            let (probs, preds) = self
                .pool
                .get(model)
                .expect("index validated against pool length")
                .outputs(&self.features);
            BodyOutput { probs, preds }
        });
        // If another thread won the init race, this access still served a
        // cached value: count it as a hit so misses always equal the number
        // of forward passes actually run.
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Cached class probabilities of pool model `model` on the cache's
    /// features (computing them on first access).
    ///
    /// # Panics
    ///
    /// Panics if `model` is out of range for the pool.
    pub fn probs(&self, model: usize) -> &Matrix {
        &self.slot(model).probs
    }

    /// Cached hard predictions of pool model `model` (computing them on
    /// first access). Identical to `FrozenModel::predict` on the same
    /// features.
    ///
    /// # Panics
    ///
    /// Panics if `model` is out of range for the pool.
    pub fn predictions(&self, model: usize) -> &[usize] {
        &self.slot(model).preds
    }

    /// Concatenated cached probabilities for the given body — the muffin
    /// head's input representation, identical to
    /// [`crate::FusingStructure::head_inputs`] on the same features.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for the pool.
    pub fn head_inputs(&self, model_indices: &[usize]) -> Matrix {
        let probs: Vec<&Matrix> = model_indices.iter().map(|&i| self.probs(i)).collect();
        Matrix::hcat(&probs).expect("equal row counts by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::IsicLike;
    use muffin_models::{Architecture, BackboneConfig};
    use muffin_tensor::Rng64;

    fn setup() -> (ModelPool, muffin_data::DatasetSplit) {
        let mut rng = Rng64::seed(60);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::densenet121()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        (pool, split)
    }

    #[test]
    fn cached_outputs_match_direct_model_calls_bit_for_bit() {
        let (pool, split) = setup();
        let cache = BodyOutputCache::new(&pool, split.val.features().clone());
        for i in 0..pool.len() {
            let model = pool.get(i).unwrap();
            assert_eq!(cache.predictions(i), model.predict(split.val.features()));
            let direct = model.predict_proba(split.val.features());
            for (x, y) in cache
                .probs(i)
                .iter_rows()
                .flatten()
                .zip(direct.iter_rows().flatten())
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn each_model_is_computed_exactly_once() {
        let (pool, split) = setup();
        let cache = BodyOutputCache::new(&pool, split.val.features().clone());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        cache.probs(0);
        cache.predictions(0);
        cache.probs(0);
        cache.probs(1);
        assert_eq!(cache.misses(), 2, "one forward per model");
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn head_inputs_match_hcat_of_probabilities() {
        let (pool, split) = setup();
        let cache = BodyOutputCache::new(&pool, split.val.features().clone());
        let inputs = cache.head_inputs(&[1, 0]);
        let expect = Matrix::hcat(&[cache.probs(1), cache.probs(0)]).unwrap();
        assert_eq!(inputs, expect);
        assert_eq!(inputs.cols(), 2 * pool.get(0).unwrap().num_classes());
    }

    #[test]
    fn shared_across_threads_computes_once() {
        let (pool, split) = setup();
        let cache = BodyOutputCache::new(&pool, split.val.features().clone());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..pool.len() {
                        cache.predictions(i);
                    }
                });
            }
        });
        assert_eq!(cache.misses(), pool.len() as u64, "one forward per model");
        assert_eq!(
            cache.hits() + cache.misses(),
            4 * pool.len() as u64,
            "every access accounted for"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_model_panics() {
        let (pool, split) = setup();
        let cache = BodyOutputCache::new(&pool, split.val.features().clone());
        cache.probs(pool.len());
    }
}
