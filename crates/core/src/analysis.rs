//! Agreement/disagreement analysis between paired models (paper
//! Observation 3, Figure 3 and Figure 6).

use muffin_data::{AttributeId, Dataset};

/// Probabilities of the four correctness patterns of a model pair on a set
/// of samples, following the paper's Figure 3 notation:
///
/// * `00` — both wrong, `01` — only the first model right,
/// * `10` — only the second model right, `11` — both right.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisagreementBreakdown {
    /// P(both models wrong).
    pub both_wrong: f32,
    /// P(first right, second wrong).
    pub first_only: f32,
    /// P(first wrong, second right).
    pub second_only: f32,
    /// P(both right).
    pub both_right: f32,
    /// Number of samples analysed.
    pub count: usize,
}

muffin_json::impl_json!(struct DisagreementBreakdown { both_wrong, first_only, second_only, both_right, count });

impl DisagreementBreakdown {
    /// Computes the breakdown over the samples selected by `indices`
    /// (all samples when `indices` is `None`).
    ///
    /// # Panics
    ///
    /// Panics if prediction lengths differ from `labels`, or an index is
    /// out of bounds.
    pub fn of(
        preds_a: &[usize],
        preds_b: &[usize],
        labels: &[usize],
        indices: Option<&[usize]>,
    ) -> Self {
        assert_eq!(preds_a.len(), labels.len(), "first predictions/labels mismatch");
        assert_eq!(preds_b.len(), labels.len(), "second predictions/labels mismatch");
        let all: Vec<usize>;
        let selected = match indices {
            Some(idx) => idx,
            None => {
                all = (0..labels.len()).collect();
                &all
            }
        };
        let mut counts = [0usize; 4];
        for &i in selected {
            let a_ok = preds_a[i] == labels[i];
            let b_ok = preds_b[i] == labels[i];
            counts[usize::from(a_ok) * 2 + usize::from(b_ok)] += 1;
        }
        let n = selected.len().max(1) as f32;
        Self {
            both_wrong: counts[0] as f32 / n,
            second_only: counts[1] as f32 / n,
            first_only: counts[2] as f32 / n,
            both_right: counts[3] as f32 / n,
            count: selected.len(),
        }
    }

    /// Probability that the two models disagree in correctness
    /// (`01 + 10`) — the paper reports 15.93% for R18 + optimised D121.
    pub fn disagreement(&self) -> f32 {
        self.first_only + self.second_only
    }

    /// Accuracy of an oracle that picks whichever model is right
    /// (`01 + 10 + 11`) — the headroom fusing can exploit.
    pub fn oracle_accuracy(&self) -> f32 {
        1.0 - self.both_wrong
    }
}

/// Where a fused model's correct answers and errors come from, relative to
/// its paired models (the paper's Figure 6(c) bar composition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionComposition {
    /// Fused-correct where both paired models were right.
    pub correct_both: f32,
    /// Fused-correct where only the first paired model was right.
    pub correct_first_only: f32,
    /// Fused-correct where only the second paired model was right.
    pub correct_second_only: f32,
    /// Fused-correct where neither paired model was right.
    pub correct_neither: f32,
    /// Fused-wrong despite both paired models being right.
    pub error_both: f32,
    /// Fused-wrong where only the first paired model was right.
    pub error_first_only: f32,
    /// Fused-wrong where only the second paired model was right.
    pub error_second_only: f32,
    /// Fused-wrong where neither paired model was right.
    pub error_neither: f32,
    /// Number of samples analysed.
    pub count: usize,
}

muffin_json::impl_json!(struct FusionComposition {
    correct_both, correct_first_only, correct_second_only, correct_neither,
    error_both, error_first_only, error_second_only, error_neither, count,
});

impl FusionComposition {
    /// Computes the composition over the samples selected by `indices`
    /// (all samples when `None`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or out-of-bounds indices.
    pub fn of(
        fused: &[usize],
        preds_a: &[usize],
        preds_b: &[usize],
        labels: &[usize],
        indices: Option<&[usize]>,
    ) -> Self {
        assert_eq!(fused.len(), labels.len(), "fused predictions/labels mismatch");
        assert_eq!(preds_a.len(), labels.len(), "first predictions/labels mismatch");
        assert_eq!(preds_b.len(), labels.len(), "second predictions/labels mismatch");
        let all: Vec<usize>;
        let selected = match indices {
            Some(idx) => idx,
            None => {
                all = (0..labels.len()).collect();
                &all
            }
        };
        let mut counts = [0usize; 8];
        for &i in selected {
            let f_ok = fused[i] == labels[i];
            let a_ok = preds_a[i] == labels[i];
            let b_ok = preds_b[i] == labels[i];
            let bucket = usize::from(f_ok) * 4 + usize::from(a_ok) * 2 + usize::from(b_ok);
            counts[bucket] += 1;
        }
        let n = selected.len().max(1) as f32;
        Self {
            error_neither: counts[0] as f32 / n,
            error_second_only: counts[1] as f32 / n,
            error_first_only: counts[2] as f32 / n,
            error_both: counts[3] as f32 / n,
            correct_neither: counts[4] as f32 / n,
            correct_second_only: counts[5] as f32 / n,
            correct_first_only: counts[6] as f32 / n,
            correct_both: counts[7] as f32 / n,
            count: selected.len(),
        }
    }

    /// The fused model's accuracy on the analysed samples.
    pub fn fused_accuracy(&self) -> f32 {
        self.correct_both + self.correct_first_only + self.correct_second_only + self.correct_neither
    }

    /// Fraction of recoverable answers (at least one paired model right)
    /// that the fused model actually kept — 1.0 means "fully leveraged",
    /// the paper's lateral-torso case.
    pub fn leverage(&self) -> f32 {
        let kept = self.correct_both + self.correct_first_only + self.correct_second_only;
        let available = kept + self.error_both + self.error_first_only + self.error_second_only;
        if available <= 0.0 {
            0.0
        } else {
            kept / available
        }
    }
}

/// Per-group accuracies of several prediction vectors on one attribute —
/// the rows of the paper's Figure 6(a)/(b) and Figure 8 tables.
///
/// Returns, for each group of `attr`: `(group, count, Vec<accuracy>)` with
/// one accuracy per prediction vector, in input order.
///
/// # Panics
///
/// Panics if any prediction vector's length differs from the dataset.
pub fn per_group_accuracy_table(
    predictions: &[&[usize]],
    dataset: &Dataset,
    attr: AttributeId,
) -> Vec<(u16, usize, Vec<f32>)> {
    let num_groups = dataset.schema().get(attr).expect("attribute in range").num_groups();
    let groups = dataset.groups(attr);
    let labels = dataset.labels();
    for preds in predictions {
        assert_eq!(preds.len(), labels.len(), "predictions/dataset mismatch");
    }
    (0..num_groups as u16)
        .map(|g| {
            let members: Vec<usize> =
                groups.iter().enumerate().filter(|(_, &gg)| gg == g).map(|(i, _)| i).collect();
            let accs = predictions
                .iter()
                .map(|preds| {
                    if members.is_empty() {
                        0.0
                    } else {
                        members.iter().filter(|&&i| preds[i] == labels[i]).count() as f32
                            / members.len() as f32
                    }
                })
                .collect();
            (g, members.len(), accs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_probabilities_sum_to_one() {
        let labels = [0, 0, 0, 0];
        let a = [0, 0, 1, 1];
        let b = [0, 1, 0, 1];
        let bd = DisagreementBreakdown::of(&a, &b, &labels, None);
        let total = bd.both_wrong + bd.first_only + bd.second_only + bd.both_right;
        assert!((total - 1.0).abs() < 1e-6);
        assert_eq!(bd.count, 4);
        // a right on 0,1; b right on 0,2.
        assert!((bd.both_right - 0.25).abs() < 1e-6);
        assert!((bd.first_only - 0.25).abs() < 1e-6);
        assert!((bd.second_only - 0.25).abs() < 1e-6);
        assert!((bd.both_wrong - 0.25).abs() < 1e-6);
    }

    #[test]
    fn oracle_accuracy_counts_any_correct() {
        let labels = [0, 0];
        let a = [0, 1];
        let b = [1, 0];
        let bd = DisagreementBreakdown::of(&a, &b, &labels, None);
        assert!((bd.oracle_accuracy() - 1.0).abs() < 1e-6);
        assert!((bd.disagreement() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_respects_index_subset() {
        let labels = [0, 0, 0];
        let a = [0, 1, 1];
        let b = [0, 1, 1];
        let bd = DisagreementBreakdown::of(&a, &b, &labels, Some(&[1, 2]));
        assert!((bd.both_wrong - 1.0).abs() < 1e-6);
        assert_eq!(bd.count, 2);
    }

    #[test]
    fn composition_buckets_are_exhaustive() {
        let labels = [0; 8];
        // Enumerate all 8 (fused, a, b) correctness combinations.
        let fused = [0, 0, 0, 0, 1, 1, 1, 1];
        let a = [0, 0, 1, 1, 0, 0, 1, 1];
        let b = [0, 1, 0, 1, 0, 1, 0, 1];
        let comp = FusionComposition::of(&fused, &a, &b, &labels, None);
        let total = comp.correct_both
            + comp.correct_first_only
            + comp.correct_second_only
            + comp.correct_neither
            + comp.error_both
            + comp.error_first_only
            + comp.error_second_only
            + comp.error_neither;
        assert!((total - 1.0).abs() < 1e-6);
        assert!((comp.fused_accuracy() - 0.5).abs() < 1e-6);
        assert!((comp.correct_both - 0.125).abs() < 1e-6);
        assert!((comp.error_both - 0.125).abs() < 1e-6);
    }

    #[test]
    fn full_leverage_means_no_recoverable_errors() {
        let labels = [0; 4];
        let a = [0, 0, 1, 1];
        let b = [0, 1, 0, 1];
        // Fused keeps every recoverable answer.
        let fused = [0, 0, 0, 1];
        let comp = FusionComposition::of(&fused, &a, &b, &labels, None);
        assert!((comp.leverage() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn partial_leverage_counts_lost_answers() {
        let labels = [0; 2];
        let a = [0, 0];
        let b = [1, 0];
        let fused = [1, 0]; // loses the first sample that a had right
        let comp = FusionComposition::of(&fused, &a, &b, &labels, None);
        assert!((comp.leverage() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn group_table_reports_each_group_once() {
        use muffin_data::{AttributeSchema, SensitiveAttribute};
        use muffin_tensor::Matrix;
        let ds = Dataset::new(
            Matrix::zeros(4, 1),
            vec![0, 0, 1, 1],
            2,
            AttributeSchema::new(vec![SensitiveAttribute::new("a", &["g0", "g1"])]),
            vec![vec![0, 1, 0, 1]],
        );
        let preds_a = vec![0usize, 0, 1, 0];
        let preds_b = vec![0usize, 1, 0, 1];
        let table =
            per_group_accuracy_table(&[&preds_a, &preds_b], &ds, AttributeId::new(0));
        assert_eq!(table.len(), 2);
        let (g0, n0, accs0) = &table[0];
        assert_eq!((*g0, *n0), (0, 2));
        assert!((accs0[0] - 1.0).abs() < 1e-6); // preds_a right on samples 0,2
        assert!((accs0[1] - 0.5).abs() < 1e-6);
    }
}
