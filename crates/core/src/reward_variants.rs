//! Alternative multi-objective reward formulations.
//!
//! The paper's Eq. 3 divides accuracy by each unfairness score. That choice
//! has consequences — it steepens the fairness gradient as `U` shrinks and
//! couples the accuracy and fairness scales — so `DESIGN.md` calls out a
//! reward-shape ablation. [`RewardKind`] provides the paper's reward plus
//! two standard alternatives used by the ablation benches.

use crate::RewardConfig;
use muffin_models::ModelEvaluation;

/// The shape of the multi-objective reward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RewardKind {
    /// The paper's Eq. 3: `Σ_k accuracy / max(U_k, ε)`.
    PaperRatio,
    /// Linear scalarisation: `accuracy − λ · Σ_k U_k`.
    LinearPenalty {
        /// Weight of the total unfairness penalty.
        lambda: f32,
    },
    /// Worst-attribute focus: `accuracy / max(max_k U_k, ε)` — optimises
    /// the most unfair attribute first.
    WorstAttribute,
    /// Intersectional-cell focus: Eq. 3 with the marginal `U_k` replaced by
    /// the **joint-cell** unfairness of every unordered target-attribute
    /// pair, `Σ_{i<j} accuracy / max(U_{i×j}, ε)`. Marginally-fair
    /// candidates that misread one joint cell (e.g. `old×female`) score
    /// poorly here while the paper ratio cannot see the difference. With
    /// fewer than two target attributes it degenerates to the paper ratio.
    IntersectionalRatio,
}

muffin_json::impl_json!(tagged RewardKind { PaperRatio {}, LinearPenalty { lambda }, WorstAttribute {}, IntersectionalRatio {} });

impl RewardKind {
    /// Evaluates the reward for `evaluation` over the listed attributes.
    ///
    /// Attributes missing from the evaluation contribute nothing (paper
    /// ratio and linear penalty) or are skipped (worst attribute).
    pub fn evaluate(
        self,
        evaluation: &ModelEvaluation,
        target_attributes: &[&str],
        config: RewardConfig,
    ) -> f32 {
        let scores: Vec<f32> = target_attributes
            .iter()
            .filter_map(|name| evaluation.attribute(name))
            .map(|a| a.unfairness)
            .collect();
        match self {
            RewardKind::PaperRatio => scores
                .iter()
                .map(|&u| evaluation.accuracy / u.max(config.epsilon))
                .sum(),
            RewardKind::LinearPenalty { lambda } => {
                evaluation.accuracy - lambda * scores.iter().sum::<f32>()
            }
            RewardKind::WorstAttribute => {
                let worst = scores.iter().copied().fold(0.0f32, f32::max);
                evaluation.accuracy / worst.max(config.epsilon)
            }
            RewardKind::IntersectionalRatio => {
                let selected: Vec<usize> = evaluation
                    .attributes
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| target_attributes.contains(&a.name.as_str()))
                    .map(|(i, _)| i)
                    .collect();
                if selected.len() < 2 {
                    return RewardKind::PaperRatio.evaluate(evaluation, target_attributes, config);
                }
                evaluation
                    .intersections
                    .iter()
                    .filter(|ix| selected.contains(&ix.attr_a) && selected.contains(&ix.attr_b))
                    .map(|ix| evaluation.accuracy / ix.unfairness.max(config.epsilon))
                    .sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::{AttributeSchema, Dataset, SensitiveAttribute};
    use muffin_tensor::Matrix;

    fn eval(preds: &[usize]) -> ModelEvaluation {
        let ds = Dataset::new(
            Matrix::zeros(8, 1),
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            2,
            AttributeSchema::new(vec![
                SensitiveAttribute::new("a", &["g0", "g1"]),
                SensitiveAttribute::new("b", &["g0", "g1"]),
            ]),
            vec![vec![0, 0, 1, 1, 0, 0, 1, 1], vec![0, 1, 0, 1, 0, 1, 0, 1]],
        );
        ModelEvaluation::of(preds, &ds, "m".into())
    }

    #[test]
    fn paper_ratio_matches_multi_fairness_reward() {
        let e = eval(&[0, 0, 1, 1, 1, 1, 1, 1]);
        let cfg = RewardConfig::default();
        let via_kind = RewardKind::PaperRatio.evaluate(&e, &["a", "b"], cfg);
        let direct = crate::multi_fairness_reward(&e, &["a", "b"], cfg);
        assert!((via_kind - direct).abs() < 1e-6);
    }

    #[test]
    fn linear_penalty_decreases_with_unfairness() {
        let fair = eval(&[0, 1, 0, 0, 1, 1, 0, 1]); // errors spread evenly
        let unfair = eval(&[0, 0, 1, 1, 1, 1, 1, 1]); // errors in a-group 1
        let kind = RewardKind::LinearPenalty { lambda: 0.5 };
        let cfg = RewardConfig::default();
        assert!(
            kind.evaluate(&fair, &["a", "b"], cfg) > kind.evaluate(&unfair, &["a", "b"], cfg)
        );
    }

    #[test]
    fn worst_attribute_focuses_on_the_max() {
        let e = eval(&[0, 0, 1, 1, 1, 1, 1, 1]); // U_a = 0.5, U_b = 0
        let cfg = RewardConfig { epsilon: 0.05 };
        let r = RewardKind::WorstAttribute.evaluate(&e, &["a", "b"], cfg);
        // accuracy 0.75 / worst U 0.5.
        assert!((r - 1.5).abs() < 1e-5);
    }

    #[test]
    fn missing_attributes_do_not_contribute() {
        let e = eval(&[0; 8]);
        let cfg = RewardConfig::default();
        assert_eq!(RewardKind::PaperRatio.evaluate(&e, &["zzz"], cfg), 0.0);
        let lp = RewardKind::LinearPenalty { lambda: 1.0 }.evaluate(&e, &["zzz"], cfg);
        assert!((lp - e.accuracy).abs() < 1e-6);
    }

    #[test]
    fn intersectional_ratio_matches_hand_computed_oracle() {
        // Labels all 0 on a 2×2 joint layout; predictions wrong exactly on
        // the (1,1) cell. Marginals are even (each group 50% right) but
        // joint U∩ = 4·(1/2) = 2, so the reward is accuracy / U∩.
        let ds = Dataset::new(
            Matrix::zeros(4, 1),
            vec![0, 0, 0, 0],
            2,
            AttributeSchema::new(vec![
                SensitiveAttribute::new("a", &["g0", "g1"]),
                SensitiveAttribute::new("b", &["g0", "g1"]),
            ]),
            vec![vec![0, 0, 1, 1], vec![0, 1, 0, 1]],
        );
        let e = ModelEvaluation::of(&[0, 1, 1, 0], &ds, "m".into());
        let cfg = RewardConfig { epsilon: 0.05 };
        let r = RewardKind::IntersectionalRatio.evaluate(&e, &["a", "b"], cfg);
        assert!((r - 0.5 / 2.0).abs() < 1e-6, "got {r}");
        // The paper ratio is blind to the hidden cell: marginal U ≈ 0, so
        // it saturates at 2 · accuracy/ε — ranking this candidate *high*.
        let paper = RewardKind::PaperRatio.evaluate(&e, &["a", "b"], cfg);
        assert!(paper > r * 10.0, "paper {paper} vs intersectional {r}");
    }

    #[test]
    fn intersectional_ratio_degenerates_to_paper_on_single_attribute() {
        let e = eval(&[0, 0, 1, 1, 1, 1, 1, 1]);
        let cfg = RewardConfig::default();
        let single = RewardKind::IntersectionalRatio.evaluate(&e, &["a"], cfg);
        let paper = RewardKind::PaperRatio.evaluate(&e, &["a"], cfg);
        assert!((single - paper).abs() < 1e-6);
    }

    #[test]
    fn intersectional_ratio_round_trips_json() {
        let text = muffin_json::to_string(&RewardKind::IntersectionalRatio);
        assert_eq!(text, r#"{"IntersectionalRatio":{}}"#);
        let back: RewardKind = muffin_json::from_str(&text).expect("round trip");
        assert_eq!(back, RewardKind::IntersectionalRatio);
    }
}
