use crate::{MuffinError, PrivilegeMap};
use muffin_data::{AttributeId, Dataset};

/// The fairness proxy dataset (paper component ② and Algorithm 1).
///
/// The muffin head is trained **only on unprivileged-group samples**, each
/// weighted by its group's Algorithm-1 weight:
///
/// 1. every image receives `w[img] = ` the number of unprivileged groups
///    (across all unfair attributes) it belongs to;
/// 2. every unprivileged group receives
///    `w[g] = Σ_{img ∈ g} w[img] / N_g` — the mean image weight of its
///    members;
/// 3. during training each sample contributes once **per unprivileged
///    membership**, weighted by that group's `w[g]`; equivalently (and
///    how this implementation realises it) a sample's training weight is
///    the **sum** of `w[g]` over the unprivileged groups it belongs to.
///
/// A sample in the overlap of several unfair attributes therefore pulls
/// roughly twice the gradient of a singly-unprivileged one — the paper's
/// holistic multi-attribute optimisation ("we associate the data with a
/// higher weight if it appears in the groups under multiple unfair
/// attributes").
///
/// # Example
///
/// ```
/// use muffin::{PrivilegeMap, ProxyDataset};
/// use muffin_data::IsicLike;
/// use muffin_tensor::Rng64;
///
/// # fn main() -> Result<(), muffin::MuffinError> {
/// let ds = IsicLike::small().generate(&mut Rng64::seed(1));
/// let mut map = PrivilegeMap::new();
/// map.set(ds.schema().by_name("age").unwrap(), vec![4, 5]);
/// map.set(ds.schema().by_name("site").unwrap(), vec![5, 6, 7, 8]);
/// let proxy = ProxyDataset::build(&ds, &map)?;
/// assert!(proxy.len() < ds.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProxyDataset {
    indices: Vec<usize>,
    weights: Vec<f32>,
    group_weights: Vec<(usize, u16, f32)>,
}

muffin_json::impl_json!(struct ProxyDataset { indices, weights, group_weights });

impl ProxyDataset {
    /// Runs Algorithm 1 over `dataset` and assembles the proxy dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::EmptyProxy`] if no sample falls in any
    /// unprivileged group, and [`MuffinError::InvalidConfig`] if `privilege`
    /// targets no attribute.
    pub fn build(dataset: &Dataset, privilege: &PrivilegeMap) -> Result<Self, MuffinError> {
        if privilege.is_empty() {
            return Err(MuffinError::InvalidConfig(
                "privilege map targets no attribute".into(),
            ));
        }

        // Algorithm 1, first loop: w[img] += 1 per unprivileged membership.
        let mut image_weights = vec![0u32; dataset.len()];
        for attr in privilege.attributes() {
            let groups = dataset.groups(attr);
            for (i, &g) in groups.iter().enumerate() {
                if privilege.is_unprivileged(attr, g) {
                    image_weights[i] += 1;
                }
            }
        }

        // Algorithm 1, second loop: w[g] = mean image weight per group.
        let mut group_weights: Vec<(usize, u16, f32)> = Vec::new();
        for attr in privilege.attributes() {
            let groups = dataset.groups(attr);
            for &g in privilege.unprivileged_groups(attr) {
                let members: Vec<usize> = groups
                    .iter()
                    .enumerate()
                    .filter(|(_, &gg)| gg == g)
                    .map(|(i, _)| i)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let mean = members.iter().map(|&i| image_weights[i] as f32).sum::<f32>()
                    / members.len() as f32;
                group_weights.push((attr.index(), g, mean));
            }
        }

        // Proxy support: the union of unprivileged samples. Each sample
        // contributes once per unprivileged membership at that group's
        // weight, realised as a single entry with the summed weight.
        let mut indices = Vec::new();
        let mut weights = Vec::new();
        for (i, &image_weight) in image_weights.iter().enumerate() {
            if image_weight == 0 {
                continue;
            }
            let mut total = 0.0;
            for attr in privilege.attributes() {
                let g = dataset.groups(attr)[i];
                if privilege.is_unprivileged(attr, g) {
                    if let Some(&(_, _, w)) = group_weights
                        .iter()
                        .find(|&&(a, gg, _)| a == attr.index() && gg == g)
                    {
                        total += w;
                    }
                }
            }
            indices.push(i);
            weights.push(if total == 0.0 { 1.0 } else { total });
        }

        if indices.is_empty() {
            return Err(MuffinError::EmptyProxy);
        }
        Ok(Self { indices, weights, group_weights })
    }

    /// A proxy over the same support but with **uniform** weights — the
    /// "original dataset" arm of the paper's Figure 9(a) ablation.
    pub fn with_uniform_weights(&self) -> Self {
        Self {
            indices: self.indices.clone(),
            weights: vec![1.0; self.indices.len()],
            group_weights: self.group_weights.clone(),
        }
    }

    /// Builds a proxy directly from indices and weights (no Algorithm 1) —
    /// the escape hatch for custom weighting schemes and for restricting
    /// the support, e.g. to disagreement samples.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `indices` is empty.
    pub fn from_parts(indices: Vec<usize>, weights: Vec<f32>) -> Self {
        assert_eq!(indices.len(), weights.len(), "indices/weights mismatch");
        assert!(!indices.is_empty(), "proxy support must be non-empty");
        Self { indices, weights, group_weights: Vec::new() }
    }

    /// A proxy restricted to the samples on which the given prediction
    /// vectors disagree (evaluated on the *source* dataset's indexing).
    /// With consensus gating the head only ever decides these samples, so
    /// concentrating its training on them uses its capacity where it
    /// counts.
    ///
    /// Returns `None` if no proxy sample is a disagreement.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two prediction vectors are supplied or their
    /// lengths disagree.
    pub fn restricted_to_disagreements(&self, predictions: &[Vec<usize>]) -> Option<Self> {
        assert!(predictions.len() >= 2, "need at least two prediction vectors");
        let len = predictions[0].len();
        assert!(
            predictions.iter().all(|p| p.len() == len),
            "prediction vectors must have equal length"
        );
        let mut indices = Vec::new();
        let mut weights = Vec::new();
        for (&i, &w) in self.indices.iter().zip(&self.weights) {
            let first = predictions[0][i];
            if predictions.iter().any(|p| p[i] != first) {
                indices.push(i);
                weights.push(w);
            }
        }
        if indices.is_empty() {
            None
        } else {
            Some(Self { indices, weights, group_weights: self.group_weights.clone() })
        }
    }

    /// Number of proxy samples.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the proxy is empty (never true for a built proxy).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Indices into the source dataset.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Per-proxy-sample training weights, aligned with [`Self::indices`].
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Algorithm 1's per-group weights as `(attribute, group, weight)`.
    pub fn group_weights(&self) -> &[(usize, u16, f32)] {
        &self.group_weights
    }

    /// The weight of one group, if it was unprivileged.
    pub fn group_weight(&self, attr: AttributeId, group: u16) -> Option<f32> {
        self.group_weights
            .iter()
            .find(|&&(a, g, _)| a == attr.index() && g == group)
            .map(|&(_, _, w)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::{AttributeSchema, SensitiveAttribute};
    use muffin_tensor::{Matrix, Rng64};

    /// 8 samples, two attributes with two groups each.
    /// attr0 unprivileged group: 1 (samples 4..8)
    /// attr1 unprivileged group: 1 (samples 2,3,6,7)
    fn toy() -> (Dataset, PrivilegeMap) {
        let features = Matrix::zeros(8, 2);
        let labels = vec![0; 8];
        let schema = AttributeSchema::new(vec![
            SensitiveAttribute::new("a", &["p", "u"]),
            SensitiveAttribute::new("b", &["p", "u"]),
        ]);
        let groups = vec![
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            vec![0, 0, 1, 1, 0, 0, 1, 1],
        ];
        let ds = Dataset::new(features, labels, 2, schema, groups);
        let mut map = PrivilegeMap::new();
        map.set(AttributeId::new(0), vec![1]);
        map.set(AttributeId::new(1), vec![1]);
        (ds, map)
    }

    #[test]
    fn algorithm_one_image_weights_are_membership_counts() {
        let (ds, map) = toy();
        let proxy = ProxyDataset::build(&ds, &map).expect("proxy");
        // Support: samples 2..8 (sample 0,1 privileged in both).
        assert_eq!(proxy.indices(), &[2, 3, 4, 5, 6, 7]);
        // attr0 group1 members {4,5,6,7} have image weights {1,1,2,2} → mean 1.5.
        assert_eq!(proxy.group_weight(AttributeId::new(0), 1), Some(1.5));
        // attr1 group1 members {2,3,6,7} have image weights {1,1,2,2} → mean 1.5.
        assert_eq!(proxy.group_weight(AttributeId::new(1), 1), Some(1.5));
    }

    #[test]
    fn overlap_samples_weigh_double() {
        let (ds, map) = toy();
        let proxy = ProxyDataset::build(&ds, &map).expect("proxy");
        // Samples 2..6 belong to one unprivileged group (weight 1.5);
        // samples 6,7 belong to both (weight 1.5 + 1.5 = 3.0).
        for (&i, &w) in proxy.indices().iter().zip(proxy.weights()) {
            let expected = if i >= 6 { 3.0 } else { 1.5 };
            assert!((w - expected).abs() < 1e-6, "sample {i}: weight {w}");
        }
    }

    #[test]
    fn asymmetric_overlap_weights_heavier_group_more() {
        // attr0 unprivileged group fully contained in attr1's → its members
        // all have weight 2, so w[g0] = 2 > w[g1].
        let features = Matrix::zeros(6, 1);
        let labels = vec![0; 6];
        let schema = AttributeSchema::new(vec![
            SensitiveAttribute::new("a", &["p", "u"]),
            SensitiveAttribute::new("b", &["p", "u"]),
        ]);
        let groups = vec![
            vec![0, 0, 0, 0, 1, 1], // a: samples 4,5
            vec![0, 0, 1, 1, 1, 1], // b: samples 2..6 (superset)
        ];
        let ds = Dataset::new(features, labels, 2, schema, groups);
        let mut map = PrivilegeMap::new();
        map.set(AttributeId::new(0), vec![1]);
        map.set(AttributeId::new(1), vec![1]);
        let proxy = ProxyDataset::build(&ds, &map).expect("proxy");
        let wa = proxy.group_weight(AttributeId::new(0), 1).unwrap();
        let wb = proxy.group_weight(AttributeId::new(1), 1).unwrap();
        assert!((wa - 2.0).abs() < 1e-6);
        assert!((wb - 1.5).abs() < 1e-6);
        assert!(wa > wb, "the doubly-unprivileged group must weigh more");
    }

    #[test]
    fn empty_privilege_map_is_invalid() {
        let (ds, _) = toy();
        let err = ProxyDataset::build(&ds, &PrivilegeMap::new()).unwrap_err();
        assert!(matches!(err, MuffinError::InvalidConfig(_)));
    }

    #[test]
    fn no_unprivileged_samples_is_an_error() {
        let (ds, _) = toy();
        let mut map = PrivilegeMap::new();
        // Target a group that has no members... group ids must be in range,
        // so use an in-range group that nobody belongs to: impossible here;
        // instead target attribute 0 with empty set.
        map.set(AttributeId::new(0), vec![]);
        let err = ProxyDataset::build(&ds, &map).unwrap_err();
        assert_eq!(err, MuffinError::EmptyProxy);
    }

    #[test]
    fn uniform_variant_keeps_support() {
        let (ds, map) = toy();
        let proxy = ProxyDataset::build(&ds, &map).expect("proxy");
        let uniform = proxy.with_uniform_weights();
        assert_eq!(uniform.indices(), proxy.indices());
        assert!(uniform.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn realistic_dataset_builds_nonempty_proxy() {
        let ds = muffin_data::IsicLike::small().generate(&mut Rng64::seed(3));
        let mut map = PrivilegeMap::new();
        map.set(ds.schema().by_name("age").unwrap(), vec![4, 5]);
        map.set(ds.schema().by_name("site").unwrap(), vec![5, 6, 7, 8]);
        let proxy = ProxyDataset::build(&ds, &map).expect("proxy");
        assert!(proxy.len() > ds.len() / 10, "unprivileged union should be sizeable");
        assert!(proxy.len() < ds.len(), "proxy must exclude privileged-only samples");
        // Heavier weights exist because of age∩site overlap (correlation).
        let max = proxy.weights().iter().copied().fold(f32::MIN, f32::max);
        let min = proxy.weights().iter().copied().fold(f32::MAX, f32::min);
        assert!(max > min, "overlap should produce non-uniform weights");
    }
}
