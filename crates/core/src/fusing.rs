use crate::{MuffinError, ProxyDataset};
use muffin_data::Dataset;
use muffin_models::ModelPool;
use muffin_nn::{Activation, ClassifierTrainer, LossKind, LrSchedule, Mlp, MlpSpec};
use muffin_par::WorkerPool;
use muffin_tensor::{Matrix, Rng64};
use muffin_trace::Tracer;
use std::fmt;

/// Architecture of the muffin head: the MLP the controller searches over
/// (paper component ① — hidden widths like `[16, 18, 12, 8]` plus the
/// activation function).
///
/// # Example
///
/// ```
/// use muffin::HeadSpec;
/// use muffin_nn::Activation;
///
/// let spec = HeadSpec::new(vec![16, 18, 12, 8], Activation::Relu);
/// assert_eq!(spec.to_string(), "[16,18,12,8] relu");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadSpec {
    hidden: Vec<usize>,
    activation: Activation,
}

muffin_json::impl_json!(struct HeadSpec { hidden, activation });

impl HeadSpec {
    /// Creates a head spec from hidden widths and an activation.
    ///
    /// # Panics
    ///
    /// Panics if any width is zero.
    pub fn new(hidden: Vec<usize>, activation: Activation) -> Self {
        assert!(
            hidden.iter().all(|&h| h > 0),
            "head widths must be positive"
        );
        Self { hidden, activation }
    }

    /// Hidden layer widths.
    pub fn hidden(&self) -> &[usize] {
        &self.hidden
    }

    /// Hidden activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The MLP spec for a head with this shape.
    pub fn to_mlp_spec(&self, input_dim: usize, num_classes: usize) -> MlpSpec {
        MlpSpec::new(input_dim, &self.hidden, num_classes).with_activation(self.activation)
    }
}

impl fmt::Display for HeadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, h) in self.hidden.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{h}")?;
        }
        write!(f, "] {}", self.activation)
    }
}

/// Training configuration for the muffin head.
#[derive(Debug, Clone)]
pub struct HeadTrainConfig {
    /// Training epochs.
    pub epochs: u32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Loss — the paper's Eq. 2 weighted MSE by default.
    pub loss: LossKind,
}

muffin_json::impl_json!(struct HeadTrainConfig { epochs, batch_size, schedule, loss });

impl Default for HeadTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            batch_size: 64,
            schedule: LrSchedule::StepDecay {
                initial: 0.4,
                decay: 0.9,
                every: 12,
            },
            loss: LossKind::WeightedMse,
        }
    }
}

impl HeadTrainConfig {
    /// A fast configuration for tests (8 epochs).
    pub fn fast() -> Self {
        Self {
            epochs: 8,
            ..Self::default()
        }
    }
}

/// The paper's model-fusing structure: a "muffin body" of selected frozen
/// pool models whose output probabilities feed a trained "muffin head"
/// MLP.
///
/// At inference the structure applies **consensus gating**: when every
/// selected model predicts the same class the consensus stands (the paper:
/// "the proposed technique is not going to change the output if all models
/// reached consensus"); the head arbitrates only disagreements.
///
/// # Example
///
/// ```
/// use muffin::{FusingStructure, HeadSpec, HeadTrainConfig, PrivilegeMap, ProxyDataset};
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, ModelPool};
/// use muffin_nn::Activation;
/// use muffin_tensor::Rng64;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = Rng64::seed(11);
/// let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::resnet18(), Architecture::densenet121()],
///     &BackboneConfig::fast(),
///     &mut rng,
/// );
/// let mut map = PrivilegeMap::new();
/// map.set(split.train.schema().by_name("age").unwrap(), vec![4, 5]);
/// let proxy = ProxyDataset::build(&split.train, &map)?;
/// let mut fusing = FusingStructure::new(
///     vec![0, 1],
///     HeadSpec::new(vec![16, 8], Activation::Relu),
///     &pool,
///     &mut rng,
/// )?;
/// fusing.train_head(&pool, &split.train, &proxy, &HeadTrainConfig::fast(), &mut rng);
/// let preds = fusing.predict(&pool, split.test.features());
/// assert_eq!(preds.len(), split.test.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FusingStructure {
    model_indices: Vec<usize>,
    head_spec: HeadSpec,
    head: Mlp,
    num_classes: usize,
    consensus_gating: bool,
}

muffin_json::impl_json!(struct FusingStructure { model_indices, head_spec, head, num_classes, consensus_gating });

impl FusingStructure {
    /// Creates an untrained fusing structure selecting `model_indices` from
    /// `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::EmptyPool`] if no model is selected and
    /// [`MuffinError::InvalidConfig`] if an index is out of range or
    /// duplicated.
    pub fn new(
        model_indices: Vec<usize>,
        head_spec: HeadSpec,
        pool: &ModelPool,
        rng: &mut Rng64,
    ) -> Result<Self, MuffinError> {
        if model_indices.is_empty() {
            return Err(MuffinError::EmptyPool);
        }
        for &i in &model_indices {
            if i >= pool.len() {
                return Err(MuffinError::InvalidConfig(format!(
                    "model index {i} out of range for pool of {}",
                    pool.len()
                )));
            }
        }
        let mut seen = model_indices.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != model_indices.len() {
            return Err(MuffinError::InvalidConfig(
                "duplicate model selected".into(),
            ));
        }
        let num_classes = pool
            .get(model_indices[0])
            .expect("validated index")
            .num_classes();
        let input_dim = num_classes * model_indices.len();
        let head = Mlp::new(&head_spec.to_mlp_spec(input_dim, num_classes), rng);
        Ok(Self {
            model_indices,
            head_spec,
            head,
            num_classes,
            consensus_gating: true,
        })
    }

    /// Disables or enables consensus gating (ablation: the head then
    /// overrides even unanimous bodies).
    pub fn set_consensus_gating(&mut self, enabled: bool) {
        self.consensus_gating = enabled;
    }

    /// Whether consensus gating is active.
    pub fn consensus_gating(&self) -> bool {
        self.consensus_gating
    }

    /// Indices of the selected pool models (the muffin body).
    pub fn model_indices(&self) -> &[usize] {
        &self.model_indices
    }

    /// The head architecture.
    pub fn head_spec(&self) -> &HeadSpec {
        &self.head_spec
    }

    /// Trainable parameters in the head.
    pub fn head_param_count(&self) -> usize {
        self.head.param_count()
    }

    /// Total parameters including the (frozen) bodies' reported CNN sizes —
    /// the x-axis of the paper's Figure 9(b).
    pub fn total_reported_params(&self, pool: &ModelPool) -> u64 {
        let body: u64 = self
            .model_indices
            .iter()
            .filter_map(|&i| pool.get(i))
            .map(|m| m.reported_params())
            .sum();
        body + self.head_param_count() as u64
    }

    /// Concatenated body probabilities — the head's input representation.
    pub fn head_inputs(&self, pool: &ModelPool, features: &Matrix) -> Matrix {
        let probs: Vec<Matrix> = self
            .model_indices
            .iter()
            .map(|&i| {
                pool.get(i)
                    .expect("validated index")
                    .predict_proba(features)
            })
            .collect();
        let refs: Vec<&Matrix> = probs.iter().collect();
        Matrix::hcat(&refs).expect("equal row counts by construction")
    }

    /// Trains the head on the proxy dataset with the paper's Eq. 2 loss
    /// (or the configured alternative). Body parameters stay frozen.
    pub fn train_head(
        &mut self,
        pool: &ModelPool,
        source: &Dataset,
        proxy: &ProxyDataset,
        config: &HeadTrainConfig,
        rng: &mut Rng64,
    ) {
        self.train_head_traced(pool, source, proxy, config, rng, &Tracer::noop());
    }

    /// Like [`FusingStructure::train_head`], recording a
    /// `fusing.train_head` span (epochs, steps, final loss) plus one
    /// `nn.epoch` span per epoch into `tracer`. With a no-op tracer this is
    /// exactly `train_head`: tracing never touches the RNG, so the trained
    /// head is bit-identical either way.
    pub fn train_head_traced(
        &mut self,
        pool: &ModelPool,
        source: &Dataset,
        proxy: &ProxyDataset,
        config: &HeadTrainConfig,
        rng: &mut Rng64,
        tracer: &Tracer,
    ) {
        let features = source.features().select_rows(proxy.indices());
        let labels: Vec<usize> = proxy
            .indices()
            .iter()
            .map(|&i| source.labels()[i])
            .collect();
        let inputs = self.head_inputs(pool, &features);
        self.train_head_on_inputs_traced(&inputs, &labels, proxy.weights(), config, rng, tracer);
    }

    /// Trains the head directly on precomputed head inputs (concatenated
    /// body probabilities), e.g. from a [`crate::BodyOutputCache`].
    ///
    /// Records the same `fusing.train_head` span as
    /// [`FusingStructure::train_head_traced`] and draws identically from
    /// `rng`, so the trained head is bit-identical to the uncached path
    /// when the inputs are.
    pub fn train_head_on_inputs_traced(
        &mut self,
        inputs: &Matrix,
        labels: &[usize],
        weights: &[f32],
        config: &HeadTrainConfig,
        rng: &mut Rng64,
        tracer: &Tracer,
    ) {
        let start = std::time::Instant::now();
        let trainer =
            ClassifierTrainer::new(config.epochs, config.batch_size).with_schedule(config.schedule);
        let report = trainer.fit_traced(
            &mut self.head,
            inputs,
            labels,
            Some(weights),
            config.loss,
            rng,
            tracer,
        );
        if tracer.is_enabled() {
            tracer.record_span(
                "fusing.train_head",
                vec![
                    muffin_trace::Field::new("epochs", config.epochs as usize),
                    muffin_trace::Field::new("steps", report.steps as usize),
                    muffin_trace::Field::new("final_loss", report.final_loss().unwrap_or(f32::NAN)),
                    muffin_trace::Field::new("samples", labels.len()),
                ],
                start.elapsed(),
            );
        }
    }

    /// Predicts classes for `features`: consensus where the body agrees,
    /// head output where it disagrees.
    ///
    /// Each body model runs a **single** forward pass: hard predictions
    /// come from the logits and the head inputs from the softmax of those
    /// same logits, byte-identical to the former double-forward path.
    ///
    /// # Panics
    ///
    /// Panics if the structure's body is invalid for `pool` — a structure
    /// built through [`FusingStructure::new`] against this pool never is.
    /// Request paths handling structures from untrusted sources (e.g.
    /// deserialized checkpoints) should call
    /// [`FusingStructure::try_predict`] instead.
    pub fn predict(&self, pool: &ModelPool, features: &Matrix) -> Vec<usize> {
        self.try_predict(pool, features)
            .expect("fusing structure validated against this pool")
    }

    /// Like [`FusingStructure::predict`], but validates the body against
    /// `pool` up front and returns an error instead of panicking.
    ///
    /// A [`FusingStructure`] deserialized from JSON bypasses the
    /// constructor's checks, so a serving path must not assume its
    /// `model_indices` are non-empty and in range.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] if the structure selects no
    /// body models, or selects an index out of range for `pool`, or if a
    /// body model's prediction count disagrees with the head's.
    pub fn try_predict(
        &self,
        pool: &ModelPool,
        features: &Matrix,
    ) -> Result<Vec<usize>, MuffinError> {
        self.validate_body(pool.len())?;
        let mut probs: Vec<Matrix> = Vec::with_capacity(self.model_indices.len());
        let mut body_preds: Vec<Vec<usize>> = Vec::with_capacity(self.model_indices.len());
        for &i in &self.model_indices {
            let (p, preds) = pool.get(i).expect("validated index").outputs(features);
            probs.push(p);
            body_preds.push(preds);
        }
        let refs: Vec<&Matrix> = probs.iter().collect();
        let inputs = Matrix::hcat(&refs).expect("equal row counts by construction");
        let head_preds = self.head.predict(&inputs);
        self.gated(&body_preds, head_preds)
    }

    /// Predicts classes using cached body outputs instead of running the
    /// backbones; identical to [`FusingStructure::predict`] on the cache's
    /// feature matrix.
    ///
    /// # Panics
    ///
    /// Panics if the structure's body is invalid for the cache's pool; see
    /// [`FusingStructure::try_predict_cached`] for the checked variant.
    pub fn predict_cached(&self, cache: &crate::BodyOutputCache<'_>) -> Vec<usize> {
        self.try_predict_cached(cache)
            .expect("fusing structure validated against the cache's pool")
    }

    /// Like [`FusingStructure::predict_cached`], but validates the body
    /// against the cache's pool up front and returns an error instead of
    /// panicking — the serving request path's entry point.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] under the same conditions as
    /// [`FusingStructure::try_predict`].
    pub fn try_predict_cached(
        &self,
        cache: &crate::BodyOutputCache<'_>,
    ) -> Result<Vec<usize>, MuffinError> {
        self.validate_body(cache.pool_len())?;
        let body_preds: Vec<&[usize]> = self
            .model_indices
            .iter()
            .map(|&i| cache.predictions(i))
            .collect();
        let inputs = cache.head_inputs(&self.model_indices);
        let head_preds = self.head.predict(&inputs);
        self.gated(&body_preds, head_preds)
    }

    /// Checks that the body selects at least one model and that every
    /// selected index is in range for a pool of `pool_len` models —
    /// the constructor guarantees both, JSON deserialization neither.
    fn validate_body(&self, pool_len: usize) -> Result<(), MuffinError> {
        if self.model_indices.is_empty() {
            return Err(MuffinError::InvalidConfig(
                "fusing structure selects no body models".into(),
            ));
        }
        for &i in &self.model_indices {
            if i >= pool_len {
                return Err(MuffinError::InvalidConfig(format!(
                    "model index {i} out of range for pool of {pool_len}"
                )));
            }
        }
        Ok(())
    }

    /// Applies consensus gating: unanimous body predictions pass through,
    /// the head arbitrates disagreements.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] when no body predictions are
    /// supplied or a body's prediction vector is not exactly as long as the
    /// head's — indexing ahead blindly would panic mid-request instead.
    fn gated<P: AsRef<[usize]>>(
        &self,
        body_preds: &[P],
        head_preds: Vec<usize>,
    ) -> Result<Vec<usize>, MuffinError> {
        if body_preds.is_empty() {
            return Err(MuffinError::InvalidConfig(
                "consensus gating needs at least one body prediction vector".into(),
            ));
        }
        for (m, p) in body_preds.iter().enumerate() {
            if p.as_ref().len() != head_preds.len() {
                return Err(MuffinError::InvalidConfig(format!(
                    "body model {m} predicted {} samples but the head predicted {}",
                    p.as_ref().len(),
                    head_preds.len()
                )));
            }
        }
        Ok((0..head_preds.len())
            .map(|s| {
                let first = body_preds[0].as_ref()[s];
                if self.consensus_gating && body_preds.iter().all(|p| p.as_ref()[s] == first) {
                    first
                } else {
                    head_preds[s]
                }
            })
            .collect())
    }

    /// Like [`FusingStructure::predict`], with the input rows fanned out
    /// across `workers` in contiguous chunks.
    ///
    /// Predictions are per-row, so the result is identical to the serial
    /// path for every worker count; small inputs fall back to the serial
    /// path to avoid paying thread spawn for nothing.
    pub fn predict_with(
        &self,
        pool: &ModelPool,
        features: &Matrix,
        workers: &WorkerPool,
    ) -> Vec<usize> {
        self.predict_with_traced(pool, features, workers, &Tracer::noop())
    }

    /// Like [`FusingStructure::predict_with`], observing the batch's
    /// end-to-end latency into `tracer`'s `fusing.predict_batch` histogram.
    /// Histogram aggregation is order-insensitive, so this is safe to call
    /// from worker threads sharing one tracer.
    pub fn predict_with_traced(
        &self,
        pool: &ModelPool,
        features: &Matrix,
        workers: &WorkerPool,
        tracer: &Tracer,
    ) -> Vec<usize> {
        let start = std::time::Instant::now();
        let preds = if workers.is_serial() || features.rows() < 2 * workers.workers() {
            self.predict(pool, features)
        } else {
            let chunks = muffin_par::chunk_ranges(features.rows(), workers.workers());
            let parts = workers.map(&chunks, |_, range| {
                // Chunks are contiguous: a block copy of the row range beats
                // materialising an index vector per chunk and gathering rows
                // one by one through select_rows.
                self.predict(pool, &features.row_range(range.clone()))
            });
            parts.into_iter().flatten().collect()
        };
        tracer.observe("fusing.predict_batch", start.elapsed());
        preds
    }

    /// Like [`FusingStructure::evaluate`], observing the prediction
    /// latency into `tracer`'s `fusing.predict_batch` histogram.
    pub fn evaluate_traced(
        &self,
        pool: &ModelPool,
        dataset: &Dataset,
        tracer: &Tracer,
    ) -> muffin_models::ModelEvaluation {
        let preds =
            self.predict_with_traced(pool, dataset.features(), &WorkerPool::serial(), tracer);
        self.evaluation_of(&preds, pool, dataset)
    }

    /// Like [`FusingStructure::evaluate_traced`], predicting from cached
    /// body outputs. `cache` must have been built over `dataset`'s
    /// features; the result is then identical to the uncached evaluation.
    pub fn evaluate_cached_traced(
        &self,
        pool: &ModelPool,
        cache: &crate::BodyOutputCache<'_>,
        dataset: &Dataset,
        tracer: &Tracer,
    ) -> muffin_models::ModelEvaluation {
        let start = std::time::Instant::now();
        let preds = self.predict_cached(cache);
        tracer.observe("fusing.predict_batch", start.elapsed());
        self.evaluation_of(&preds, pool, dataset)
    }

    /// Evaluates the fused model on `dataset`.
    pub fn evaluate(&self, pool: &ModelPool, dataset: &Dataset) -> muffin_models::ModelEvaluation {
        let preds = self.predict(pool, dataset.features());
        self.evaluation_of(&preds, pool, dataset)
    }

    fn evaluation_of(
        &self,
        preds: &[usize],
        pool: &ModelPool,
        dataset: &Dataset,
    ) -> muffin_models::ModelEvaluation {
        let names: Vec<&str> = self
            .model_indices
            .iter()
            .filter_map(|&i| pool.get(i))
            .map(|m| m.name())
            .collect();
        let label = format!("Muffin({} | {})", names.join("+"), self.head_spec);
        muffin_models::ModelEvaluation::of(preds, dataset, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrivilegeMap;
    use muffin_data::IsicLike;
    use muffin_models::{Architecture, BackboneConfig};
    use muffin_nn::accuracy;

    fn setup() -> (ModelPool, muffin_data::DatasetSplit, ProxyDataset, Rng64) {
        let mut rng = Rng64::seed(50);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::densenet121()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let mut map = PrivilegeMap::new();
        map.set(split.train.schema().by_name("age").unwrap(), vec![4, 5]);
        map.set(
            split.train.schema().by_name("site").unwrap(),
            vec![5, 6, 7, 8],
        );
        let proxy = ProxyDataset::build(&split.train, &map).expect("proxy");
        (pool, split, proxy, rng)
    }

    #[test]
    fn rejects_empty_selection() {
        let (pool, _, _, mut rng) = setup();
        let err = FusingStructure::new(
            vec![],
            HeadSpec::new(vec![8], Activation::Relu),
            &pool,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, MuffinError::EmptyPool);
    }

    #[test]
    fn rejects_out_of_range_and_duplicates() {
        let (pool, _, _, mut rng) = setup();
        let spec = HeadSpec::new(vec![8], Activation::Relu);
        assert!(matches!(
            FusingStructure::new(vec![9], spec.clone(), &pool, &mut rng),
            Err(MuffinError::InvalidConfig(_))
        ));
        assert!(matches!(
            FusingStructure::new(vec![0, 0], spec, &pool, &mut rng),
            Err(MuffinError::InvalidConfig(_))
        ));
    }

    #[test]
    fn head_input_dim_is_models_times_classes() {
        let (pool, split, _, mut rng) = setup();
        let fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 8], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        let inputs = fusing.head_inputs(&pool, split.test.features());
        assert_eq!(inputs.cols(), 2 * 8);
        assert_eq!(inputs.rows(), split.test.len());
    }

    #[test]
    fn consensus_gating_respects_unanimous_body() {
        let (pool, split, _, mut rng) = setup();
        let fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![8], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        // Untrained head: wherever the two bodies agree, the fused output
        // must equal the consensus anyway.
        let preds = fusing.predict(&pool, split.test.features());
        let a = pool.get(0).unwrap().predict(split.test.features());
        let b = pool.get(1).unwrap().predict(split.test.features());
        for i in 0..preds.len() {
            if a[i] == b[i] {
                assert_eq!(preds[i], a[i], "consensus overridden at {i}");
            }
        }
    }

    #[test]
    fn trained_head_beats_untrained_on_proxy_groups() {
        let (pool, split, proxy, mut rng) = setup();
        let mut fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 12], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        let before = accuracy(
            &fusing.predict(&pool, split.test.features()),
            split.test.labels(),
        );
        fusing.train_head(
            &pool,
            &split.train,
            &proxy,
            &HeadTrainConfig::default(),
            &mut rng,
        );
        let after = accuracy(
            &fusing.predict(&pool, split.test.features()),
            split.test.labels(),
        );
        assert!(
            after >= before - 0.02,
            "training should not degrade accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn fused_model_at_least_matches_best_body_overall() {
        let (pool, split, proxy, mut rng) = setup();
        let mut fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 12], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        fusing.train_head(
            &pool,
            &split.train,
            &proxy,
            &HeadTrainConfig::default(),
            &mut rng,
        );
        let fused = accuracy(
            &fusing.predict(&pool, split.test.features()),
            split.test.labels(),
        );
        let best_body = (0..2)
            .map(|i| {
                accuracy(
                    &pool.get(i).unwrap().predict(split.test.features()),
                    split.test.labels(),
                )
            })
            .fold(f32::MIN, f32::max);
        assert!(
            fused > best_body - 0.05,
            "fused {fused} vs best body {best_body}"
        );
    }

    #[test]
    fn total_params_include_bodies_and_head() {
        let (pool, _, _, mut rng) = setup();
        let fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        let expected_body = 11_689_512u64 + 7_978_856;
        assert_eq!(
            fusing.total_reported_params(&pool),
            expected_body + fusing.head_param_count() as u64
        );
    }

    #[test]
    fn parallel_prediction_matches_serial() {
        let (pool, split, proxy, mut rng) = setup();
        let mut fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 12], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        fusing.train_head(
            &pool,
            &split.train,
            &proxy,
            &HeadTrainConfig::fast(),
            &mut rng,
        );
        let serial = fusing.predict(&pool, split.test.features());
        for workers in [1usize, 2, 4, 32] {
            let parallel =
                fusing.predict_with(&pool, split.test.features(), &WorkerPool::new(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn cached_prediction_matches_uncached() {
        let (pool, split, proxy, mut rng) = setup();
        let mut fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 12], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        fusing.train_head(
            &pool,
            &split.train,
            &proxy,
            &HeadTrainConfig::fast(),
            &mut rng,
        );
        let cache = crate::BodyOutputCache::new(&pool, split.test.features().clone());
        let uncached = fusing.predict(&pool, split.test.features());
        assert_eq!(fusing.predict_cached(&cache), uncached);
        let eval = fusing.evaluate_cached_traced(&pool, &cache, &split.test, &Tracer::noop());
        let direct = fusing.evaluate(&pool, &split.test);
        assert_eq!(eval.accuracy.to_bits(), direct.accuracy.to_bits());
        // Gating off must flow through the cached path too.
        fusing.set_consensus_gating(false);
        assert_eq!(
            fusing.predict_cached(&cache),
            fusing.predict(&pool, split.test.features())
        );
    }

    #[test]
    fn deserialized_structure_with_empty_body_errors_instead_of_panicking() {
        let (pool, split, _, mut rng) = setup();
        let fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![8], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        // JSON deserialization bypasses the constructor's validation, so a
        // hand-edited or corrupted checkpoint can carry an empty body.
        let json = muffin_json::to_string(&fusing)
            .replace("\"model_indices\":[0,1]", "\"model_indices\":[]");
        let hollow: FusingStructure = muffin_json::from_str(&json).expect("parse");
        assert!(hollow.model_indices().is_empty());
        let err = hollow
            .try_predict(&pool, split.test.features())
            .unwrap_err();
        assert!(matches!(err, MuffinError::InvalidConfig(_)), "{err:?}");
        let cache = crate::BodyOutputCache::new(&pool, split.test.features().clone());
        let err = hollow.try_predict_cached(&cache).unwrap_err();
        assert!(matches!(err, MuffinError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn deserialized_structure_with_out_of_range_body_errors() {
        let (pool, split, _, mut rng) = setup();
        let fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![8], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        let json = muffin_json::to_string(&fusing)
            .replace("\"model_indices\":[0,1]", "\"model_indices\":[0,9]");
        let wild: FusingStructure = muffin_json::from_str(&json).expect("parse");
        let err = wild.try_predict(&pool, split.test.features()).unwrap_err();
        assert!(
            matches!(&err, MuffinError::InvalidConfig(m) if m.contains("out of range")),
            "{err:?}"
        );
        let cache = crate::BodyOutputCache::new(&pool, split.test.features().clone());
        let err = wild.try_predict_cached(&cache).unwrap_err();
        assert!(
            matches!(&err, MuffinError::InvalidConfig(m) if m.contains("out of range")),
            "{err:?}"
        );
    }

    #[test]
    fn gating_errors_on_short_body_prediction_vectors() {
        let (pool, _, _, mut rng) = setup();
        let fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![8], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        // A body vector shorter than the head's predictions used to panic
        // with an out-of-bounds index inside the gating loop.
        let short: Vec<Vec<usize>> = vec![vec![1, 2], vec![1, 2, 3]];
        let err = fusing.gated(&short, vec![0, 0, 0]).unwrap_err();
        assert!(
            matches!(&err, MuffinError::InvalidConfig(m) if m.contains("predicted 2 samples")),
            "{err:?}"
        );
        // And no body vectors at all is an error, not body_preds[0] panic.
        let none: Vec<Vec<usize>> = vec![];
        let err = fusing.gated(&none, vec![0]).unwrap_err();
        assert!(matches!(err, MuffinError::InvalidConfig(_)), "{err:?}");
        // Matching lengths still gate.
        let ok = fusing
            .gated(&[vec![1usize, 2], vec![1, 3]], vec![7, 7])
            .expect("well-formed");
        assert_eq!(ok, vec![1, 7]);
    }

    #[test]
    fn head_spec_display_matches_paper_notation() {
        let spec = HeadSpec::new(vec![16, 10, 10, 8], Activation::Tanh);
        assert_eq!(spec.to_string(), "[16,10,10,8] tanh");
    }

    #[test]
    fn three_model_bodies_fuse_and_gate() {
        let mut rng = Rng64::seed(51);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[
                Architecture::resnet18(),
                Architecture::densenet121(),
                Architecture::mobilenet_v2(),
            ],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let fusing = FusingStructure::new(
            vec![0, 1, 2],
            HeadSpec::new(vec![16], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        let inputs = fusing.head_inputs(&pool, split.test.features());
        assert_eq!(inputs.cols(), 3 * 8);
        // Unanimous three-way agreement must pass through untouched.
        let preds = fusing.predict(&pool, split.test.features());
        let bodies: Vec<Vec<usize>> = (0..3)
            .map(|i| pool.get(i).unwrap().predict(split.test.features()))
            .collect();
        for s in 0..preds.len() {
            if bodies.iter().all(|b| b[s] == bodies[0][s]) {
                assert_eq!(preds[s], bodies[0][s]);
            }
        }
    }

    #[test]
    fn single_model_body_with_gating_is_the_model_itself() {
        let (pool, split, _, mut rng) = setup();
        let fusing = FusingStructure::new(
            vec![0],
            HeadSpec::new(vec![8], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        // One body always "agrees with itself" → gating passes it through.
        assert_eq!(
            fusing.predict(&pool, split.test.features()),
            pool.get(0).unwrap().predict(split.test.features())
        );
    }

    #[test]
    fn evaluation_label_names_the_bodies_and_head() {
        let (pool, split, _, mut rng) = setup();
        let fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 8], Activation::Tanh),
            &pool,
            &mut rng,
        )
        .expect("valid");
        let eval = fusing.evaluate(&pool, &split.test);
        assert!(eval.model.contains("ResNet-18"));
        assert!(eval.model.contains("DenseNet121"));
        assert!(eval.model.contains("[16,8] tanh"));
    }

    #[test]
    fn gating_can_be_disabled() {
        let (pool, _, _, mut rng) = setup();
        let mut fusing = FusingStructure::new(
            vec![0],
            HeadSpec::new(vec![8], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        assert!(fusing.consensus_gating());
        fusing.set_consensus_gating(false);
        assert!(!fusing.consensus_gating());
    }
}
