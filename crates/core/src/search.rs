use crate::checkpoint::{
    EvalCacheFile, PersistenceOptions, SearchCheckpoint, SearchFingerprint, CHECKPOINT_VERSION,
};
use crate::{
    Candidate, ControllerConfig, FusingStructure, HeadTrainConfig, MuffinError, PrivilegeMap,
    ProxyDataset, RewardConfig, RewardKind, RnnController, SearchSpace,
};
use muffin_data::{Dataset, DatasetSplit};
use muffin_models::{fnv1a64, ModelPool, PoolRelation};
use muffin_par::WorkerPool;
use muffin_tensor::{Rng64, SplitMix64};
use muffin_trace::{Field, Tracer};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Configuration of a full Muffin search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Reinforcement-learning episodes (the paper uses 500).
    pub episodes: u32,
    /// Number of body slots the controller fills (paper default: 2).
    pub num_slots: usize,
    /// Names of the unfair attributes being optimised (e.g. age and site).
    pub target_attributes: Vec<String>,
    /// Muffin-head training configuration.
    pub head: HeadTrainConfig,
    /// Reward configuration (Eq. 3).
    pub reward: RewardConfig,
    /// Reward shape (the paper's Eq. 3 ratio by default; alternatives for
    /// the reward ablation).
    pub reward_kind: RewardKind,
    /// Controller hyper-parameters (Eq. 4).
    pub controller: ControllerConfig,
    /// Margin used when inferring unprivileged groups from the pool.
    pub privilege_margin: f32,
    /// Pool models forced into every candidate's body (Table I fixes the
    /// base model and searches only for its partner).
    pub required_models: Vec<usize>,
    /// REINFORCE batch size `m` of Eq. 4: the controller accumulates this
    /// many episodes before each policy update.
    pub reinforce_batch: usize,
    /// Explicit search space overriding the paper default built by
    /// [`MuffinSearch::space`]. When set, its pool size must match the
    /// model pool; `num_slots`/`required_models` are read from the space
    /// itself. Mainly for tests that need a small, exactly-enumerable
    /// space.
    pub space: Option<SearchSpace>,
}

muffin_json::impl_json!(struct SearchConfig {
    episodes, num_slots, target_attributes, head, reward, reward_kind, controller,
    privilege_margin, required_models, reinforce_batch, space,
});

impl SearchConfig {
    /// The paper's configuration for the given unfair attributes:
    /// 500 episodes, two body slots.
    pub fn paper(target_attributes: &[&str]) -> Self {
        Self {
            episodes: 500,
            num_slots: 2,
            target_attributes: target_attributes.iter().map(|s| s.to_string()).collect(),
            head: HeadTrainConfig::default(),
            reward: RewardConfig::default(),
            reward_kind: RewardKind::PaperRatio,
            controller: ControllerConfig::default(),
            privilege_margin: 0.02,
            required_models: Vec::new(),
            reinforce_batch: 1,
            space: None,
        }
    }

    /// A fast configuration for tests and examples (few episodes).
    pub fn fast(target_attributes: &[&str]) -> Self {
        Self {
            episodes: 30,
            head: HeadTrainConfig::fast(),
            ..Self::paper(target_attributes)
        }
    }

    /// Overrides the episode budget.
    pub fn with_episodes(mut self, episodes: u32) -> Self {
        self.episodes = episodes;
        self
    }

    /// Overrides the number of body slots.
    pub fn with_slots(mut self, num_slots: usize) -> Self {
        self.num_slots = num_slots;
        self
    }

    /// Forces pool models into every candidate's body.
    pub fn with_required_models(mut self, required: Vec<usize>) -> Self {
        self.required_models = required;
        self
    }

    /// Overrides the reward shape (ablation).
    pub fn with_reward_kind(mut self, kind: RewardKind) -> Self {
        self.reward_kind = kind;
        self
    }

    /// Overrides the Eq. 4 REINFORCE batch size `m`.
    pub fn with_reinforce_batch(mut self, m: usize) -> Self {
        self.reinforce_batch = m;
        self
    }

    /// Overrides the search space (see [`SearchConfig::space`]).
    pub fn with_space(mut self, space: SearchSpace) -> Self {
        self.space = Some(space);
        self
    }
}

/// Metrics of one evaluated candidate during the search.
#[derive(Debug, Clone)]
pub struct EpisodeRecord {
    /// Episode number (0-based). Re-evaluations of a cached candidate keep
    /// the episode index of their first evaluation in `first_seen`.
    pub episode: u32,
    /// The controller's raw action vector.
    pub actions: Vec<usize>,
    /// Names of the selected body models.
    pub model_names: Vec<String>,
    /// Head description, e.g. `[16,18,12,8] relu`.
    pub head_desc: String,
    /// Validation accuracy of the fused model.
    pub accuracy: f32,
    /// Validation unfairness per target attribute, in config order.
    pub unfairness: Vec<f32>,
    /// Eq. 3 reward.
    pub reward: f32,
    /// Trainable parameters in the head.
    pub head_params: usize,
    /// Total parameters including frozen bodies (reported CNN sizes).
    pub total_params: u64,
    /// Seed used for head initialisation/training, for exact rebuilds.
    pub head_seed: u64,
    /// Episode at which this candidate was first evaluated.
    pub first_seen: u32,
}

muffin_json::impl_json!(struct EpisodeRecord {
    episode, actions, model_names, head_desc, accuracy, unfairness, reward,
    head_params, total_params, head_seed, first_seen,
});

/// Result of a completed search: full history plus the best structures.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// One record per episode (cached candidates repeat their metrics).
    pub history: Vec<EpisodeRecord>,
    /// Index into `history` of the highest-reward candidate.
    pub best_by_reward: usize,
    /// The names of the targeted attributes, in reward order.
    pub target_attributes: Vec<String>,
}

muffin_json::impl_json!(struct SearchOutcome { history, best_by_reward, target_attributes });

impl SearchOutcome {
    /// Distinct evaluated candidates (first occurrence of each action
    /// vector).
    pub fn distinct(&self) -> Vec<&EpisodeRecord> {
        let mut seen = std::collections::HashSet::new();
        self.history
            .iter()
            .filter(|r| seen.insert(r.actions.clone()))
            .collect()
    }

    /// The best record overall by reward.
    pub fn best(&self) -> &EpisodeRecord {
        &self.history[self.best_by_reward]
    }

    /// Lexicographic (unfairness ↑, reward ↓) order used by the `best_*`
    /// selectors. `total_cmp` keeps the comparator a total order even if a
    /// reward is NaN (NaN rewards lose ties instead of winning randomly).
    fn selection_order(ua: f32, ra: f32, ub: f32, rb: f32) -> std::cmp::Ordering {
        ua.total_cmp(&ub).then(rb.total_cmp(&ra))
    }

    /// The distinct record with the lowest unfairness on `attr_index`
    /// (ties broken by reward) — the paper's Muffin-Age / Muffin-Site /
    /// Muffin-Balance selections.
    ///
    /// Records whose unfairness on `attr_index` is missing or non-finite
    /// (`run` stores NaN when an attribute was absent from an evaluation)
    /// are excluded: a NaN entry must never win the paper's Table I picks.
    pub fn best_for_attribute(&self, attr_index: usize) -> Option<&EpisodeRecord> {
        self.distinct()
            .into_iter()
            .filter(|r| attr_index < r.unfairness.len() && r.unfairness[attr_index].is_finite())
            .min_by(|a, b| {
                Self::selection_order(
                    a.unfairness[attr_index],
                    a.reward,
                    b.unfairness[attr_index],
                    b.reward,
                )
            })
    }

    /// The distinct record with the lowest **summed** unfairness over all
    /// targets (Muffin-Balance in the Fitzpatrick experiment).
    ///
    /// Records with any non-finite unfairness entry are excluded — one NaN
    /// would poison the sum and the comparison.
    pub fn best_balanced(&self) -> Option<&EpisodeRecord> {
        self.distinct()
            .into_iter()
            .filter(|r| r.unfairness.iter().all(|u| u.is_finite()))
            .min_by(|a, b| {
                let ua: f32 = a.unfairness.iter().sum();
                let ub: f32 = b.unfairness.iter().sum();
                Self::selection_order(ua, a.reward, ub, b.reward)
            })
    }

    /// Like [`SearchOutcome::best_for_attribute`] but restricted to
    /// candidates that genuinely **unite** at least two models — the
    /// paper's Muffin-Age / Muffin-Site always pair models; degenerate
    /// single-model bodies (duplicate slot picks) are excluded.
    pub fn best_united_for_attribute(&self, attr_index: usize) -> Option<&EpisodeRecord> {
        self.distinct()
            .into_iter()
            .filter(|r| {
                r.model_names.len() >= 2
                    && attr_index < r.unfairness.len()
                    && r.unfairness[attr_index].is_finite()
            })
            .min_by(|a, b| {
                Self::selection_order(
                    a.unfairness[attr_index],
                    a.reward,
                    b.unfairness[attr_index],
                    b.reward,
                )
            })
    }

    /// Like [`SearchOutcome::best_balanced`] but restricted to candidates
    /// uniting at least two models.
    pub fn best_united_balanced(&self) -> Option<&EpisodeRecord> {
        self.distinct()
            .into_iter()
            .filter(|r| r.model_names.len() >= 2 && r.unfairness.iter().all(|u| u.is_finite()))
            .min_by(|a, b| {
                let ua: f32 = a.unfairness.iter().sum();
                let ub: f32 = b.unfairness.iter().sum();
                Self::selection_order(ua, a.reward, ub, b.reward)
            })
    }

    /// Serialises the outcome to a JSON file so search histories can be
    /// archived or plotted externally.
    ///
    /// # Errors
    ///
    /// Returns an error string if serialisation or the write fails.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        let json = muffin_json::to_string(self);
        std::fs::write(path, json).map_err(|e| e.to_string())
    }

    /// Loads an outcome previously written by [`SearchOutcome::save_json`].
    ///
    /// # Errors
    ///
    /// Returns an error string if the file cannot be read or parsed.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        muffin_json::from_str(&text).map_err(|e| e.to_string())
    }
}

/// The Muffin automated tool: iterates components ①–④ of the paper's
/// framework — sample a model-fusing structure, train its head on the
/// fairness proxy dataset, compute the multi-fairness reward, and update
/// the RNN controller.
///
/// # Example
///
/// ```no_run
/// use muffin::{MuffinSearch, SearchConfig};
/// use muffin_data::IsicLike;
/// use muffin_models::{Architecture, BackboneConfig, ModelPool};
/// use muffin_tensor::Rng64;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = Rng64::seed(7);
/// let split = IsicLike::new().generate(&mut rng).split_default(&mut rng);
/// let pool = ModelPool::train(
///     &split.train,
///     &[Architecture::resnet18(), Architecture::densenet121()],
///     &BackboneConfig::default(),
///     &mut rng,
/// );
/// let search = MuffinSearch::new(pool, split, SearchConfig::paper(&["age", "site"]))?;
/// let outcome = search.run(&mut rng)?;
/// println!("best reward {:.2}", outcome.best().reward);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MuffinSearch {
    pool: ModelPool,
    split: DatasetSplit,
    config: SearchConfig,
    privilege: PrivilegeMap,
    proxy: ProxyDataset,
    tracer: Tracer,
    body_cache: bool,
}

/// The per-run [`BodyOutputCache`]s a search shares across all candidate
/// evaluations: one over the proxy subset of the training features (head
/// training inputs) and one over the validation features (candidate
/// evaluation), plus the proxy labels both paths need.
struct RunBodyCaches<'p> {
    proxy: crate::BodyOutputCache<'p>,
    val: crate::BodyOutputCache<'p>,
    proxy_labels: Vec<usize>,
}

impl MuffinSearch {
    /// Prepares a search: infers the privilege map from the pool on the
    /// validation split and builds the Algorithm-1 proxy dataset.
    ///
    /// # Errors
    ///
    /// Returns an error if the pool is empty, an attribute name is
    /// unknown, or no unprivileged samples exist.
    pub fn new(
        pool: ModelPool,
        split: DatasetSplit,
        config: SearchConfig,
    ) -> Result<Self, MuffinError> {
        if pool.is_empty() {
            return Err(MuffinError::EmptyPool);
        }
        if config.episodes == 0 {
            return Err(MuffinError::InvalidConfig(
                "episodes must be positive".into(),
            ));
        }
        if config.reinforce_batch == 0 {
            return Err(MuffinError::InvalidConfig(
                "reinforce_batch must be positive".into(),
            ));
        }
        if let Some(&bad) = config.required_models.iter().find(|&&i| i >= pool.len()) {
            return Err(MuffinError::InvalidConfig(format!(
                "required model {bad} out of range for pool of {}",
                pool.len()
            )));
        }
        if let Some(space) = &config.space {
            if space.pool_size() != pool.len() {
                return Err(MuffinError::InvalidConfig(format!(
                    "config.space is over a pool of {}, actual pool has {}",
                    space.pool_size(),
                    pool.len()
                )));
            }
        }
        let attrs: Result<Vec<_>, _> = config
            .target_attributes
            .iter()
            .map(|name| {
                split
                    .train
                    .schema()
                    .by_name(name)
                    .ok_or_else(|| MuffinError::UnknownAttribute(name.clone()))
            })
            .collect();
        let attrs = attrs?;
        let privilege = PrivilegeMap::infer(&pool, &split.val, &attrs, config.privilege_margin);
        let proxy = ProxyDataset::build(&split.train, &privilege)?;
        Ok(Self {
            pool,
            split,
            config,
            privilege,
            proxy,
            tracer: Tracer::noop(),
            body_cache: true,
        })
    }

    /// Prepares a search with an explicitly provided privilege map
    /// (skipping inference).
    ///
    /// # Errors
    ///
    /// Same as [`MuffinSearch::new`].
    pub fn with_privilege(
        pool: ModelPool,
        split: DatasetSplit,
        config: SearchConfig,
        privilege: PrivilegeMap,
    ) -> Result<Self, MuffinError> {
        if pool.is_empty() {
            return Err(MuffinError::EmptyPool);
        }
        let proxy = ProxyDataset::build(&split.train, &privilege)?;
        Ok(Self {
            pool,
            split,
            config,
            privilege,
            proxy,
            tracer: Tracer::noop(),
            body_cache: true,
        })
    }

    /// Attaches a tracer: every run records spans for episodes, head
    /// training epochs and batch evaluations, plus cache-hit counters.
    ///
    /// The default is the no-op tracer, and tracing never touches any RNG,
    /// so the [`SearchOutcome`] is bit-identical with tracing on or off
    /// (enforced by the golden-snapshot and trace-determinism suites).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer runs record into ([`Tracer::noop`] unless
    /// [`MuffinSearch::with_tracer`] was used).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables or disables the per-run [`crate::BodyOutputCache`]
    /// (default: enabled).
    ///
    /// With the cache on, each frozen body model runs its forward pass
    /// over the proxy and validation features **once per run** instead of
    /// once per candidate, and per-batch `fusing.body_cache_hit` /
    /// `fusing.body_cache_miss` counters are recorded. The
    /// [`SearchOutcome`] is bit-identical either way (enforced by the
    /// body-cache equivalence suite), so disabling it is only useful for
    /// A/B benchmarking. Deliberately **not** part of [`SearchConfig`]:
    /// checkpoint fingerprints must not depend on a pure optimisation.
    pub fn with_body_cache(mut self, enabled: bool) -> Self {
        self.body_cache = enabled;
        self
    }

    /// Whether the per-run body-output cache is enabled.
    pub fn body_cache(&self) -> bool {
        self.body_cache
    }

    /// The model pool being searched over.
    pub fn pool(&self) -> &ModelPool {
        &self.pool
    }

    /// The train/val/test split driving the search.
    pub fn split(&self) -> &DatasetSplit {
        &self.split
    }

    /// The inferred (or supplied) privilege map.
    pub fn privilege(&self) -> &PrivilegeMap {
        &self.privilege
    }

    /// The Algorithm-1 proxy dataset.
    pub fn proxy(&self) -> &ProxyDataset {
        &self.proxy
    }

    /// The search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Trains and evaluates one candidate on a dataset, returning the
    /// trained structure and its evaluation. Deterministic in `head_seed`.
    pub fn evaluate_candidate(
        &self,
        candidate: &Candidate,
        eval_on: &Dataset,
        head_seed: u64,
    ) -> Result<(FusingStructure, muffin_models::ModelEvaluation), MuffinError> {
        self.evaluate_candidate_traced(candidate, eval_on, head_seed, &Tracer::noop())
    }

    /// Like [`MuffinSearch::evaluate_candidate`], recording head-training
    /// spans and prediction latency into `tracer`. Used by the search loop
    /// with per-job [`Tracer::fork`]s so concurrent evaluations keep a
    /// deterministic event order.
    pub fn evaluate_candidate_traced(
        &self,
        candidate: &Candidate,
        eval_on: &Dataset,
        head_seed: u64,
        tracer: &Tracer,
    ) -> Result<(FusingStructure, muffin_models::ModelEvaluation), MuffinError> {
        let mut head_rng = Rng64::seed(head_seed);
        let mut fusing = FusingStructure::new(
            candidate.model_indices.clone(),
            candidate.head.clone(),
            &self.pool,
            &mut head_rng,
        )?;
        fusing.train_head_traced(
            &self.pool,
            &self.split.train,
            &self.proxy,
            &self.config.head,
            &mut head_rng,
            tracer,
        );
        let eval = fusing.evaluate_traced(&self.pool, eval_on, tracer);
        Ok((fusing, eval))
    }

    /// Like [`MuffinSearch::evaluate_candidate_traced`] but with all body
    /// forward passes served from the run's shared [`crate::BodyOutputCache`]s.
    ///
    /// Draws from the head RNG in exactly the same order as the uncached
    /// path (seed → head init → training), so the trained structure and
    /// its evaluation are bit-identical.
    fn evaluate_candidate_cached(
        &self,
        candidate: &Candidate,
        caches: &RunBodyCaches<'_>,
        eval_on: &Dataset,
        head_seed: u64,
        tracer: &Tracer,
    ) -> Result<(FusingStructure, muffin_models::ModelEvaluation), MuffinError> {
        let mut head_rng = Rng64::seed(head_seed);
        let mut fusing = FusingStructure::new(
            candidate.model_indices.clone(),
            candidate.head.clone(),
            &self.pool,
            &mut head_rng,
        )?;
        let inputs = caches.proxy.head_inputs(&candidate.model_indices);
        fusing.train_head_on_inputs_traced(
            &inputs,
            &caches.proxy_labels,
            self.proxy.weights(),
            &self.config.head,
            &mut head_rng,
            tracer,
        );
        let eval = fusing.evaluate_cached_traced(&self.pool, &caches.val, eval_on, tracer);
        Ok((fusing, eval))
    }

    /// Rebuilds the trained structure of a history record exactly.
    ///
    /// # Errors
    ///
    /// Propagates candidate-construction errors.
    pub fn rebuild(&self, record: &EpisodeRecord) -> Result<FusingStructure, MuffinError> {
        let space = self.space();
        let candidate = space.decode(&record.actions)?;
        let (fusing, _) = self.evaluate_candidate(&candidate, &self.split.val, record.head_seed)?;
        Ok(fusing)
    }

    /// The controller search space for this pool and configuration: the
    /// explicit [`SearchConfig::space`] override when set, else the paper
    /// default shaped by `num_slots`/`required_models`.
    pub fn space(&self) -> SearchSpace {
        if let Some(space) = &self.config.space {
            return space.clone();
        }
        SearchSpace::paper_default(self.pool.len())
            .with_slots(self.config.num_slots)
            .expect("validated num_slots")
            .with_required_models(self.config.required_models.clone())
            .expect("validated required models")
    }

    /// Runs the reinforcement-learning loop serially and returns the
    /// history. Equivalent to [`MuffinSearch::run_with_pool`] with a
    /// single-worker pool — and guaranteed to produce the **same outcome**
    /// as any parallel run with the same `rng` seed.
    ///
    /// # Errors
    ///
    /// Propagates candidate-construction errors (which indicate a bug, not
    /// a user error, since sampled actions are always in range).
    pub fn run(&self, rng: &mut Rng64) -> Result<SearchOutcome, MuffinError> {
        self.run_with_pool(rng, &WorkerPool::serial())
    }

    /// Runs the search with candidate evaluations fanned out over
    /// `workers` threads. See [`MuffinSearch::run_with_pool`].
    ///
    /// # Errors
    ///
    /// Same as [`MuffinSearch::run`].
    pub fn run_parallel(
        &self,
        rng: &mut Rng64,
        workers: usize,
    ) -> Result<SearchOutcome, MuffinError> {
        self.run_with_pool(rng, &WorkerPool::new(workers))
    }

    /// Runs the reinforcement-learning loop, evaluating each REINFORCE
    /// batch's uncached candidates on `pool`.
    ///
    /// Candidates are trained once and cached by action vector; repeated
    /// samples reuse the cached metrics (the controller still receives the
    /// reward each time, as in the paper's episode loop).
    ///
    /// **Determinism:** the outcome is bit-identical for every worker
    /// count. REINFORCE (Eq. 4) only needs episode rewards at the batch
    /// boundary, so each batch is processed in three phases:
    ///
    /// 1. sample the whole batch from the controller on the caller's RNG
    ///    stream (policy is frozen within a batch);
    /// 2. evaluate the batch's distinct uncached candidates concurrently —
    ///    each evaluation is a pure function of (candidate, head seed),
    ///    with head seeds pre-derived per episode from a [`SplitMix64`]
    ///    stream that is split off the caller's RNG once at the start;
    /// 3. merge the records back in episode order and apply one batched
    ///    policy update.
    ///
    /// Because no evaluation touches the shared RNG and results are merged
    /// index-ordered, scheduling cannot influence the search trajectory.
    ///
    /// # Errors
    ///
    /// Same as [`MuffinSearch::run`].
    pub fn run_with_pool(
        &self,
        rng: &mut Rng64,
        pool: &WorkerPool,
    ) -> Result<SearchOutcome, MuffinError> {
        self.run_persistent(rng, pool, &PersistenceOptions::default())
    }

    /// Builds the staleness fingerprint of a run starting from the given
    /// caller-RNG state: the exact identity a checkpoint or evaluation
    /// cache must carry to be replayed into this search.
    fn fingerprint(&self, rng_state: [u64; 4], space: &SearchSpace) -> SearchFingerprint {
        SearchFingerprint::new(
            rng_state,
            &self.config,
            space,
            &muffin_json::to_string(&self.pool),
            self.pool.manifest(),
            &muffin_json::to_string(&self.split),
        )
    }

    /// Like [`MuffinSearch::run_with_pool`], with durable persistence.
    ///
    /// Depending on `opts`, the run additionally:
    ///
    /// * writes a [`SearchCheckpoint`] atomically at REINFORCE batch
    ///   boundaries (`checkpoint` + `checkpoint_every`);
    /// * **resumes** from such a checkpoint (`resume`), continuing the
    ///   interrupted trajectory so the final [`SearchOutcome`] is
    ///   byte-identical to an uninterrupted run at any worker count;
    /// * loads and rewrites a cross-run [`EvalCacheFile`] (`eval_cache`),
    ///   skipping head training for candidates already evaluated by an
    ///   earlier run with the same fingerprint — each skipped evaluation
    ///   is counted on the `search.cache_hit_disk` tracer counter;
    /// * halts gracefully at the first batch boundary at or past
    ///   `halt_after`, writing a checkpoint and returning
    ///   [`MuffinError::Halted`] (deterministic kill simulation for
    ///   tests and operator drills).
    ///
    /// Checkpoints are only taken at batch boundaries because the policy
    /// update schedule is part of the trajectory: resuming mid-batch
    /// under a different episode budget would realign the Eq. 4 update
    /// boundaries and silently diverge. For the same reason a resumed
    /// run must share the checkpoint's REINFORCE batch size, which the
    /// fingerprint enforces.
    ///
    /// # Errors
    ///
    /// In addition to [`MuffinSearch::run`]'s errors:
    ///
    /// * [`MuffinError::InvalidConfig`] if `resume` or `halt_after` is
    ///   set without a `checkpoint` path;
    /// * [`MuffinError::Io`] / [`MuffinError::StaleArtifact`] for
    ///   unreadable, corrupt or mismatched persistence files;
    /// * [`MuffinError::Halted`] when `halt_after` stops the run early.
    pub fn run_persistent(
        &self,
        rng: &mut Rng64,
        pool: &WorkerPool,
        opts: &PersistenceOptions,
    ) -> Result<SearchOutcome, MuffinError> {
        if opts.resume && opts.checkpoint.is_none() {
            return Err(MuffinError::InvalidConfig(
                "resume requires a checkpoint path".into(),
            ));
        }
        if opts.halt_after.is_some() && opts.checkpoint.is_none() {
            return Err(MuffinError::InvalidConfig(
                "halt_after requires a checkpoint path".into(),
            ));
        }
        let space = self.space();
        // Serialising the pool and split for hashing is not free; skip it
        // entirely for plain in-memory runs.
        let fingerprint = (opts.checkpoint.is_some() || opts.eval_cache.is_some())
            .then(|| self.fingerprint(rng.state(), &space));

        let tracer = &self.tracer;
        let mut run_span = tracer.span("search.run");
        run_span.field("episodes", self.config.episodes as usize);
        run_span.field("slots", self.config.num_slots);
        run_span.field("pool_models", self.pool.len());
        run_span.field("reinforce_batch", self.config.reinforce_batch);
        // The controller always consumes the caller's RNG first, resumed
        // or not: on resume both its parameters and the RNG are then
        // overwritten from the checkpoint, so construction order stays a
        // frozen part of the stream contract.
        let mut controller = RnnController::new(space.clone(), self.config.controller, rng);
        let target_names: Vec<&str> = self
            .config
            .target_attributes
            .iter()
            .map(String::as_str)
            .collect();

        let mut cache: HashMap<Vec<usize>, EpisodeRecord> = HashMap::new();
        let mut disk_origin: HashSet<Vec<usize>> = HashSet::new();
        let seed_stream_seed: u64;
        let mut history: Vec<EpisodeRecord>;
        let mut episode: u32;
        // Round-tripped verbatim into every checkpoint this run writes:
        // the sharded supervisor owns this counter, the search loop only
        // preserves it across a resume.
        let mut exchanges_applied = 0u32;
        let mut pool_grew = false;
        if opts.resume {
            let path = opts.checkpoint.as_ref().expect("validated above");
            let fp = fingerprint.as_ref().expect("checkpoint path set");
            let (ckpt, relation) = SearchCheckpoint::load_for_resume(path, fp)?;
            if ckpt.episode > self.config.episodes {
                return Err(MuffinError::StaleArtifact(format!(
                    "checkpoint {} already covers {} episodes, more than the requested {}",
                    path.display(),
                    ckpt.episode,
                    self.config.episodes
                )));
            }
            // A checkpoint ending mid-batch (the final snapshot of a
            // finished run whose last batch was partial) can only stand
            // in for a run with that same episode budget.
            let on_boundary = ckpt.episode % self.config.reinforce_batch as u32 == 0;
            if !on_boundary && ckpt.episode != self.config.episodes {
                return Err(MuffinError::StaleArtifact(format!(
                    "checkpoint {} ends mid-batch at episode {} (written by a {}-episode run); \
                     it can only resume a run with that same episode budget",
                    path.display(),
                    ckpt.episode,
                    ckpt.target_episodes
                )));
            }
            match &relation {
                PoolRelation::Identical => controller.import_state(ckpt.controller)?,
                PoolRelation::Grew { added } => {
                    // Warm start over the grown pool: rebuild the
                    // controller for the new space from a deterministic
                    // extension stream (so the new models' logits and
                    // embedding rows are reproducible), then graft every
                    // learned parameter and optimizer moment back in.
                    let ext_seed =
                        SplitMix64::new(ckpt.seed_stream_seed ^ fnv1a64(b"pool-extension"))
                            .next_u64();
                    controller = RnnController::new(
                        space.clone(),
                        self.config.controller,
                        &mut Rng64::seed(ext_seed),
                    );
                    controller.import_extended(&ckpt.fingerprint.space, ckpt.controller)?;
                    pool_grew = true;
                    let names: Vec<String> =
                        added.iter().map(ToString::to_string).collect();
                    tracer.progress(|| {
                        format!(
                            "pool grew since checkpoint: warm-starting over {} added model(s): {}",
                            names.len(),
                            names.join(", ")
                        )
                    });
                }
                // load_for_resume never returns Changed.
                PoolRelation::Changed { .. } => {
                    return Err(MuffinError::StaleArtifact(
                        "checkpoint pool relation must be identical or grown".into(),
                    ))
                }
            }
            *rng = Rng64::from_state(ckpt.rng_state);
            seed_stream_seed = ckpt.seed_stream_seed;
            episode = ckpt.episode;
            history = ckpt.history;
            exchanges_applied = ckpt.exchanges_applied;
            for record in ckpt.cache {
                cache.insert(record.actions.clone(), record);
            }
            tracer.progress(|| format!("resumed from {} at episode {episode}", path.display()));
        } else {
            seed_stream_seed = rng.next_u64();
            episode = 0;
            history = Vec::with_capacity(self.config.episodes as usize);
        }

        if let Some(path) = &opts.eval_cache {
            let fp = fingerprint.as_ref().expect("eval cache path set");
            let loaded = EvalCacheFile::load_warm(path, fp, opts.eval_cache_shared)?;
            if let Some((mut file, relation)) = loaded {
                if matches!(relation, PoolRelation::Grew { .. }) {
                    // The cache predates the pool extension: translate
                    // every record's chosen models through their content
                    // ids into current pool indices (the identity map
                    // under prefix growth, but keyed by id on principle).
                    let dropped = file.rekey_records(space.num_slots(), &self.pool.manifest());
                    if dropped > 0 {
                        tracer.progress(|| {
                            format!(
                                "eval cache {}: dropped {dropped} record(s) naming models \
                                 absent from the current pool",
                                path.display()
                            )
                        });
                    }
                }
                tracer.progress(|| {
                    format!(
                        "eval cache {}: {} record(s)",
                        path.display(),
                        file.records.len()
                    )
                });
                for record in file.records {
                    disk_origin.insert(record.actions.clone());
                    // A resumed checkpoint's entry wins, though the two
                    // are bit-identical whenever both exist.
                    cache.entry(record.actions.clone()).or_insert(record);
                }
            }
        }

        // After a pool extension, the cached records were re-keyed through
        // model content ids. Re-validate the best candidate so far from
        // the cache before searching on: its action vector must still
        // unite exactly the models its episode recorded, or the re-keying
        // (or a pool edit the fingerprint could not see) scrambled model
        // identity.
        if pool_grew {
            let best = history
                .iter()
                .max_by(|a, b| a.reward.total_cmp(&b.reward));
            if let Some(best) = best {
                match cache.get(&best.actions) {
                    Some(record) if record.model_names == best.model_names => {
                        // Served from cache, not re-evaluated; the disk
                        // counter keeps its meaning of "episodes answered
                        // by records loaded from --eval-cache".
                        if disk_origin.contains(&best.actions) {
                            tracer.count("search.cache_hit_disk", 1);
                        }
                        let names = record.model_names.join(" + ");
                        tracer.progress(|| {
                            format!("re-validated best candidate ({names}) from the eval cache")
                        });
                    }
                    Some(record) => {
                        return Err(MuffinError::StaleArtifact(format!(
                            "eval cache re-keying maps the best candidate to {}, but its \
                             episode recorded {}",
                            record.model_names.join(" + "),
                            best.model_names.join(" + ")
                        )))
                    }
                    None => {}
                }
            }
        }

        // Per-episode head seeds, pre-derived so evaluation order (and the
        // cache hit pattern) can never perturb the controller's stream.
        let mut seed_stream = SplitMix64::new(seed_stream_seed);
        let head_seeds: Vec<u64> = (0..self.config.episodes)
            .map(|_| seed_stream.next_u64())
            .collect();

        // Frozen-body outputs never change within a run: compute each
        // (model × split) forward once, lazily, and share the results
        // read-only across all candidate evaluations and workers.
        let body_caches = self.body_cache.then(|| RunBodyCaches {
            proxy: crate::BodyOutputCache::new(
                &self.pool,
                self.split
                    .train
                    .features()
                    .select_rows(self.proxy.indices()),
            ),
            val: crate::BodyOutputCache::new(&self.pool, self.split.val.features().clone()),
            proxy_labels: self
                .proxy
                .indices()
                .iter()
                .map(|&i| self.split.train.labels()[i])
                .collect(),
        });
        let mut last_body_hits = 0u64;
        let mut last_body_misses = 0u64;

        // Replay best-candidate tracking over the (possibly restored)
        // history; identical to having tracked it live.
        let mut best_idx = 0usize;
        let mut best_reward = f32::MIN;
        for (i, record) in history.iter().enumerate() {
            if record.reward > best_reward {
                best_reward = record.reward;
                best_idx = i;
            }
        }

        let mut last_checkpoint = episode;
        while episode < self.config.episodes {
            let mut batch_span = tracer.span("search.batch");
            let batch_len =
                (self.config.reinforce_batch as u32).min(self.config.episodes - episode) as usize;

            // Phase 1: sample the whole batch under the frozen policy.
            let sampled: Vec<crate::SampledEpisode> =
                (0..batch_len).map(|_| controller.sample(rng)).collect();

            // Phase 2: evaluate each distinct uncached action vector once,
            // keyed to the episode of its first occurrence in this batch.
            let mut jobs: Vec<(usize, Candidate, u64)> = Vec::new();
            for (k, s) in sampled.iter().enumerate() {
                let fresh = !cache.contains_key(&s.actions)
                    && !jobs
                        .iter()
                        .any(|&(j, _, _)| sampled[j].actions == s.actions);
                if fresh {
                    let seed = head_seeds[episode as usize + k];
                    jobs.push((k, space.decode(&s.actions)?, seed));
                }
            }
            batch_span.field("episodes", batch_len);
            // Worker-queue occupancy: distinct uncached candidates handed
            // to the pool this batch.
            batch_span.field("jobs", jobs.len());
            tracer.count("search.cache_miss", jobs.len() as u64);
            tracer.count("search.cache_hit", (batch_len - jobs.len()) as u64);
            // Episodes served by records loaded from --eval-cache. Only
            // emitted when non-zero so cold runs keep their exact
            // pre-persistence trace shape.
            let disk_hits = sampled
                .iter()
                .filter(|s| disk_origin.contains(&s.actions))
                .count() as u64;
            if disk_hits > 0 {
                tracer.count("search.cache_hit_disk", disk_hits);
            }

            // Workers measure their own durations and record into per-job
            // forks; the forks are absorbed below in job order, so the
            // event log is identical for every worker count.
            let forks: Vec<Tracer> = jobs.iter().map(|_| tracer.fork()).collect();
            let evaluated = pool.map(&jobs, |idx, (_, candidate, seed)| {
                let eval_start = Instant::now();
                let result = match &body_caches {
                    Some(caches) => self.evaluate_candidate_cached(
                        candidate,
                        caches,
                        &self.split.val,
                        *seed,
                        &forks[idx],
                    ),
                    None => self.evaluate_candidate_traced(
                        candidate,
                        &self.split.val,
                        *seed,
                        &forks[idx],
                    ),
                };
                (result, eval_start.elapsed())
            });
            // All evaluations are done (pool.map is a barrier), so the
            // per-batch hit/miss deltas are deterministic at any worker
            // count; emitted from this thread to keep the log shape fixed.
            if let Some(caches) = &body_caches {
                let hits = caches.proxy.hits() + caches.val.hits();
                let misses = caches.proxy.misses() + caches.val.misses();
                tracer.count("fusing.body_cache_hit", hits - last_body_hits);
                tracer.count("fusing.body_cache_miss", misses - last_body_misses);
                last_body_hits = hits;
                last_body_misses = misses;
            }
            let mut eval_time: HashMap<Vec<usize>, Duration> = HashMap::new();
            for ((&(k, ref candidate, seed), (result, took)), fork) in
                jobs.iter().zip(evaluated).zip(&forks)
            {
                tracer.absorb(fork);
                eval_time.insert(sampled[k].actions.clone(), took);
                let (fusing, eval) = result?;
                let first_seen = episode + k as u32;
                let reward =
                    self.config
                        .reward_kind
                        .evaluate(&eval, &target_names, self.config.reward);
                let unfairness = target_names
                    .iter()
                    .map(|n| eval.attribute(n).map_or(f32::NAN, |a| a.unfairness))
                    .collect();
                let record = EpisodeRecord {
                    episode: first_seen,
                    actions: sampled[k].actions.clone(),
                    model_names: candidate
                        .model_indices
                        .iter()
                        .filter_map(|&i| self.pool.get(i))
                        .map(|m| m.name().to_string())
                        .collect(),
                    head_desc: candidate.head.to_string(),
                    accuracy: eval.accuracy,
                    unfairness,
                    reward,
                    head_params: fusing.head_param_count(),
                    total_params: fusing.total_reported_params(&self.pool),
                    head_seed: seed,
                    first_seen,
                };
                cache.insert(sampled[k].actions.clone(), record);
            }

            // Phase 3: merge records in episode order and update the
            // policy once per batch (Eq. 4 with m = batch_len).
            let mut pending: Vec<(crate::SampledEpisode, f32)> = Vec::with_capacity(batch_len);
            for (k, s) in sampled.into_iter().enumerate() {
                let mut record = cache
                    .get(&s.actions)
                    .expect("evaluated or cached above")
                    .clone();
                record.episode = episode + k as u32;
                if record.reward > best_reward {
                    best_reward = record.reward;
                    best_idx = history.len();
                }
                if tracer.is_enabled() {
                    let cached = record.first_seen != record.episode;
                    let took = if cached {
                        Duration::ZERO
                    } else {
                        eval_time.get(&s.actions).copied().unwrap_or(Duration::ZERO)
                    };
                    let mut fields = vec![
                        Field::new("episode", record.episode as usize),
                        Field::new("first_seen", record.first_seen as usize),
                        Field::new("cached", i64::from(cached)),
                        Field::new("reward", record.reward),
                        Field::new("accuracy", record.accuracy),
                    ];
                    for (name, u) in target_names.iter().zip(&record.unfairness) {
                        fields.push(Field::new(format!("U_{name}"), *u));
                    }
                    tracer.record_span("search.episode", fields, took);
                }
                pending.push((s, record.reward));
                history.push(record);
            }
            controller.update_batch(&pending);
            episode += batch_len as u32;
            batch_span.finish();
            tracer.progress(|| {
                format!(
                    "episode {episode}/{}: {} new evaluation(s), best reward {best_reward:.3}",
                    self.config.episodes,
                    jobs.len(),
                )
            });

            // The batch boundary is the only point the whole loop state
            // is summarised by (rng, controller, history, cache) — the
            // only point a checkpoint can resume from without drift.
            let halting = opts
                .halt_after
                .is_some_and(|h| episode >= h && episode < self.config.episodes);
            if let (Some(path), Some(fp)) = (&opts.checkpoint, &fingerprint) {
                let due = episode - last_checkpoint >= opts.checkpoint_every
                    || episode == self.config.episodes
                    || halting;
                if due {
                    let mut cache_records: Vec<EpisodeRecord> = cache.values().cloned().collect();
                    cache_records.sort_by(|a, b| a.actions.cmp(&b.actions));
                    let ckpt = SearchCheckpoint {
                        version: CHECKPOINT_VERSION,
                        fingerprint: fp.clone(),
                        target_episodes: self.config.episodes,
                        episode,
                        rng_state: rng.state(),
                        seed_stream_seed,
                        controller: controller.export_state(),
                        history: history.clone(),
                        cache: cache_records,
                        exchanges_applied,
                    };
                    ckpt.save(path)?;
                    last_checkpoint = episode;
                    tracer.count("search.checkpoint_write", 1);
                }
            }
            if halting {
                self.write_eval_cache(opts, &fingerprint, &cache)?;
                run_span.finish();
                return Err(MuffinError::Halted { episode });
            }
        }
        run_span.finish();
        self.write_eval_cache(opts, &fingerprint, &cache)?;

        Ok(SearchOutcome {
            history,
            best_by_reward: best_idx,
            target_attributes: self.config.target_attributes.clone(),
        })
    }

    /// Rewrites the cross-run evaluation cache (when configured) with the
    /// union of what was loaded and what this run evaluated, merging with
    /// any concurrent writer's entries ([`EvalCacheFile::save_merged`]).
    /// A no-op when the options mark the cache read-only.
    fn write_eval_cache(
        &self,
        opts: &PersistenceOptions,
        fingerprint: &Option<SearchFingerprint>,
        cache: &HashMap<Vec<usize>, EpisodeRecord>,
    ) -> Result<(), MuffinError> {
        let (Some(path), Some(fp)) = (&opts.eval_cache, fingerprint) else {
            return Ok(());
        };
        if opts.eval_cache_read_only {
            return Ok(());
        }
        let mut records: Vec<EpisodeRecord> = cache.values().cloned().collect();
        records.sort_by(|a, b| a.actions.cmp(&b.actions));
        let file = EvalCacheFile {
            version: CHECKPOINT_VERSION,
            fingerprint: fp.clone(),
            records,
        };
        file.save_merged(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_data::IsicLike;
    use muffin_models::{Architecture, BackboneConfig};

    fn setup(episodes: u32) -> (MuffinSearch, Rng64) {
        let mut rng = Rng64::seed(77);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[
                Architecture::resnet18(),
                Architecture::densenet121(),
                Architecture::shufflenet_v2_x1_0(),
            ],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let config = SearchConfig::fast(&["age", "site"]).with_episodes(episodes);
        let search = MuffinSearch::new(pool, split, config).expect("valid search");
        (search, rng)
    }

    #[test]
    fn construction_builds_proxy_and_privilege() {
        let (search, _) = setup(5);
        assert!(!search.proxy().is_empty());
        assert_eq!(search.privilege().len(), 2);
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let mut rng = Rng64::seed(1);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let err = MuffinSearch::new(pool, split, SearchConfig::fast(&["nope"])).unwrap_err();
        assert_eq!(err, MuffinError::UnknownAttribute("nope".into()));
    }

    #[test]
    fn zero_episodes_is_invalid() {
        let mut rng = Rng64::seed(2);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let err = MuffinSearch::new(pool, split, SearchConfig::fast(&["age"]).with_episodes(0))
            .unwrap_err();
        assert!(matches!(err, MuffinError::InvalidConfig(_)));
    }

    #[test]
    fn run_produces_one_record_per_episode() {
        let (search, mut rng) = setup(6);
        let outcome = search.run(&mut rng).expect("search runs");
        assert_eq!(outcome.history.len(), 6);
        assert_eq!(outcome.target_attributes, vec!["age", "site"]);
        for r in &outcome.history {
            assert_eq!(r.unfairness.len(), 2);
            assert!(r.reward.is_finite());
            assert!(r.accuracy > 0.0);
            assert!(r.total_params > 1_000_000);
        }
    }

    #[test]
    fn best_record_has_max_reward() {
        let (search, mut rng) = setup(8);
        let outcome = search.run(&mut rng).expect("search runs");
        let max = outcome
            .history
            .iter()
            .map(|r| r.reward)
            .fold(f32::MIN, f32::max);
        assert_eq!(outcome.best().reward, max);
    }

    #[test]
    fn cached_candidates_reuse_metrics() {
        let (search, mut rng) = setup(12);
        let outcome = search.run(&mut rng).expect("search runs");
        let distinct = outcome.distinct();
        // With a tiny space and 12 episodes there are usually repeats; at
        // minimum distinct <= total.
        assert!(distinct.len() <= outcome.history.len());
        // Records with equal actions must carry equal rewards.
        for r in &outcome.history {
            let first = outcome
                .history
                .iter()
                .find(|o| o.actions == r.actions)
                .expect("exists");
            assert_eq!(first.reward, r.reward);
            assert_eq!(first.head_seed, r.head_seed);
        }
    }

    #[test]
    fn rebuild_reproduces_recorded_metrics() {
        let (search, mut rng) = setup(4);
        let outcome = search.run(&mut rng).expect("search runs");
        let record = outcome.best();
        let fusing = search.rebuild(record).expect("rebuild");
        let eval = fusing.evaluate(search.pool(), &search.split().val);
        assert!(
            (eval.accuracy - record.accuracy).abs() < 1e-6,
            "rebuild must be exact"
        );
    }

    #[test]
    fn outcome_json_round_trips() {
        let (search, mut rng) = setup(4);
        let outcome = search.run(&mut rng).expect("search runs");
        let path = std::env::temp_dir().join("muffin_outcome_roundtrip.json");
        outcome.save_json(&path).expect("save");
        let loaded = SearchOutcome::load_json(&path).expect("load");
        assert_eq!(loaded.history.len(), outcome.history.len());
        assert_eq!(loaded.best().actions, outcome.best().actions);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_outcome_error_carries_line_and_column() {
        let path = std::env::temp_dir().join("muffin_outcome_malformed.json");
        // Stray comma on line 2.
        std::fs::write(&path, "{\n  \"history\": [,]\n}").expect("write");
        let msg = SearchOutcome::load_json(&path).unwrap_err();
        assert!(msg.contains("line 2"), "missing line in: {msg}");
        assert!(msg.contains("column"), "missing column in: {msg}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn united_selectors_skip_single_model_bodies() {
        let (search, mut rng) = setup(10);
        let outcome = search.run(&mut rng).expect("search runs");
        if let Some(r) = outcome.best_united_for_attribute(0) {
            assert!(r.model_names.len() >= 2);
        }
        if let Some(r) = outcome.best_united_balanced() {
            assert!(r.model_names.len() >= 2);
        }
    }

    fn synthetic_record(episode: u32, unfairness: Vec<f32>, reward: f32) -> EpisodeRecord {
        EpisodeRecord {
            episode,
            actions: vec![episode as usize, 0, 0],
            model_names: vec!["A".into(), "B".into()],
            head_desc: "[8] relu".into(),
            accuracy: 0.8,
            unfairness,
            reward,
            head_params: 100,
            total_params: 2_000_000,
            head_seed: episode as u64,
            first_seen: episode,
        }
    }

    #[test]
    fn nan_unfairness_never_wins_selection() {
        // Regression: partial_cmp(..).unwrap_or(Equal) let NaN records win
        // min_by arbitrarily depending on iteration order.
        let outcome = SearchOutcome {
            history: vec![
                synthetic_record(0, vec![f32::NAN, 0.0], 9.0),
                synthetic_record(1, vec![0.3, 0.4], 1.0),
                synthetic_record(2, vec![0.2, f32::INFINITY], 2.0),
                synthetic_record(3, vec![0.5, 0.1], 3.0),
            ],
            best_by_reward: 0,
            target_attributes: vec!["age".into(), "site".into()],
        };
        // Attribute 0: NaN (record 0) excluded; 0.2 (record 2) wins.
        assert_eq!(outcome.best_for_attribute(0).unwrap().episode, 2);
        // Attribute 1: record 0 has unfairness 0.0 — finite, so it wins.
        assert_eq!(outcome.best_for_attribute(1).unwrap().episode, 0);
        // Balanced: records 0 (NaN) and 2 (∞) excluded; among the finite
        // records, 3 sums to 0.6 and beats 1's 0.7.
        assert_eq!(outcome.best_balanced().unwrap().episode, 3);
        assert_eq!(outcome.best_united_for_attribute(0).unwrap().episode, 2);
        assert_eq!(outcome.best_united_balanced().unwrap().episode, 3);
    }

    #[test]
    fn all_nan_history_selects_nothing() {
        let outcome = SearchOutcome {
            history: vec![synthetic_record(0, vec![f32::NAN], 1.0)],
            best_by_reward: 0,
            target_attributes: vec!["age".into()],
        };
        assert!(outcome.best_for_attribute(0).is_none());
        assert!(outcome.best_balanced().is_none());
        assert!(outcome.best_united_for_attribute(0).is_none());
        assert!(outcome.best_united_balanced().is_none());
    }

    #[test]
    fn head_seeds_follow_the_pinned_splitmix_stream() {
        // The per-episode head-seed derivation is a frozen contract: the
        // controller consumes the caller's RNG first, then one draw seeds a
        // SplitMix64 stream whose k-th output is episode k's head seed.
        let (search, rng) = setup(8);
        let mut replay = rng.clone();
        let outcome = search.run(&mut rng.clone()).expect("search runs");

        let _controller =
            RnnController::new(search.space(), search.config().controller, &mut replay);
        let mut stream = SplitMix64::new(replay.next_u64());
        let expected: Vec<u64> = (0..8).map(|_| stream.next_u64()).collect();
        for r in &outcome.history {
            assert_eq!(
                r.head_seed, expected[r.first_seen as usize],
                "episode {} (first seen {}) diverged from the seed stream",
                r.episode, r.first_seen
            );
        }
        // 64-bit stream seeds: distinct across first occurrences (the old
        // 32-bit-entropy derivation collided readily).
        let mut firsts: Vec<u64> = outcome.distinct().iter().map(|r| r.head_seed).collect();
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), outcome.distinct().len());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let (search, rng) = setup(9);
        let serial = search
            .run_with_pool(&mut rng.clone(), &WorkerPool::serial())
            .expect("serial run");
        for workers in [2usize, 4] {
            let parallel = search
                .run_with_pool(&mut rng.clone(), &WorkerPool::new(workers))
                .expect("parallel run");
            assert_eq!(serial.best_by_reward, parallel.best_by_reward);
            assert_eq!(serial.history.len(), parallel.history.len());
            for (s, p) in serial.history.iter().zip(&parallel.history) {
                assert_eq!(s.actions, p.actions);
                assert_eq!(s.reward.to_bits(), p.reward.to_bits());
                assert_eq!(s.accuracy.to_bits(), p.accuracy.to_bits());
                assert_eq!(s.head_seed, p.head_seed);
                assert_eq!(s.first_seen, p.first_seen);
            }
        }
    }

    #[test]
    fn batched_reinforce_runs_and_fills_history() {
        let (mut search, rng) = setup(10);
        // Exercise a partial final batch (10 episodes, batch of 4).
        search.config.reinforce_batch = 4;
        let outcome = search.run(&mut rng.clone()).expect("search runs");
        assert_eq!(outcome.history.len(), 10);
        for (i, r) in outcome.history.iter().enumerate() {
            assert_eq!(r.episode, i as u32);
            assert!(r.first_seen <= r.episode);
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_strips_deterministically() {
        let (search, rng) = setup(6);
        let untraced = search.run(&mut rng.clone()).expect("untraced run");

        let run_traced = |workers: &WorkerPool| {
            let (fresh, traced_rng) = setup(6);
            let tracer = Tracer::capturing();
            let fresh = fresh.with_tracer(tracer.clone());
            let outcome = fresh
                .run_with_pool(&mut traced_rng.clone(), workers)
                .expect("traced run");
            (outcome, tracer.finish())
        };
        let (serial_outcome, serial_log) = run_traced(&WorkerPool::serial());
        let (parallel_outcome, parallel_log) = run_traced(&WorkerPool::new(3));

        // Tracing must not perturb the search.
        for (a, b) in untraced.history.iter().zip(&serial_outcome.history) {
            assert_eq!(a.actions, b.actions);
            assert_eq!(a.reward.to_bits(), b.reward.to_bits());
        }
        assert_eq!(
            muffin_json::to_string(&serial_outcome),
            muffin_json::to_string(&parallel_outcome),
        );

        // The event log (modulo timings) is identical at any worker count.
        assert_eq!(
            muffin_json::to_string(&serial_log.stripped()),
            muffin_json::to_string(&parallel_log.stripped()),
        );

        // The log carries the promised structure.
        let count = |name: &str| serial_log.events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("search.run"), 1);
        assert_eq!(count("search.episode"), 6);
        let distinct = serial_outcome.distinct().len();
        assert_eq!(count("fusing.train_head"), distinct);
        assert_eq!(
            count("nn.epoch"),
            distinct * search.config().head.epochs as usize
        );
        let hits = serial_log
            .events
            .iter()
            .find(|e| e.name == "search.cache_hit")
            .expect("cache-hit counter");
        assert_eq!(
            hits.data,
            muffin_trace::EventData::Counter {
                value: (6 - distinct) as u64
            }
        );
    }

    #[test]
    fn best_for_attribute_minimises_that_attribute() {
        let (search, mut rng) = setup(8);
        let outcome = search.run(&mut rng).expect("search runs");
        let best_age = outcome.best_for_attribute(0).expect("non-empty");
        for r in outcome.distinct() {
            assert!(best_age.unfairness[0] <= r.unfairness[0] + 1e-6);
        }
        let balanced = outcome.best_balanced().expect("non-empty");
        let sum: f32 = balanced.unfairness.iter().sum();
        for r in outcome.distinct() {
            assert!(sum <= r.unfairness.iter().sum::<f32>() + 1e-6);
        }
    }
}
