use crate::{EpisodeRecord, MuffinSearch, SearchOutcome};
use muffin_tensor::Rng64;
use std::collections::HashMap;

/// A uniform-random search over the same space as [`MuffinSearch::run`].
///
/// This is the controller ablation: the paper attributes Muffin's
/// efficiency to the REINFORCE-trained RNN controller; random search over
/// the identical candidate space, with the identical per-candidate
/// training and reward, isolates how much the controller contributes.
/// The `ablation_controller` bench binary compares best-reward-so-far
/// curves of the two.
///
/// # Example
///
/// ```no_run
/// use muffin::{random_search, MuffinSearch, SearchConfig};
/// # use muffin_data::IsicLike;
/// # use muffin_models::{Architecture, BackboneConfig, ModelPool};
/// # use muffin_tensor::Rng64;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut rng = Rng64::seed(0);
/// # let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
/// # let pool = ModelPool::train(&split.train, &[Architecture::resnet18()],
/// #     &BackboneConfig::fast(), &mut rng);
/// let search = MuffinSearch::new(pool, split, SearchConfig::fast(&["age", "site"]))?;
/// let outcome = random_search(&search, &mut rng)?;
/// println!("random-search best reward: {:.3}", outcome.best().reward);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates candidate-construction errors, exactly like
/// [`MuffinSearch::run`].
pub fn random_search(
    search: &MuffinSearch,
    rng: &mut Rng64,
) -> Result<SearchOutcome, crate::MuffinError> {
    let tracer = search.tracer();
    let mut run_span = tracer.span("search.random");
    run_span.field("episodes", search.config().episodes as usize);
    let space = search.space();
    let sizes = space.step_sizes();
    let target_names: Vec<&str> = search
        .config()
        .target_attributes
        .iter()
        .map(String::as_str)
        .collect();
    let mut cache: HashMap<Vec<usize>, EpisodeRecord> = HashMap::new();
    let mut history = Vec::with_capacity(search.config().episodes as usize);
    let mut best_idx = 0usize;
    let mut best_reward = f32::MIN;

    for episode in 0..search.config().episodes {
        let actions: Vec<usize> = sizes.iter().map(|&n| rng.below(n)).collect();
        let record = if let Some(cached) = cache.get(&actions) {
            tracer.count("search.cache_hit", 1);
            let mut r = cached.clone();
            r.episode = episode;
            r
        } else {
            tracer.count("search.cache_miss", 1);
            let candidate = space.decode(&actions)?;
            let head_seed = rng.uniform(0.0, 1.0).to_bits() as u64 ^ (episode as u64) << 32;
            let (fusing, eval) = search.evaluate_candidate_traced(
                &candidate,
                &search.split().val,
                head_seed,
                tracer,
            )?;
            let reward =
                search
                    .config()
                    .reward_kind
                    .evaluate(&eval, &target_names, search.config().reward);
            let unfairness = target_names
                .iter()
                .map(|n| eval.attribute(n).map_or(f32::NAN, |a| a.unfairness))
                .collect();
            let record = EpisodeRecord {
                episode,
                actions: actions.clone(),
                model_names: candidate
                    .model_indices
                    .iter()
                    .filter_map(|&i| search.pool().get(i))
                    .map(|m| m.name().to_string())
                    .collect(),
                head_desc: candidate.head.to_string(),
                accuracy: eval.accuracy,
                unfairness,
                reward,
                head_params: fusing.head_param_count(),
                total_params: fusing.total_reported_params(search.pool()),
                head_seed,
                first_seen: episode,
            };
            cache.insert(actions, record.clone());
            record
        };
        if record.reward > best_reward {
            best_reward = record.reward;
            best_idx = history.len();
        }
        history.push(record);
        tracer.progress(|| {
            format!(
                "random episode {}/{}: best reward {best_reward:.3}",
                episode + 1,
                search.config().episodes,
            )
        });
    }
    run_span.finish();

    Ok(SearchOutcome {
        history,
        best_by_reward: best_idx,
        target_attributes: search.config().target_attributes.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchConfig;
    use muffin_data::IsicLike;
    use muffin_models::{Architecture, BackboneConfig, ModelPool};

    fn setup() -> (MuffinSearch, Rng64) {
        let mut rng = Rng64::seed(88);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::densenet121()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let config = SearchConfig::fast(&["age", "site"]).with_episodes(8);
        (MuffinSearch::new(pool, split, config).expect("setup"), rng)
    }

    #[test]
    fn random_search_fills_the_episode_budget() {
        let (search, mut rng) = setup();
        let outcome = random_search(&search, &mut rng).expect("runs");
        assert_eq!(outcome.history.len(), 8);
        assert!(outcome.best().reward.is_finite());
    }

    #[test]
    fn random_search_is_deterministic_per_seed() {
        let (search, _) = setup();
        let a = random_search(&search, &mut Rng64::seed(5)).expect("runs");
        let b = random_search(&search, &mut Rng64::seed(5)).expect("runs");
        let acts = |o: &SearchOutcome| {
            o.history
                .iter()
                .map(|r| r.actions.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(acts(&a), acts(&b));
    }

    #[test]
    fn random_search_candidates_are_rebuildable() {
        let (search, mut rng) = setup();
        let outcome = random_search(&search, &mut rng).expect("runs");
        let fusing = search.rebuild(outcome.best()).expect("rebuild");
        let eval = fusing.evaluate(search.pool(), &search.split().val);
        assert!((eval.accuracy - outcome.best().accuracy).abs() < 1e-6);
    }
}
