//! Distilling a fused Muffin model into a single compact student.
//!
//! Figure 9(b) of the paper shows the cost of uniting models: the fused
//! system carries every body's parameters. This extension (the repo's
//! future-work direction) recovers deployability by **distillation**: a
//! single student MLP is trained on the *fused model's* predictions over
//! the training set, inheriting much of the muffin head's fairness benefit
//! at a fraction of the parameters.

use crate::{FusingStructure, MuffinError};
use muffin_data::Dataset;
use muffin_models::ModelPool;
use muffin_nn::{Activation, ClassifierTrainer, LossKind, LrSchedule, Mlp, MlpSpec};
use muffin_tensor::{Matrix, Rng64};

/// Configuration for distilling a fused model into a student MLP.
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Hidden widths of the student network (on raw features).
    pub student_hidden: Vec<usize>,
    /// Student activation.
    pub activation: Activation,
    /// Training epochs.
    pub epochs: u32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

muffin_json::impl_json!(struct DistillConfig { student_hidden, activation, epochs, batch_size, schedule });

impl Default for DistillConfig {
    fn default() -> Self {
        Self {
            student_hidden: vec![64, 32],
            activation: Activation::Relu,
            epochs: 60,
            batch_size: 64,
            schedule: LrSchedule::paper(),
        }
    }
}

/// A distilled student with its parameter footprint.
#[derive(Debug, Clone)]
pub struct DistilledStudent {
    student: Mlp,
    teacher_params: u64,
}

impl DistilledStudent {
    /// The student network.
    pub fn student(&self) -> &Mlp {
        &self.student
    }

    /// Student parameter count.
    pub fn student_params(&self) -> usize {
        self.student.param_count()
    }

    /// The fused teacher's total reported parameters.
    pub fn teacher_params(&self) -> u64 {
        self.teacher_params
    }

    /// Compression ratio `teacher / student`.
    pub fn compression(&self) -> f64 {
        self.teacher_params as f64 / self.student_params() as f64
    }

    /// Hard predictions on raw features.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        self.student.predict(features)
    }

    /// Evaluates the student on a dataset.
    pub fn evaluate(&self, dataset: &Dataset) -> muffin_models::ModelEvaluation {
        muffin_models::ModelEvaluation::of(
            &self.predict(dataset.features()),
            dataset,
            format!("distilled[{:?}]", self.student.spec().hidden()),
        )
    }
}

/// Distills `fusing` (the teacher) into a single student MLP trained on
/// the teacher's predictions over `train`.
///
/// Hard-label distillation is used: the student fits the teacher's argmax
/// outputs with cross-entropy. The teacher's fairness behaviour transfers
/// because the student learns the *corrected* labels on unprivileged
/// regions, not the original annotations' error pattern.
///
/// # Errors
///
/// Returns [`MuffinError::InvalidConfig`] if the student spec is
/// degenerate or `train` is empty.
pub fn distill_student(
    fusing: &FusingStructure,
    pool: &ModelPool,
    train: &Dataset,
    config: &DistillConfig,
    rng: &mut Rng64,
) -> Result<DistilledStudent, MuffinError> {
    if train.is_empty() {
        return Err(MuffinError::InvalidConfig("cannot distill on an empty dataset".into()));
    }
    if config.student_hidden.contains(&0) {
        return Err(MuffinError::InvalidConfig("student widths must be positive".into()));
    }
    let teacher_labels = fusing.predict(pool, train.features());
    let spec = MlpSpec::new(train.feature_dim(), &config.student_hidden, train.num_classes())
        .with_activation(config.activation);
    let mut student = Mlp::new(&spec, rng);
    let trainer =
        ClassifierTrainer::new(config.epochs, config.batch_size).with_schedule(config.schedule);
    trainer.fit(&mut student, train.features(), &teacher_labels, None, LossKind::CrossEntropy, rng);
    Ok(DistilledStudent { student, teacher_params: fusing.total_reported_params(pool) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeadSpec, HeadTrainConfig, PrivilegeMap, ProxyDataset};
    use muffin_data::IsicLike;
    use muffin_models::{Architecture, BackboneConfig};
    use muffin_nn::accuracy;

    fn fixture() -> (FusingStructure, ModelPool, muffin_data::DatasetSplit, Rng64) {
        let mut rng = Rng64::seed(130);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::densenet121()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let age = split.train.schema().by_name("age").unwrap();
        let site = split.train.schema().by_name("site").unwrap();
        let privilege = PrivilegeMap::infer(&pool, &split.val, &[age, site], 0.02);
        let proxy = ProxyDataset::build(&split.train, &privilege).expect("proxy");
        let mut fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 12], Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("valid");
        fusing.train_head(&pool, &split.train, &proxy, &HeadTrainConfig::fast(), &mut rng);
        (fusing, pool, split, rng)
    }

    #[test]
    fn student_is_dramatically_smaller_than_teacher() {
        let (fusing, pool, split, mut rng) = fixture();
        let config = DistillConfig { epochs: 10, ..DistillConfig::default() };
        let distilled =
            distill_student(&fusing, &pool, &split.train, &config, &mut rng).expect("distills");
        assert!(
            distilled.compression() > 100.0,
            "compression {}x too small",
            distilled.compression()
        );
    }

    #[test]
    fn student_approximates_the_teacher() {
        let (fusing, pool, split, mut rng) = fixture();
        let config = DistillConfig { epochs: 25, ..DistillConfig::default() };
        let distilled =
            distill_student(&fusing, &pool, &split.train, &config, &mut rng).expect("distills");
        let teacher_preds = fusing.predict(&pool, split.test.features());
        let student_preds = distilled.predict(split.test.features());
        let agreement = accuracy(&student_preds, &teacher_preds);
        assert!(agreement > 0.6, "student/teacher agreement {agreement}");
        let teacher_acc = accuracy(&teacher_preds, split.test.labels());
        let student_acc = accuracy(&student_preds, split.test.labels());
        assert!(
            student_acc > teacher_acc - 0.15,
            "student {student_acc} lost too much vs teacher {teacher_acc}"
        );
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let (fusing, pool, split, mut rng) = fixture();
        let config = DistillConfig { student_hidden: vec![0], ..DistillConfig::default() };
        assert!(distill_student(&fusing, &pool, &split.train, &config, &mut rng).is_err());
        let empty = split.train.subset(&[]);
        assert!(distill_student(
            &fusing,
            &pool,
            &empty,
            &DistillConfig::default(),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn evaluation_reports_all_attributes() {
        let (fusing, pool, split, mut rng) = fixture();
        let config = DistillConfig { epochs: 5, ..DistillConfig::default() };
        let distilled =
            distill_student(&fusing, &pool, &split.train, &config, &mut rng).expect("distills");
        let eval = distilled.evaluate(&split.test);
        assert_eq!(eval.attributes.len(), 3);
        assert!(eval.model.contains("distilled"));
    }
}
