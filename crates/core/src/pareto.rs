//! Pareto-frontier utilities for the exploration plots (Figures 5 and 7).

/// Indices of the Pareto-optimal items when **minimising** both objectives.
///
/// An item is on the frontier if no other item is at least as good in both
/// objectives and strictly better in one. Ties are kept (both items stay).
/// The returned indices are sorted by the first objective.
///
/// # Example
///
/// ```
/// let points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (3.0, 3.0)];
/// let front = muffin::pareto_min_indices(&points, |&p| p);
/// assert_eq!(front, vec![0, 1, 2]); // (3,3) is dominated by (2,2)
/// ```
pub fn pareto_min_indices<T>(items: &[T], objective: impl Fn(&T) -> (f32, f32)) -> Vec<usize> {
    let points: Vec<(f32, f32)> = items.iter().map(&objective).collect();
    let mut front: Vec<usize> = (0..items.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, &(xj, yj))| {
                let (xi, yi) = points[i];
                j != i && xj <= xi && yj <= yi && (xj < xi || yj < yi)
            })
        })
        .collect();
    front.sort_by(|&a, &b| {
        points[a].0.partial_cmp(&points[b].0).unwrap_or(std::cmp::Ordering::Equal)
    });
    front
}

/// Indices of Pareto-optimal items when **maximising** the first objective
/// (e.g. accuracy) and **minimising** the second (e.g. unfairness).
///
/// # Example
///
/// ```
/// // (accuracy, unfairness); sorted by descending accuracy on return.
/// let points = [(0.80, 0.5), (0.82, 0.6), (0.78, 0.4), (0.79, 0.7)];
/// let front = muffin::pareto_max_min_indices(&points, |&p| p);
/// assert_eq!(front, vec![1, 0, 2]); // (0.79, 0.7) is dominated
/// ```
pub fn pareto_max_min_indices<T>(items: &[T], objective: impl Fn(&T) -> (f32, f32)) -> Vec<usize> {
    pareto_min_indices(items, |item| {
        let (maximise, minimise) = objective(item);
        (-maximise, minimise)
    })
}

/// Whether point `a` dominates point `b` under minimisation of both
/// coordinates.
pub fn dominates_min(a: (f32, f32), b: (f32, f32)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_its_own_frontier() {
        assert_eq!(pareto_min_indices(&[(1.0, 1.0)], |&p| p), vec![0]);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        let empty: [(f32, f32); 0] = [];
        assert!(pareto_min_indices(&empty, |&p| p).is_empty());
    }

    #[test]
    fn dominated_points_are_excluded() {
        let pts = [(0.0, 0.0), (1.0, 1.0), (0.5, 2.0)];
        assert_eq!(pareto_min_indices(&pts, |&p| p), vec![0]);
    }

    #[test]
    fn anti_chain_is_fully_kept() {
        let pts = [(0.0, 3.0), (1.0, 2.0), (2.0, 1.0), (3.0, 0.0)];
        assert_eq!(pareto_min_indices(&pts, |&p| p), vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_points_both_survive() {
        let pts = [(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_min_indices(&pts, |&p| p).len(), 2);
    }

    #[test]
    fn max_min_prefers_high_accuracy_low_unfairness() {
        let pts = [(0.9, 0.2), (0.8, 0.1), (0.7, 0.3)];
        let front = pareto_max_min_indices(&pts, |&p| p);
        assert!(front.contains(&0));
        assert!(front.contains(&1));
        assert!(!front.contains(&2));
    }

    #[test]
    fn dominance_predicate() {
        assert!(dominates_min((0.0, 0.0), (1.0, 0.0)));
        assert!(!dominates_min((0.0, 0.0), (0.0, 0.0)));
        assert!(!dominates_min((0.0, 1.0), (1.0, 0.0)));
    }

    #[test]
    fn frontier_is_sorted_by_first_objective() {
        let pts = [(3.0, 0.0), (0.0, 3.0), (1.5, 1.5)];
        let front = pareto_min_indices(&pts, |&p| p);
        assert_eq!(front, vec![1, 2, 0]);
    }
}
