//! Successive-halving search over the Muffin candidate space.
//!
//! A third search strategy besides the paper's REINFORCE controller and
//! plain [`crate::random_search`]: sample a wide rung of random
//! candidates, train every head with a *small* epoch budget, keep the best
//! fraction, retrain the survivors with a larger budget, and repeat. The
//! resource (head-training epochs) grows geometrically as the population
//! shrinks, so the total cost stays close to one full-budget sweep while
//! many more candidates get screened.

use crate::{EpisodeRecord, HeadTrainConfig, MuffinError, MuffinSearch, SearchOutcome};
use muffin_tensor::Rng64;

/// Configuration of a successive-halving run.
#[derive(Debug, Clone, Copy)]
pub struct HalvingConfig {
    /// Candidates sampled into the first rung.
    pub initial_population: usize,
    /// Fraction kept at each rung (e.g. `0.5` halves the population).
    pub keep_fraction: f32,
    /// Head-training epochs in the first rung.
    pub initial_epochs: u32,
    /// Multiplier applied to the epoch budget at each rung.
    pub epoch_growth: f32,
    /// Number of rungs.
    pub rungs: u32,
}

impl Default for HalvingConfig {
    fn default() -> Self {
        Self {
            initial_population: 32,
            keep_fraction: 0.5,
            initial_epochs: 8,
            epoch_growth: 2.0,
            rungs: 3,
        }
    }
}

impl HalvingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] naming the violated field.
    pub fn validate(&self) -> Result<(), MuffinError> {
        if self.initial_population == 0 {
            return Err(MuffinError::InvalidConfig("initial_population must be positive".into()));
        }
        if !(0.0..1.0).contains(&self.keep_fraction) || self.keep_fraction <= 0.0 {
            return Err(MuffinError::InvalidConfig("keep_fraction must be in (0, 1)".into()));
        }
        if self.initial_epochs == 0 || self.rungs == 0 {
            return Err(MuffinError::InvalidConfig("epochs and rungs must be positive".into()));
        }
        if self.epoch_growth < 1.0 {
            return Err(MuffinError::InvalidConfig("epoch_growth must be >= 1".into()));
        }
        Ok(())
    }
}

/// Splits an evaluation budget of `total` candidates across `rungs`
/// rungs in geometrically decreasing proportions `keep_fraction^r`,
/// conserving the total exactly.
///
/// Fractional shares are floored and the remainder is handed out one
/// evaluation at a time to the earliest rungs, so the result is always
/// non-increasing across rungs and sums to `total`. `keep_fraction` is
/// clamped into `(0, 1]`; zero `rungs` yields an empty allocation.
pub fn rung_budgets(total: u32, rungs: u32, keep_fraction: f32) -> Vec<u32> {
    if rungs == 0 {
        return Vec::new();
    }
    let keep = f64::from(keep_fraction).clamp(1e-6, 1.0);
    let weights: Vec<f64> = (0..rungs).map(|r| keep.powi(r as i32)).collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut budgets: Vec<u32> = weights
        .iter()
        .map(|w| (f64::from(total) * w / weight_sum).floor() as u32)
        .collect();
    let mut remainder = total - budgets.iter().sum::<u32>();
    let mut r = 0usize;
    while remainder > 0 {
        budgets[r] += 1;
        remainder -= 1;
        r = (r + 1) % budgets.len();
    }
    budgets
}

/// Number of candidates promoted out of a rung of `k`:
/// `⌈k · keep_fraction⌉`, at least 1 and at most `k` (0 when the rung is
/// empty).
pub fn promotion_count(k: usize, keep_fraction: f32) -> usize {
    if k == 0 {
        return 0;
    }
    ((k as f32 * keep_fraction).ceil() as usize).clamp(1, k)
}

/// Indices of the candidates promoted to the next rung: the top
/// [`promotion_count`] of `rewards` ordered by `f32::total_cmp`
/// descending. NaN rewards are **never** promoted (even if that leaves
/// fewer than the nominal count), and ties break toward the lower index,
/// so promotion is fully deterministic.
///
/// The returned indices are in rank order (best first).
pub fn promote(rewards: &[f32], keep_fraction: f32) -> Vec<usize> {
    let mut ranked: Vec<usize> = (0..rewards.len())
        .filter(|&i| !rewards[i].is_nan())
        .collect();
    ranked.sort_by(|&a, &b| rewards[b].total_cmp(&rewards[a]).then(a.cmp(&b)));
    ranked.truncate(promotion_count(rewards.len(), keep_fraction));
    ranked
}

/// Trains and evaluates one action vector with an explicit head-epoch
/// budget, bypassing the search loop's cache. When `tag_epochs` is set
/// the head description carries an `@{epochs}ep` suffix marking a
/// reduced-budget screen.
pub(crate) fn evaluate_at_epochs(
    search: &MuffinSearch,
    actions: &[usize],
    head_seed: u64,
    epochs: u32,
    episode: u32,
    tag_epochs: bool,
) -> Result<EpisodeRecord, MuffinError> {
    let space = search.space();
    let candidate = space.decode(actions)?;
    let target_names: Vec<&str> = search
        .config()
        .target_attributes
        .iter()
        .map(String::as_str)
        .collect();
    let head = HeadTrainConfig {
        epochs,
        ..search.config().head.clone()
    };
    let mut head_rng = Rng64::seed(head_seed);
    let mut fusing = crate::FusingStructure::new(
        candidate.model_indices.clone(),
        candidate.head.clone(),
        search.pool(),
        &mut head_rng,
    )?;
    fusing.train_head(
        search.pool(),
        &search.split().train,
        search.proxy(),
        &head,
        &mut head_rng,
    );
    let eval = fusing.evaluate(search.pool(), &search.split().val);
    let reward = search
        .config()
        .reward_kind
        .evaluate(&eval, &target_names, search.config().reward);
    let head_desc = if tag_epochs {
        format!("{} @{epochs}ep", candidate.head)
    } else {
        candidate.head.to_string()
    };
    Ok(EpisodeRecord {
        episode,
        actions: actions.to_vec(),
        model_names: candidate
            .model_indices
            .iter()
            .filter_map(|&i| search.pool().get(i))
            .map(|m| m.name().to_string())
            .collect(),
        head_desc,
        accuracy: eval.accuracy,
        unfairness: target_names
            .iter()
            .map(|n| eval.attribute(n).map_or(f32::NAN, |a| a.unfairness))
            .collect(),
        reward,
        head_params: fusing.head_param_count(),
        total_params: fusing.total_reported_params(search.pool()),
        head_seed,
        first_seen: episode,
    })
}

/// Runs successive halving over `search`'s candidate space and returns the
/// survivors' final-rung evaluations as a [`SearchOutcome`] (one record
/// per candidate-evaluation, across all rungs).
///
/// # Errors
///
/// Returns configuration errors up front and propagates candidate
/// construction failures.
pub fn successive_halving(
    search: &MuffinSearch,
    config: &HalvingConfig,
    rng: &mut Rng64,
) -> Result<SearchOutcome, MuffinError> {
    config.validate()?;
    let space = search.space();
    let sizes = space.step_sizes();

    // Rung 0 population: distinct random action vectors.
    let mut population: Vec<Vec<usize>> = Vec::new();
    let mut attempts = 0;
    while population.len() < config.initial_population && attempts < config.initial_population * 20
    {
        let actions: Vec<usize> = sizes.iter().map(|&n| rng.below(n)).collect();
        if !population.contains(&actions) {
            population.push(actions);
        }
        attempts += 1;
    }

    let mut history: Vec<EpisodeRecord> = Vec::new();
    let mut best_idx = 0usize;
    let mut best_reward = f32::MIN;
    let mut epochs = config.initial_epochs;
    let mut episode = 0u32;

    for rung in 0..config.rungs {
        let mut scored: Vec<(Vec<usize>, f32)> = Vec::with_capacity(population.len());
        for actions in &population {
            let head_seed = (rung as u64) << 48 ^ rng.uniform(0.0, 1.0).to_bits() as u64;
            // Rung-specific head budget.
            let record = evaluate_at_epochs(search, actions, head_seed, epochs, episode, true)?;
            let reward = record.reward;
            if reward > best_reward {
                best_reward = reward;
                best_idx = history.len();
            }
            history.push(record);
            scored.push((actions.clone(), reward));
            episode += 1;
        }
        // Keep the top fraction for the next rung (NaN never promoted).
        let rewards: Vec<f32> = scored.iter().map(|&(_, r)| r).collect();
        population = promote(&rewards, config.keep_fraction)
            .into_iter()
            .map(|i| scored[i].0.clone())
            .collect();
        epochs = ((epochs as f32) * config.epoch_growth).round() as u32;
    }

    Ok(SearchOutcome {
        history,
        best_by_reward: best_idx,
        target_attributes: search.config().target_attributes.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchConfig;
    use muffin_data::IsicLike;
    use muffin_models::{Architecture, BackboneConfig, ModelPool};

    fn setup() -> (MuffinSearch, Rng64) {
        let mut rng = Rng64::seed(120);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::densenet121()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let config = SearchConfig::fast(&["age", "site"]);
        (MuffinSearch::new(pool, split, config).expect("setup"), rng)
    }

    fn tiny_config() -> HalvingConfig {
        HalvingConfig {
            initial_population: 6,
            keep_fraction: 0.5,
            initial_epochs: 2,
            epoch_growth: 2.0,
            rungs: 2,
        }
    }

    #[test]
    fn population_shrinks_and_budget_grows() {
        let (search, mut rng) = setup();
        let outcome = successive_halving(&search, &tiny_config(), &mut rng).expect("runs");
        // Rung 0: 6 evaluations at 2 epochs; rung 1: 3 at 4 epochs.
        assert_eq!(outcome.history.len(), 9);
        let rung0 = outcome.history.iter().filter(|r| r.head_desc.ends_with("@2ep")).count();
        let rung1 = outcome.history.iter().filter(|r| r.head_desc.ends_with("@4ep")).count();
        assert_eq!(rung0, 6);
        assert_eq!(rung1, 3);
    }

    #[test]
    fn survivors_are_the_best_of_their_rung() {
        let (search, mut rng) = setup();
        let outcome = successive_halving(&search, &tiny_config(), &mut rng).expect("runs");
        let rung0: Vec<&EpisodeRecord> =
            outcome.history.iter().filter(|r| r.head_desc.ends_with("@2ep")).collect();
        let rung1: Vec<&EpisodeRecord> =
            outcome.history.iter().filter(|r| r.head_desc.ends_with("@4ep")).collect();
        let mut rung0_rewards: Vec<f32> = rung0.iter().map(|r| r.reward).collect();
        rung0_rewards.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let cutoff = rung0_rewards[2]; // top 3 of 6
        for r in rung1 {
            let origin = rung0.iter().find(|o| o.actions == r.actions).expect("from rung 0");
            assert!(origin.reward >= cutoff - 1e-6, "non-survivor advanced");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = HalvingConfig { keep_fraction: 1.5, ..tiny_config() };
        assert!(bad.validate().is_err());
        let bad = HalvingConfig { initial_population: 0, ..tiny_config() };
        assert!(bad.validate().is_err());
        let bad = HalvingConfig { epoch_growth: 0.5, ..tiny_config() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn halving_is_deterministic_per_seed() {
        let (search, _) = setup();
        let a = successive_halving(&search, &tiny_config(), &mut Rng64::seed(3)).expect("runs");
        let b = successive_halving(&search, &tiny_config(), &mut Rng64::seed(3)).expect("runs");
        let acts =
            |o: &SearchOutcome| o.history.iter().map(|r| r.actions.clone()).collect::<Vec<_>>();
        assert_eq!(acts(&a), acts(&b));
    }
}
