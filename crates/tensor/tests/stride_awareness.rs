//! Stride-awareness of the padded `Matrix` backing store.
//!
//! `Matrix` rows are padded to the SIMD lane width, so every logical
//! operation must index through the row stride and never through a dense
//! `rows * cols` layout. These suites pin that contract three ways:
//! index-oracle agreement for the block-copy operations, byte-stable JSON
//! (padding never leaves the process), and a NaN-poisoning test proving
//! no kernel or serializer ever *reads* a padding lane.

use muffin_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use muffin_tensor::{Matrix, LANE_WIDTH};

fn config() -> Config {
    Config::cases(64).with_seed(0x7E45_0206)
}

/// Generates a matrix whose column count is *not* a lane multiple (so the
/// store genuinely has padding), up to `max_dim` in either dimension.
fn gen_padded(g: &mut Gen, max_dim: usize) -> Matrix {
    let rows = g.usize_in(1..=max_dim);
    let mut cols = g.usize_in(1..=max_dim);
    if cols % LANE_WIDTH == 0 {
        cols -= 1; // 8 → 7 etc.; max_dim small enough that this stays ≥ 1
    }
    g.matrix_exact(rows, cols.max(1), -9.0, 9.0)
}

/// Overwrites every padding lane of `m` with NaN via the raw-store view.
/// Normal operation keeps padding zeroed; this deliberately violates that
/// to make any accidental read of a padding lane explode into the output.
fn poison_padding(m: &mut Matrix) {
    let (cols, stride) = (m.cols(), m.stride());
    for chunk in m.padded_data_mut().chunks_exact_mut(stride.max(1)) {
        for x in &mut chunk[cols..] {
            *x = f32::NAN;
        }
    }
}

#[test]
fn storage_is_32_byte_aligned_with_lane_stride() {
    check(
        "layout invariants",
        config(),
        |g| gen_padded(g, 13),
        |m| {
            prop_assert_eq!(
                m.stride(),
                (m.cols() + LANE_WIDTH - 1) / LANE_WIDTH * LANE_WIDTH
            );
            prop_assert!(
                m.stride() > m.cols(),
                "gen_padded must produce real padding"
            );
            prop_assert_eq!(m.padded_data().len(), m.rows() * m.stride());
            prop_assert_eq!(m.padded_data().as_ptr() as usize % 32, 0);
            // Freshly constructed storage has zeroed padding.
            let (cols, stride) = (m.cols(), m.stride());
            for chunk in m.padded_data().chunks_exact(stride) {
                prop_assert!(chunk[cols..].iter().all(|&x| x == 0.0));
            }
            Ok(())
        },
    );
}

#[test]
fn json_round_trip_is_byte_identical_and_logical_only() {
    check(
        "padded JSON == unpadded JSON",
        config(),
        |g| gen_padded(g, 11),
        |m| {
            let text = muffin_json::to_string(m);
            // An unpadded twin: same logical elements laid into a matrix whose
            // construction path never saw this instance's padded store.
            let twin = Matrix::from_vec(m.rows(), m.cols(), m.to_vec()).expect("shape");
            prop_assert_eq!(&text, &muffin_json::to_string(&twin));
            // Round trip restores every element bit (serialisation is exact).
            let back: Matrix = muffin_json::from_str(&text).map_err(|e| e.to_string())?;
            prop_assert_eq!(back.shape(), m.shape());
            for (x, y) in back.iter_rows().flatten().zip(m.iter_rows().flatten()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            Ok(())
        },
    );
}

#[test]
fn block_copy_operations_agree_with_index_oracle() {
    check(
        "hcat/select_rows_into/col_sums_into/zip_apply vs get()",
        config(),
        |g: &mut Gen| {
            let a = gen_padded(g, 9);
            let b_cols = g.usize_in(1..=9);
            let b = g.matrix_exact(a.rows(), b_cols, -9.0, 9.0);
            let picks: Vec<usize> = (0..g.usize_in(1..=6))
                .map(|_| g.usize_in(0..=a.rows() - 1))
                .collect();
            (a, b, picks)
        },
        |(a, b, picks)| {
            // hcat: element (r, c) comes from the part owning column c.
            let cat = Matrix::hcat(&[a, b]).map_err(|e| e.to_string())?;
            prop_assert_eq!(cat.shape(), (a.rows(), a.cols() + b.cols()));
            for r in 0..cat.rows() {
                for c in 0..cat.cols() {
                    let want = if c < a.cols() {
                        a.get(r, c)
                    } else {
                        b.get(r, c - a.cols())
                    };
                    prop_assert_eq!(cat.get(r, c).to_bits(), want.to_bits());
                }
            }

            // select_rows_into: row i of the output is row picks[i].
            let mut sel = Matrix::zeros(3, 3);
            a.select_rows_into(picks, &mut sel);
            prop_assert_eq!(sel.shape(), (picks.len(), a.cols()));
            for (i, &src) in picks.iter().enumerate() {
                for c in 0..a.cols() {
                    prop_assert_eq!(sel.get(i, c).to_bits(), a.get(src, c).to_bits());
                }
            }

            // col_sums_into: ascending-row fold per column.
            let mut sums = vec![f32::NAN; 2];
            a.col_sums_into(&mut sums);
            prop_assert_eq!(sums.len(), a.cols());
            for (c, &s) in sums.iter().enumerate() {
                let mut want = 0.0f32;
                for r in 0..a.rows() {
                    want += a.get(r, c);
                }
                prop_assert_eq!(s.to_bits(), want.to_bits());
            }

            // zip_apply: element-wise, logical positions only.
            let other = a.map(|x| x * 0.5 - 1.0);
            let mut applied = a.clone();
            applied.zip_apply(&other, |x, y| x - y);
            for r in 0..a.rows() {
                for c in 0..a.cols() {
                    let want = a.get(r, c) - other.get(r, c);
                    prop_assert_eq!(applied.get(r, c).to_bits(), want.to_bits());
                }
            }
            Ok(())
        },
    );
}

#[test]
fn nothing_reads_poisoned_padding() {
    check(
        "kernels and serializer ignore padding lanes",
        Config::cases(48).with_seed(0x7E45_0306),
        |g: &mut Gen| {
            let a = gen_padded(g, 10);
            let b_cols = g.usize_in(1..=10);
            let b = g.matrix_exact(a.cols(), b_cols, -6.0, 6.0);
            (a, b)
        },
        |(a, b)| {
            let (mut pa, mut pb) = (a.clone(), b.clone());
            poison_padding(&mut pa);
            poison_padding(&mut pb);

            // Every kernel output must be bitwise what the clean operands
            // give — a single padding-lane read would surface as NaN.
            let pairs = [
                (a.matmul(b), pa.matmul(&pb)),
                (a.transpose().matmul_tn(b), pa.transpose().matmul_tn(&pb)),
                (a.matmul_nt(&b.transpose()), pa.matmul_nt(&pb.transpose())),
                (a.transpose(), pa.transpose()),
                (a.softmax_rows(), pa.softmax_rows()),
                (a + a, &pa + &pa),
                (a.hadamard(a), pa.hadamard(&pa)),
                (a.scaled(-2.0), pa.scaled(-2.0)),
            ]
            .map(|(clean, poisoned)| (clean.to_vec(), poisoned.to_vec()));
            for (clean, poisoned) in &pairs {
                for (x, y) in clean.iter().zip(poisoned.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }

            // Reductions, row reads and the serializer are logical-only too.
            prop_assert_eq!(a.sum().to_bits(), pa.sum().to_bits());
            prop_assert_eq!(a.norm().to_bits(), pa.norm().to_bits());
            prop_assert_eq!(a.col_sums(), pa.col_sums());
            prop_assert_eq!(a.argmax_rows(), pa.argmax_rows());
            prop_assert_eq!(a.to_vec(), pa.to_vec());
            prop_assert_eq!(muffin_json::to_string(a), muffin_json::to_string(&pa));
            prop_assert!(pa == *a, "logical equality must ignore padding");

            // And kernels never *write* padding either: outputs produced
            // from poisoned inputs still carry pristine zero padding.
            let prod = pa.matmul(&pb);
            let (cols, stride) = (prod.cols(), prod.stride());
            for chunk in prod.padded_data().chunks_exact(stride.max(1)) {
                prop_assert!(chunk[cols..].iter().all(|&x| x == 0.0));
            }
            Ok(())
        },
    );
}

#[test]
fn resize_zeroed_scrubs_previously_poisoned_store() {
    // `resize_zeroed` re-establishes the all-zero-padding invariant even
    // if the store was deliberately corrupted beforehand.
    let mut m = Matrix::filled(4, 5, 3.0);
    poison_padding(&mut m);
    m.resize_zeroed(3, 6);
    assert!(m.padded_data().iter().all(|&x| x == 0.0));
}

#[test]
fn row_range_is_byte_identical_to_select_rows_even_with_poisoned_padding() {
    check(
        "row_range == select_rows bytes, padding stays zero",
        config(),
        |g| {
            let m = gen_padded(g, 9);
            let start = g.usize_in(0..=m.rows());
            let end = g.usize_in(start..=m.rows());
            (m, start, end)
        },
        |(m, start, end)| {
            // Poison the source's padding: the block copy must not leak it
            // into the output's (zero by contract) padding lanes.
            let mut poisoned = m.clone();
            poison_padding(&mut poisoned);
            let indices: Vec<usize> = (*start..*end).collect();
            let want = m.select_rows(&indices);
            let got = poisoned.row_range(*start..*end);
            prop_assert_eq!(got.shape(), want.shape());
            for (x, y) in got.padded_data().iter().zip(want.padded_data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            // Reuse path scrubs a previously poisoned destination too.
            let mut reused = gen_reuse_target();
            poison_padding(&mut reused);
            poisoned.row_range_into(*start..*end, &mut reused);
            for (x, y) in reused.padded_data().iter().zip(want.padded_data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            Ok(())
        },
    );
}

/// A small scratch matrix for the `row_range_into` reuse check.
fn gen_reuse_target() -> Matrix {
    Matrix::filled(3, 5, 1.25)
}

#[test]
#[should_panic(expected = "out of bounds")]
fn row_range_panics_past_the_last_row() {
    let m = Matrix::filled(4, 3, 1.0);
    let _ = m.row_range(2..5);
}
