//! Bit-for-bit equivalence of the cache-blocked matmul kernels against a
//! naive reference oracle.
//!
//! The blocked kernels (`matmul_into`, `matmul_tn_into`, `matmul_nt_into`)
//! promise that tiling changed only the *order loops visit tiles*, never
//! the per-output-element accumulation sequence — so every float they
//! produce must equal the naive triple loop's output down to the last bit
//! (NaN positions included; payload bits are compiler-unspecified, see
//! `prop_assert_bits_eq`). The oracle below is the pre-blocking kernel kept
//! verbatim (including its zero-skip fast path and lazy finiteness guard);
//! the property suites drive both through random shapes, tile-boundary
//! shapes, degenerate 1×N/N×1 shapes, NaN/∞ operands and all-zero rows.

use muffin_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use muffin_tensor::{instrument, Matrix};

fn config() -> Config {
    Config::cases(96).with_seed(0x7E45_0006)
}

/// The pre-blocking `matmul` kernel: naive i-k-j with the lazy zero-skip
/// guard. Kept as the oracle the blocked kernel must match bitwise.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    let mut skip_zeros: Option<bool> = None;
    for i in 0..m {
        for kk in 0..k {
            let av = a.get(i, kk);
            if av == 0.0
                && *skip_zeros.get_or_insert_with(|| {
                    b.iter_rows().flatten().all(|x| x.is_finite())
                })
            {
                continue;
            }
            for j in 0..n {
                out.set(i, j, out.get(i, j) + av * b.get(kk, j));
            }
        }
    }
    out
}

/// The pre-blocking `matmul_tn` kernel (Aᵀ·B without materialising Aᵀ).
fn naive_matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows());
    let (r_dim, c_dim, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(c_dim, n);
    let mut skip_zeros: Option<bool> = None;
    for r in 0..r_dim {
        for i in 0..c_dim {
            let av = a.get(r, i);
            if av == 0.0
                && *skip_zeros.get_or_insert_with(|| {
                    b.iter_rows().flatten().all(|x| x.is_finite())
                })
            {
                continue;
            }
            for j in 0..n {
                out.set(i, j, out.get(i, j) + av * b.get(r, j));
            }
        }
    }
    out
}

/// The pre-blocking `matmul_nt` kernel: one sequential-from-zero dot
/// product per output element, folded exactly like `Iterator::sum`.
fn naive_matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols());
    let (m, p) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(m, p);
    for i in 0..m {
        for j in 0..p {
            let dot: f32 = a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum();
            out.set(i, j, dot);
        }
    }
    out
}

/// Asserts two same-shape matrices are equal bit by bit for every non-NaN
/// element (+0.0 distinguished from -0.0, infinities exact) and agree on
/// NaN *positions*.
///
/// NaN payload/sign bits are deliberately not compared: when two NaNs
/// meet in an addition, IEEE 754 and LLVM both leave the surviving
/// payload unspecified, and the compiler may emit the commutative `fadd`
/// with either operand order — so two compilations of the *same* source
/// can legitimately differ in which NaN's bits survive. Everything the
/// workspace's determinism contract covers (the golden snapshot, training
/// numerics) is non-NaN, where equality really is bit-for-bit.
fn prop_assert_bits_eq(actual: &Matrix, expected: &Matrix, label: &str) -> Result<(), String> {
    prop_assert_eq!(actual.shape(), expected.shape());
    for (r, (got, want)) in actual.iter_rows().zip(expected.iter_rows()).enumerate() {
        for (c, (x, y)) in got.iter().zip(want.iter()).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "{label} diverges at ({r},{c}): {x:?} ({:#010x}) vs {y:?} ({:#010x})",
                x.to_bits(),
                y.to_bits()
            );
        }
    }
    Ok(())
}

/// Runs all three blocked kernels against their oracles on one operand
/// pair shaped for `matmul` (a: m×k, b: k×n).
fn assert_all_kernels_match(a: &Matrix, b: &Matrix) -> Result<(), String> {
    if a.cols() != b.rows() {
        // Tuple shrinking resizes `a` and `b` independently; skip the
        // shapes it decouples rather than panicking mid-shrink.
        return Ok(());
    }
    prop_assert_bits_eq(&a.matmul(b), &naive_matmul(a, b), "matmul")?;
    // Reuse the same data for the transposed variants via explicit
    // transposes, so every generated pattern exercises all three kernels.
    let at = a.transpose();
    prop_assert_bits_eq(&at.matmul_tn(b), &naive_matmul_tn(&at, b), "matmul_tn")?;
    let bt = b.transpose();
    prop_assert_bits_eq(&a.matmul_nt(&bt), &naive_matmul_nt(a, &bt), "matmul_nt")?;
    Ok(())
}

#[test]
fn blocked_kernels_match_oracle_on_random_shapes() {
    check(
        "blocked == naive on random shapes",
        config(),
        |g: &mut Gen| {
            let m = g.usize_in(1..=24);
            let k = g.usize_in(1..=24);
            let n = g.usize_in(1..=24);
            (g.matrix_exact(m, k, -8.0, 8.0), g.matrix_exact(k, n, -8.0, 8.0))
        },
        |(a, b)| assert_all_kernels_match(a, b),
    );
}

#[test]
fn blocked_kernels_match_oracle_across_tile_boundaries() {
    // The kernels tile at 64; shapes straddling 64 (and the lane width 8)
    // exercise full tiles, ragged tail tiles, and their combinations.
    let dims = [1usize, 7, 8, 9, 63, 64, 65, 70];
    check(
        "blocked == naive at tile-boundary shapes",
        Config::cases(48).with_seed(0x7E45_0106),
        |g: &mut Gen| {
            let m = dims[g.usize_in(0..=dims.len() - 1)];
            let k = dims[g.usize_in(0..=dims.len() - 1)];
            let n = dims[g.usize_in(0..=dims.len() - 1)];
            (g.matrix_exact(m, k, -4.0, 4.0), g.matrix_exact(k, n, -4.0, 4.0))
        },
        |(a, b)| assert_all_kernels_match(a, b),
    );
}

#[test]
fn blocked_kernels_match_oracle_on_vector_shapes() {
    // 1×N, N×1 and 1×1 degenerate shapes: single-row, single-column and
    // scalar products, which hit every kernel's shortest code paths.
    check(
        "blocked == naive on 1xN / Nx1 shapes",
        config(),
        |g: &mut Gen| {
            let n = g.usize_in(1..=80);
            let shape = g.usize_in(0..=2);
            let (m, k, p) = match shape {
                0 => (1, n, g.usize_in(1..=16)),
                1 => (g.usize_in(1..=16), n, 1),
                _ => (1, 1, 1),
            };
            (g.matrix_exact(m, k, -8.0, 8.0), g.matrix_exact(k, p, -8.0, 8.0))
        },
        |(a, b)| assert_all_kernels_match(a, b),
    );
}

#[test]
fn blocked_kernels_match_oracle_with_nonfinite_operands() {
    // NaN/∞ in either operand: disables the zero-skip fast path (for `b`)
    // and checks non-finite values propagate through identical paths.
    check(
        "blocked == naive with NaN/∞ operands",
        config(),
        |g: &mut Gen| {
            let m = g.usize_in(1..=12);
            let k = g.usize_in(1..=12);
            let n = g.usize_in(1..=12);
            let mut a = g.matrix_exact(m, k, -5.0, 5.0);
            let mut b = g.matrix_exact(k, n, -5.0, 5.0);
            for x in a.iter_rows_mut().flatten() {
                if g.bool(0.3) {
                    *x = 0.0;
                }
            }
            for x in b.iter_rows_mut().flatten() {
                if g.bool(0.1) {
                    *x = if g.bool(0.5) { f32::NAN } else { f32::NEG_INFINITY };
                }
            }
            (a, b)
        },
        |(a, b)| assert_all_kernels_match(a, b),
    );
}

#[test]
fn blocked_kernels_match_oracle_with_zero_rows() {
    // All-zero rows (and heavily sparse operands) drive the zero-skip
    // fast path through whole rank-4 groups and their scalar fallback.
    check(
        "blocked == naive with all-zero rows",
        config(),
        |g: &mut Gen| {
            let m = g.usize_in(2..=16);
            let k = g.usize_in(2..=16);
            let n = g.usize_in(1..=16);
            let mut a = g.matrix_exact(m, k, -5.0, 5.0);
            let mut b = g.matrix_exact(k, n, -5.0, 5.0);
            for r in 0..m {
                if g.bool(0.5) {
                    a.row_mut(r).fill(0.0);
                }
            }
            // Signed zeros too: the skip condition treats -0.0 as zero.
            for x in b.iter_rows_mut().flatten() {
                if g.bool(0.2) {
                    *x = -0.0;
                }
            }
            (a, b)
        },
        |(a, b)| assert_all_kernels_match(a, b),
    );
}

// --- finiteness pre-scan accounting -------------------------------------
//
// The blocked kernels hoist the zero-skip finiteness guard into one eager
// pre-scan of the right-hand operand per call. These tests pin the count
// via the thread-local `instrument` counter: a regression back to lazy or
// per-hit re-scanning would produce identical floats and only show up as
// a slowdown, so it is asserted structurally here.

fn scans_during(f: impl FnOnce()) -> u64 {
    let before = instrument::finiteness_scans();
    f();
    instrument::finiteness_scans() - before
}

#[test]
fn matmul_scans_its_operand_exactly_once_per_call() {
    let a = Matrix::filled(9, 7, 0.0); // all zeros: maximal skip traffic
    let b = Matrix::filled(7, 5, 2.0);
    let mut out = Matrix::zeros(0, 0);
    assert_eq!(scans_during(|| a.matmul_into(&b, &mut out)), 1);
    assert_eq!(scans_during(|| drop(a.matmul(&b))), 1);
    assert_eq!(
        scans_during(|| {
            for _ in 0..10 {
                a.matmul_into(&b, &mut out);
            }
        }),
        10,
        "one scan per call, not amortised across calls"
    );
}

#[test]
fn matmul_tn_scans_its_operand_exactly_once_per_call() {
    let a = Matrix::filled(6, 9, 0.0);
    let b = Matrix::filled(6, 4, 1.5);
    let mut out = Matrix::zeros(0, 0);
    assert_eq!(scans_during(|| a.matmul_tn_into(&b, &mut out)), 1);
}

#[test]
fn matmul_nt_never_scans() {
    // The nt kernel has no zero-skip fast path, hence nothing to guard.
    let a = Matrix::filled(5, 8, 1.0);
    let b = Matrix::filled(3, 8, 1.0);
    let mut out = Matrix::zeros(0, 0);
    assert_eq!(scans_during(|| a.matmul_nt_into(&b, &mut out)), 0);
}

#[test]
fn empty_products_do_not_scan() {
    // Early-outs (any zero dimension) return before the pre-scan.
    let a = Matrix::zeros(0, 4);
    let b = Matrix::zeros(4, 3);
    let mut out = Matrix::zeros(0, 0);
    assert_eq!(scans_during(|| a.matmul_into(&b, &mut out)), 0);
}
