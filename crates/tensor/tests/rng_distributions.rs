//! Deterministic statistical verification of the in-repo `Rng64`
//! distributions that replaced the `rand` crate. Every test pins its seed,
//! so a failure is exactly reproducible and tolerance choices are not
//! load-bearing against flakiness.

use muffin_tensor::Rng64;

#[test]
fn normal_mean_and_variance_within_tolerance() {
    let mut rng = Rng64::seed(0xC0FFEE);
    let n = 10_000;
    let samples: Vec<f64> = (0..n).map(|_| rng.normal() as f64).collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    // Standard error of the mean is 1/sqrt(10k) = 0.01; 4 sigma ≈ 0.04.
    assert!(mean.abs() < 0.04, "normal mean {mean} drifted from 0");
    assert!((var - 1.0).abs() < 0.06, "normal variance {var} drifted from 1");
    // Symmetry: P(X > 0) ≈ 0.5.
    let positive = samples.iter().filter(|&&x| x > 0.0).count() as f64 / n as f64;
    assert!((positive - 0.5).abs() < 0.02, "normal sign balance {positive}");
}

#[test]
fn normal_tail_mass_matches_gaussian() {
    let mut rng = Rng64::seed(2024);
    let n = 10_000;
    let beyond_2sigma =
        (0..n).filter(|_| rng.normal().abs() > 2.0).count() as f64 / n as f64;
    // True mass outside ±2σ is ~4.55%.
    assert!(
        (0.03..0.06).contains(&beyond_2sigma),
        "P(|X| > 2σ) = {beyond_2sigma}, expected ≈ 0.0455"
    );
}

#[test]
fn uniform_moments_and_bounds() {
    let mut rng = Rng64::seed(31337);
    let (lo, hi) = (-2.0f32, 5.0f32);
    let n = 10_000;
    let samples: Vec<f64> = (0..n).map(|_| rng.uniform(lo, hi) as f64).collect();
    assert!(samples.iter().all(|&x| (lo as f64..hi as f64).contains(&x)));
    let mean = samples.iter().sum::<f64>() / n as f64;
    let expected_mean = (lo + hi) as f64 / 2.0;
    assert!((mean - expected_mean).abs() < 0.1, "uniform mean {mean} vs {expected_mean}");
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    let expected_var = ((hi - lo) as f64).powi(2) / 12.0;
    assert!((var - expected_var).abs() < 0.2, "uniform var {var} vs {expected_var}");
}

#[test]
fn below_is_close_to_equidistributed() {
    let mut rng = Rng64::seed(99);
    let buckets = 7usize;
    let n = 70_000;
    let mut counts = vec![0usize; buckets];
    for _ in 0..n {
        counts[rng.below(buckets)] += 1;
    }
    let expected = n / buckets;
    for (i, &c) in counts.iter().enumerate() {
        let rel = (c as f64 - expected as f64).abs() / expected as f64;
        assert!(rel < 0.05, "bucket {i} count {c} deviates {rel:.3} from {expected}");
    }
}

#[test]
fn shuffle_is_a_permutation_and_mixes() {
    let mut rng = Rng64::seed(7);
    let original: Vec<usize> = (0..200).collect();
    let mut shuffled = original.clone();
    rng.shuffle(&mut shuffled);
    let mut sorted = shuffled.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, original, "shuffle must be a permutation");
    let fixed_points = shuffled.iter().zip(&original).filter(|(a, b)| a == b).count();
    // Expected number of fixed points of a random permutation is 1.
    assert!(fixed_points < 12, "{fixed_points} fixed points — barely shuffled");
}

#[test]
fn shuffle_positions_are_unbiased_enough() {
    // First-position histogram over many shuffles of [0,1,2,3]: each value
    // should land in slot 0 about a quarter of the time.
    let mut rng = Rng64::seed(12345);
    let n = 20_000;
    let mut first = [0usize; 4];
    for _ in 0..n {
        let mut v = [0usize, 1, 2, 3];
        rng.shuffle(&mut v);
        first[v[0]] += 1;
    }
    for (value, &c) in first.iter().enumerate() {
        let p = c as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.02, "value {value} leads {p:.3} of shuffles");
    }
}

#[test]
fn chance_matches_probability() {
    let mut rng = Rng64::seed(555);
    let n = 20_000;
    for &p in &[0.1f32, 0.5, 0.9] {
        let hits = (0..n).filter(|_| rng.chance(p)).count() as f64 / n as f64;
        assert!((hits - p as f64).abs() < 0.02, "chance({p}) hit rate {hits}");
    }
    assert!(!rng.chance(0.0));
    assert!(rng.chance(1.0));
}

#[test]
fn choice_covers_all_elements() {
    let mut rng = Rng64::seed(808);
    let items = ["a", "b", "c", "d", "e"];
    let mut seen = [false; 5];
    for _ in 0..400 {
        let picked = rng.choice(&items);
        seen[items.iter().position(|x| x == picked).unwrap()] = true;
    }
    assert!(seen.iter().all(|&s| s), "choice never returned some element: {seen:?}");
}

#[test]
fn streams_are_reproducible_and_seed_sensitive() {
    let a: Vec<u64> = {
        let mut rng = Rng64::seed(42);
        (0..32).map(|_| rng.next_u64()).collect()
    };
    let b: Vec<u64> = {
        let mut rng = Rng64::seed(42);
        (0..32).map(|_| rng.next_u64()).collect()
    };
    assert_eq!(a, b, "same seed must give the identical stream");
    let c: Vec<u64> = {
        let mut rng = Rng64::seed(43);
        (0..32).map(|_| rng.next_u64()).collect()
    };
    assert_ne!(a, c, "adjacent seeds must give different streams");
    // SplitMix64 seeding keeps even the all-zero seed healthy.
    let mut zero = Rng64::seed(0);
    let draws: Vec<u64> = (0..16).map(|_| zero.next_u64()).collect();
    assert!(draws.iter().any(|&x| x != 0));
}

#[test]
fn forked_streams_are_decorrelated() {
    let mut parent = Rng64::seed(1);
    let mut c1 = parent.fork();
    let mut c2 = parent.fork();
    let s1: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
    let s2: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
    assert_ne!(s1, s2);
}
