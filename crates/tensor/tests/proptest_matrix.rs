//! Property-based tests for the matrix substrate, running on the in-repo
//! `muffin-check` harness with pinned seeds.

use muffin_check::{check, prop_assert, prop_assert_eq, Config, Gen};
use muffin_tensor::{argmax, logsumexp, Matrix};

fn config() -> Config {
    Config::cases(64).with_seed(0x7E45_0001)
}

fn gen_matrix(g: &mut Gen, max_dim: usize) -> Matrix {
    g.matrix(1..=max_dim, 1..=max_dim, -10.0, 10.0)
}

#[test]
fn transpose_is_involutive() {
    check("transpose twice is identity", config(), |g| gen_matrix(g, 8), |m| {
        prop_assert_eq!(m.transpose().transpose(), *m);
        Ok(())
    });
}

#[test]
fn matmul_identity_left_and_right() {
    check("identity is matmul-neutral", config(), |g| gen_matrix(g, 6), |m| {
        let left = Matrix::identity(m.rows()).matmul(m);
        let right = m.matmul(&Matrix::identity(m.cols()));
        prop_assert_eq!(&left, m);
        prop_assert_eq!(&right, m);
        Ok(())
    });
}

#[test]
fn matmul_distributes_over_addition() {
    check(
        "A(B+C) = AB + AC",
        config(),
        |g| {
            let a = gen_matrix(g, 5);
            let cols = 4usize;
            let b = g.matrix_exact(a.cols(), cols, -1.0, 1.0);
            let c = g.matrix_exact(a.cols(), cols, -1.0, 1.0);
            (a, b, c)
        },
        |(a, b, c)| {
            let lhs = a.matmul(&(b + c));
            let rhs = &a.matmul(b) + &a.matmul(c);
            for (x, y) in lhs.iter_rows().flatten().zip(rhs.iter_rows().flatten()) {
                prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
            Ok(())
        },
    );
}

#[test]
fn matmul_tn_agrees_with_naive() {
    check(
        "matmul_tn matches transpose-then-matmul",
        config(),
        |g| {
            let a = gen_matrix(g, 6);
            let b = g.matrix_exact(a.rows(), 3, -1.0, 1.0);
            (a, b)
        },
        |(a, b)| {
            let fast = a.matmul_tn(b);
            let slow = a.transpose().matmul(b);
            for (x, y) in fast.iter_rows().flatten().zip(slow.iter_rows().flatten()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
            Ok(())
        },
    );
}

#[test]
fn softmax_rows_are_distributions() {
    check("softmax rows sum to 1", config(), |g| gen_matrix(g, 8), |m| {
        let s = m.softmax_rows();
        for row in s.iter_rows() {
            let total: f32 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
        Ok(())
    });
}

#[test]
fn softmax_argmax_matches_logit_argmax() {
    check("softmax preserves argmax", config(), |g| gen_matrix(g, 8), |m| {
        let s = m.softmax_rows();
        for (logits, probs) in m.iter_rows().zip(s.iter_rows()) {
            prop_assert_eq!(argmax(logits), argmax(probs));
        }
        Ok(())
    });
}

#[test]
fn logsumexp_bounds() {
    check(
        "max <= logsumexp <= max + ln n",
        config(),
        |g| g.vec_f32(1..=19, -50.0, 50.0),
        |v| {
            let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = logsumexp(v);
            prop_assert!(lse >= max - 1e-4);
            prop_assert!(lse <= max + (v.len() as f32).ln() + 1e-4);
            Ok(())
        },
    );
}

#[test]
fn hcat_preserves_row_contents() {
    check(
        "hcat keeps left block and fills right",
        config(),
        |g| (gen_matrix(g, 5), g.usize_in(1..=4)),
        |(a, b_cols)| {
            let b = Matrix::filled(a.rows(), *b_cols, 2.5);
            let cat = Matrix::hcat(&[a, &b]).expect("matching rows");
            prop_assert_eq!(cat.cols(), a.cols() + b_cols);
            for r in 0..a.rows() {
                prop_assert_eq!(&cat.row(r)[..a.cols()], a.row(r));
                prop_assert!(cat.row(r)[a.cols()..].iter().all(|&x| x == 2.5));
            }
            Ok(())
        },
    );
}

#[test]
fn select_rows_picks_expected_rows() {
    check("select_rows reorders rows", config(), |g| gen_matrix(g, 6), |m| {
        let indices: Vec<usize> = (0..m.rows()).rev().collect();
        let sel = m.select_rows(&indices);
        for (out_r, &src_r) in indices.iter().enumerate() {
            prop_assert_eq!(sel.row(out_r), m.row(src_r));
        }
        Ok(())
    });
}

#[test]
fn matmul_into_is_byte_identical_to_matmul() {
    check(
        "matmul_into == matmul bytes (zeros and non-finites included)",
        config(),
        |g| {
            let rows = g.usize_in(1..=6);
            let inner = g.usize_in(1..=6);
            let cols = g.usize_in(1..=6);
            let mut a = g.matrix_exact(rows, inner, -5.0, 5.0);
            let mut b = g.matrix_exact(inner, cols, -5.0, 5.0);
            // Sprinkle zeros into `a` (exercises the lazy skip-zeros guard)
            // and occasionally a NaN/∞ into `b` (exercises its slow path).
            for x in a.iter_rows_mut().flatten() {
                if g.bool(0.4) {
                    *x = 0.0;
                }
            }
            for x in b.iter_rows_mut().flatten() {
                if g.bool(0.05) {
                    *x = if g.bool(0.5) { f32::NAN } else { f32::INFINITY };
                }
            }
            (a, b)
        },
        |(a, b)| {
            let mut out = Matrix::zeros(3, 3); // stale shape, must be reset
            a.matmul_into(b, &mut out);
            let fresh = a.matmul(b);
            prop_assert_eq!(out.shape(), fresh.shape());
            for (x, y) in out.iter_rows().flatten().zip(fresh.iter_rows().flatten()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }

            // The transposed variants share the contract.
            let mut tn = Matrix::zeros(0, 0);
            a.transpose().matmul_tn_into(b, &mut tn);
            let tn_fresh = a.transpose().matmul_tn(b);
            for (x, y) in tn.iter_rows().flatten().zip(tn_fresh.iter_rows().flatten()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            let mut nt = Matrix::zeros(1, 1);
            a.matmul_nt_into(&b.transpose(), &mut nt);
            let nt_fresh = a.matmul_nt(&b.transpose());
            for (x, y) in nt.iter_rows().flatten().zip(nt_fresh.iter_rows().flatten()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            Ok(())
        },
    );
}

#[test]
fn scaled_by_zero_is_zero() {
    check("scaling by zero zeroes", config(), |g| gen_matrix(g, 6), |m| {
        let z = m.scaled(0.0);
        prop_assert!(z.iter_rows().flatten().all(|&x| x == 0.0));
        Ok(())
    });
}
