//! Property-based tests for the matrix substrate.

use muffin_tensor::{argmax, logsumexp, Matrix};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized to shape"))
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix_strategy(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_and_right(m in matrix_strategy(6)) {
        let left = Matrix::identity(m.rows()).matmul(&m);
        let right = m.matmul(&Matrix::identity(m.cols()));
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(5),
        seed in 0u64..1000,
    ) {
        // Build b and c with shapes compatible with a.
        let mut rng = muffin_tensor::Rng64::seed(seed);
        let cols = 4usize;
        let b = Matrix::from_fn(a.cols(), cols, |_, _| rng.uniform(-1.0, 1.0));
        let c = Matrix::from_fn(a.cols(), cols, |_, _| rng.uniform(-1.0, 1.0));
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_tn_agrees_with_naive(a in matrix_strategy(6), seed in 0u64..1000) {
        let mut rng = muffin_tensor::Rng64::seed(seed);
        let b = Matrix::from_fn(a.rows(), 3, |_, _| rng.uniform(-1.0, 1.0));
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix_strategy(8)) {
        let s = m.softmax_rows();
        for row in s.iter_rows() {
            let total: f32 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn softmax_argmax_matches_logit_argmax(m in matrix_strategy(8)) {
        let s = m.softmax_rows();
        for (logits, probs) in m.iter_rows().zip(s.iter_rows()) {
            prop_assert_eq!(argmax(logits), argmax(probs));
        }
    }

    #[test]
    fn logsumexp_bounds(v in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = logsumexp(&v);
        prop_assert!(lse >= max - 1e-4);
        prop_assert!(lse <= max + (v.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn hcat_preserves_row_contents(a in matrix_strategy(5), b_cols in 1usize..5) {
        let b = Matrix::filled(a.rows(), b_cols, 2.5);
        let cat = Matrix::hcat(&[&a, &b]).expect("matching rows");
        prop_assert_eq!(cat.cols(), a.cols() + b_cols);
        for r in 0..a.rows() {
            prop_assert_eq!(&cat.row(r)[..a.cols()], a.row(r));
            prop_assert!(cat.row(r)[a.cols()..].iter().all(|&x| x == 2.5));
        }
    }

    #[test]
    fn select_rows_picks_expected_rows(m in matrix_strategy(6)) {
        let indices: Vec<usize> = (0..m.rows()).rev().collect();
        let sel = m.select_rows(&indices);
        for (out_r, &src_r) in indices.iter().enumerate() {
            prop_assert_eq!(sel.row(out_r), m.row(src_r));
        }
    }

    #[test]
    fn scaled_by_zero_is_zero(m in matrix_strategy(6)) {
        let z = m.scaled(0.0);
        prop_assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }
}
