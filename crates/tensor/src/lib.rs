//! Dense matrix and vector math substrate for the Muffin fairness framework.
//!
//! The Muffin reproduction deliberately implements its own tiny numeric
//! layer rather than pulling in a full linear-algebra stack: everything the
//! framework needs is dense `f32` matrices, a handful of element-wise
//! operations, seeded random initialisation and numerically stable
//! softmax/log-softmax. Keeping the substrate small makes the neural-network
//! layer ([`muffin-nn`]) auditable end to end.
//!
//! # Example
//!
//! ```
//! use muffin_tensor::Matrix;
//!
//! # fn main() -> Result<(), muffin_tensor::ShapeError> {
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! # Ok(())
//! # }
//! ```
//!
//! [`muffin-nn`]: https://example.invalid/muffin

mod error;
mod init;
pub mod instrument;
mod matrix;
mod ops;

pub use error::ShapeError;
pub use init::{Init, Rng64, SplitMix64};
pub use matrix::{Matrix, LANE_WIDTH};
pub use ops::{argmax, logsumexp, softmax_in_place};
