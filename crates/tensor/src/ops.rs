//! Free-standing numeric kernels shared by the matrix type and the
//! neural-network layer.

/// Index of the maximum element of `row`.
///
/// Ties resolve to the earliest index, and an empty slice returns `0`; NaN
/// entries are never selected unless every entry is NaN.
///
/// # Example
///
/// ```
/// assert_eq!(muffin_tensor::argmax(&[0.2, 0.9, 0.1]), 1);
/// ```
pub fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    let mut best_val = f32::NEG_INFINITY;
    for (i, &x) in row.iter().enumerate() {
        if x > best_val {
            best_val = x;
            best = i;
        }
    }
    best
}

/// Numerically stable `log(sum(exp(row)))`.
///
/// # Example
///
/// ```
/// let lse = muffin_tensor::logsumexp(&[0.0, 0.0]);
/// assert!((lse - 2.0f32.ln()).abs() < 1e-6);
/// ```
pub fn logsumexp(row: &[f32]) -> f32 {
    if row.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = row.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Applies a numerically stable softmax to `row` in place.
///
/// An empty slice is left untouched.
///
/// # Example
///
/// ```
/// let mut row = [1.0f32, 1.0, 1.0];
/// muffin_tensor::softmax_in_place(&mut row);
/// assert!((row[0] - 1.0 / 3.0).abs() < 1e-6);
/// ```
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[1.0, 1.0, 0.0]), 0);
    }

    #[test]
    fn argmax_of_empty_is_zero() {
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f32::NAN, 0.5, 0.1]), 1);
    }

    #[test]
    fn logsumexp_handles_large_values() {
        let lse = logsumexp(&[1000.0, 1000.0]);
        assert!((lse - (1000.0 + 2.0f32.ln())).abs() < 1e-3);
    }

    #[test]
    fn logsumexp_of_empty_is_neg_inf() {
        assert_eq!(logsumexp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut row = [3.0f32, -1.0, 0.5, 2.0];
        softmax_in_place(&mut row);
        let total: f32 = row.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_preserves_ordering() {
        let mut row = [0.1f32, 2.0, -3.0];
        softmax_in_place(&mut row);
        assert!(row[1] > row[0] && row[0] > row[2]);
    }

    #[test]
    fn softmax_on_empty_is_noop() {
        let mut row: [f32; 0] = [];
        softmax_in_place(&mut row);
    }
}
