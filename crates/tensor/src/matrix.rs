use crate::{Init, Rng64, ShapeError};
use muffin_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major `f32` matrix.
///
/// This is the single tensor type used throughout the Muffin workspace.
/// Row-major layout means `data[r * cols + c]` addresses element `(r, c)`;
/// rows usually index samples and columns index features or logits.
///
/// Hot-path operations (`matmul`, element-wise arithmetic) panic on shape
/// mismatch — they sit inside training loops where a mismatch is a
/// programming error, and the panic message names the offending shapes.
/// Construction from external data is fallible ([`Matrix::from_vec`]).
///
/// # Example
///
/// ```
/// use muffin_tensor::Matrix;
///
/// # fn main() -> Result<(), muffin_tensor::ShapeError> {
/// let x = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.])?;
/// let y = x.transpose();
/// assert_eq!(y.shape(), (3, 2));
/// assert_eq!(y.get(2, 1), 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            if row.len() != n_cols {
                return Err(ShapeError::new("from_rows", (n_rows, n_cols), (n_rows, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self { rows: n_rows, cols: n_cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a randomly initialised matrix using scheme `init`.
    ///
    /// Fan-in is taken as the row count and fan-out as the column count,
    /// matching the `x · W` convention used by [`muffin-nn`]'s linear layer.
    ///
    /// [`muffin-nn`]: crate
    pub fn random(rows: usize, cols: usize, init: Init, rng: &mut Rng64) -> Self {
        Self::from_fn(rows, cols, |_, _| init.sample(rows, cols, rng))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds for {}x{}", self.rows, self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        let start = r * self.cols;
        let end = start + self.cols;
        &mut self.data[start..end]
    }

    /// View of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Reshapes to `rows`×`cols` and sets every element to zero, reusing
    /// the existing allocation whenever its capacity suffices.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites `self` with the shape and contents of `src`, reusing the
    /// existing allocation whenever its capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self · other`.
    ///
    /// Uses an `i-k-j` loop order so the inner loop streams over contiguous
    /// memory in both operands.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing the product into `out`, reusing its
    /// allocation. Accumulation order is identical to `matmul`, so the
    /// result is byte-for-byte the same.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.cols);
        // Skipping `a == 0` rows of the inner product is only sound when
        // `other` is all-finite: `0 · NaN` and `0 · ∞` are NaN and must
        // propagate, exactly as they do in `matmul_nt`. The finiteness scan
        // is O(rows·cols), so it is evaluated lazily — once, and only if a
        // zero is actually hit — instead of being paid on every call.
        let mut skip_zeros: Option<bool> = None;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0
                    && *skip_zeros.get_or_insert_with(|| other.data.iter().all(|x| x.is_finite()))
                {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Matrix product `selfᵀ · other` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] writing the product into `out`, reusing its
    /// allocation. Accumulation order is identical to `matmul_tn`, so the
    /// result is byte-for-byte the same.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.cols, other.cols);
        // Same lazy finiteness guard as `matmul_into`: the zero-skip must
        // not swallow NaN/∞ contributions from `other`, and the scan only
        // runs if a zero is actually hit.
        let mut skip_zeros: Option<bool> = None;
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            let b_row = &other.data[r * other.cols..(r + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0
                    && *skip_zeros.get_or_insert_with(|| other.data.iter().all(|x| x.is_finite()))
                {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Matrix product `self · otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing the product into `out`, reusing its
    /// allocation. Accumulation order is identical to `matmul_nt`, so the
    /// result is byte-for-byte the same.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} . ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let dot: f32 = a_row.iter().zip(b_row.iter()).map(|(a, b)| a * b).sum();
                out.data[i * other.rows + j] = dot;
            }
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape matrices element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place variant of [`Matrix::zip_map`]: `self[i] = f(self[i], other[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_apply(&mut self, other: &Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), other.shape(), "zip_apply shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, b);
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`, returning a new matrix.
    pub fn scaled(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `s * other` into `self` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, s: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
    }

    /// Adds `bias` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_in_place(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length {} != cols {}", bias.len(), self.cols);
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, &b) in row.iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// Sum of every element.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of every element, or `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sums (length `cols`).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = Vec::new();
        self.col_sums_into(&mut sums);
        sums
    }

    /// [`Matrix::col_sums`] writing into `out`, reusing its allocation.
    /// Accumulation order is identical to `col_sums`.
    pub fn col_sums_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (s, &x) in out.iter_mut().zip(row.iter()) {
                *s += x;
            }
        }
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows().map(crate::ops::argmax).collect()
    }

    /// Applies a numerically stable softmax to each row, returning a new matrix.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(out.cols.max(1)) {
            crate::ops::softmax_in_place(row);
        }
        out
    }

    /// Row-wise log-softmax, numerically stable.
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(out.cols.max(1)) {
            let lse = crate::ops::logsumexp(row);
            for x in row.iter_mut() {
                *x -= lse;
            }
        }
        out
    }

    /// Returns a matrix consisting of the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::select_rows`] writing into `out`, reusing its allocation.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
    }

    /// Horizontally concatenates matrices with equal row counts.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the row counts differ or `parts` is empty.
    pub fn hcat(parts: &[&Matrix]) -> Result<Matrix, ShapeError> {
        let first = parts.first().ok_or_else(|| ShapeError::new("hcat", (1, 1), (0, 0)))?;
        let rows = first.rows;
        // Validate every part once up front so a mismatch can't cost a
        // full-size allocation plus a partial copy.
        for m in parts {
            if m.rows != rows {
                return Err(ShapeError::new("hcat", (rows, m.cols), m.shape()));
            }
        }
        let total_cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for m in parts {
                data.extend_from_slice(m.row(r));
            }
        }
        Ok(Matrix { rows, cols: total_cols, data })
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl ToJson for Matrix {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("rows", self.rows.to_json());
        obj.insert("cols", self.cols.to_json());
        obj.insert("data", self.data.to_json());
        obj
    }
}

impl FromJson for Matrix {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let rows: usize = json.field("rows")?;
        let cols: usize = json.field("cols")?;
        let data: Vec<f32> = json.field("data")?;
        Matrix::from_vec(rows, cols, data).map_err(|e| JsonError::decode(format!("Matrix: {e}")))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows().take(8) {
            write!(f, "  [")?;
            for (i, x) in row.iter().take(10).enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x:.4}")?;
            }
            if row.len() > 10 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).expect("valid shape")
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert_eq!(err.op(), "from_rows");
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_propagates_nan_through_zero_rows() {
        // Regression: the a == 0 fast path used to turn 0 · NaN into 0.
        let a = m(1, 2, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, 2.0, 3.0, 4.0]);
        let out = a.matmul(&b);
        assert!(out.get(0, 0).is_nan(), "0 · NaN must stay NaN");
        assert_eq!(out.get(0, 1), 4.0);
    }

    #[test]
    fn matmul_propagates_infinity_through_zero_rows() {
        let a = m(1, 2, &[0.0, 0.0]);
        let b = m(2, 1, &[f32::INFINITY, 1.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan(), "0 · ∞ must stay NaN");
    }

    #[test]
    fn matmul_tn_propagates_nan_like_nt() {
        let a = m(2, 1, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, 1.0, 2.0, 3.0]);
        let tn = a.matmul_tn(&b);
        let reference = a.transpose().matmul_nt(&b.transpose());
        assert!(tn.get(0, 0).is_nan());
        assert_eq!(tn.get(0, 0).is_nan(), reference.get(0, 0).is_nan());
        assert_eq!(tn.get(0, 1), reference.get(0, 1));
    }

    #[test]
    fn matmul_zero_skip_still_exact_for_finite_inputs() {
        // The fast path must not change results where it applies: a sparse
        // operand against a finite matrix multiplies exactly.
        let a = m(2, 3, &[0.0, 2.0, 0.0, 1.0, 0.0, 3.0]);
        let b = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&b), a.matmul(&b.transpose().transpose()));
        assert_eq!(a.matmul(&b), m(2, 2, &[6., 8., 16., 20.]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[5., 6., 7., 8.]);
        let sum = &a + &b;
        assert_eq!(&sum - &b, a);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[4., 5., 6.]);
        assert_eq!(a.hadamard(&b), m(1, 3, &[4., 10., 18.]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1., 1.]);
        let b = m(1, 2, &[2., 4.]);
        a.axpy(0.5, &b);
        assert_eq!(a, m(1, 2, &[2., 3.]));
    }

    #[test]
    fn add_row_in_place_broadcasts_bias() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_in_place(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = m(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let s = a.softmax_rows();
        for row in s.iter_rows() {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = m(1, 3, &[1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for &x in s.row(0) {
            assert!((x - 1.0 / 3.0).abs() < 1e-5);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = m(1, 4, &[0.1, -0.3, 2.0, 0.7]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for (l, p) in ls.row(0).iter().zip(s.row(0)) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_finds_maxima() {
        let a = m(2, 3, &[0.1, 0.9, 0.0, 0.5, 0.2, 0.8]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn select_rows_reorders() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel, m(2, 2, &[5., 6., 1., 2.]));
    }

    #[test]
    fn hcat_concatenates_columns() {
        let a = m(2, 1, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        let c = Matrix::hcat(&[&a, &b]).expect("same rows");
        assert_eq!(c, m(2, 3, &[1., 3., 4., 2., 5., 6.]));
    }

    #[test]
    fn hcat_rejects_row_mismatch() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        assert!(Matrix::hcat(&[&a, &b]).is_err());
        // The mismatch is caught even when it sits in the last part.
        let c = Matrix::zeros(2, 4);
        assert!(Matrix::hcat(&[&a, &c, &b]).is_err());
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let a = m(2, 3, &[0.0, 2.0, f32::NAN, 1.0, 0.0, 3.0]);
        let b = m(3, 2, &[1., 2., 0., 4., 5., 6.]);
        let mut out = Matrix::zeros(7, 7); // wrong shape on purpose
        a.matmul_into(&b, &mut out);
        let expect = a.matmul(&b);
        assert_eq!(out.shape(), expect.shape());
        for (x, y) in out.as_slice().iter().zip(expect.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_tn_into_and_nt_into_match_allocating_variants() {
        let a = m(3, 2, &[1., 0., -2., 4., 0., 6.]);
        let b = m(3, 2, &[0.5, 2., 3., f32::INFINITY, 5., 6.]);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_tn_into(&b, &mut out);
        assert_eq!(out, a.matmul_tn(&b));
        let c = m(2, 2, &[1., 2., 3., 4.]);
        c.matmul_nt_into(&c, &mut out);
        assert_eq!(out, c.matmul_nt(&c));
    }

    #[test]
    fn select_rows_into_matches_select_rows() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let mut out = Matrix::zeros(9, 9);
        a.select_rows_into(&[2, 0, 2], &mut out);
        assert_eq!(out, a.select_rows(&[2, 0, 2]));
    }

    #[test]
    fn zip_apply_matches_zip_map() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[5., 6., 7., 8.]);
        let mut c = a.clone();
        c.zip_apply(&b, |x, y| x * y - 1.0);
        assert_eq!(c, a.zip_map(&b, |x, y| x * y - 1.0));
    }

    #[test]
    fn resize_zeroed_and_copy_from_reshape() {
        let mut a = m(2, 2, &[1., 2., 3., 4.]);
        a.resize_zeroed(1, 3);
        assert_eq!(a, Matrix::zeros(1, 3));
        let src = m(3, 1, &[7., 8., 9.]);
        a.copy_from(&src);
        assert_eq!(a, src);
    }

    #[test]
    fn col_sums_into_matches_col_sums() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let mut out = vec![9.0; 7];
        a.col_sums_into(&mut out);
        assert_eq!(out, a.col_sums());
    }

    #[test]
    fn col_sums_accumulate_columns() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.col_sums(), vec![5., 7., 9.]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    fn random_respects_shape_and_determinism() {
        let mut rng1 = Rng64::seed(5);
        let mut rng2 = Rng64::seed(5);
        let a = Matrix::random(3, 4, Init::HeNormal, &mut rng1);
        let b = Matrix::random(3, 4, Init::HeNormal, &mut rng2);
        assert_eq!(a, b);
        assert_eq!(a.shape(), (3, 4));
    }
}
