use crate::{Init, Rng64, ShapeError};
use muffin_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Number of `f32` lanes in one 32-byte SIMD register; rows are padded to a
/// multiple of this so every row starts on a 32-byte boundary.
pub const LANE_WIDTH: usize = 8;

/// One 32-byte-aligned group of [`LANE_WIDTH`] floats. Backing the matrix
/// store with a `Vec<Lane>` (instead of `Vec<f32>`) is what guarantees the
/// allocation itself is 32-byte aligned without a custom allocator.
#[derive(Clone, Copy)]
#[repr(C, align(32))]
struct Lane([f32; LANE_WIDTH]);

const ZERO_LANE: Lane = Lane([0.0; LANE_WIDTH]);

/// Row stride (in `f32`s) for a logical column count: `cols` rounded up to
/// the SIMD lane width. Zero iff `cols` is zero.
#[inline]
fn padded_stride(cols: usize) -> usize {
    (cols + LANE_WIDTH - 1) / LANE_WIDTH * LANE_WIDTH
}

/// Row-block size for the matmul kernels (outer-loop tiling only).
const I_BLOCK: usize = 64;
/// Shared-dimension block size for the matmul kernels.
const K_BLOCK: usize = 64;
/// Column-block size for `matmul_nt_into`'s dot-product tiling.
const J_BLOCK: usize = 64;

/// A dense, row-major `f32` matrix over an aligned, padded backing store.
///
/// This is the single tensor type used throughout the Muffin workspace.
/// Logically the matrix is row-major: element `(r, c)` lives at
/// `r * stride + c` where `stride` is `cols` rounded up to [`LANE_WIDTH`]
/// (so every row begins on a 32-byte boundary and whole rows autovectorize
/// cleanly). The padding lanes between `cols` and `stride` are storage
/// only: no accessor, kernel, or serializer ever reads them, and the JSON
/// format carries the logical shape alone.
///
/// Hot-path operations (`matmul`, element-wise arithmetic) panic on shape
/// mismatch — they sit inside training loops where a mismatch is a
/// programming error, and the panic message names the offending shapes.
/// Construction from external data is fallible ([`Matrix::from_vec`]).
///
/// # Example
///
/// ```
/// use muffin_tensor::Matrix;
///
/// # fn main() -> Result<(), muffin_tensor::ShapeError> {
/// let x = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.])?;
/// let y = x.transpose();
/// assert_eq!(y.shape(), (3, 2));
/// assert_eq!(y.get(2, 1), 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Distance in `f32`s between consecutive row starts; `cols` rounded up
    /// to [`LANE_WIDTH`]. Zero iff `cols` is zero.
    stride: usize,
    data: Vec<Lane>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let stride = padded_stride(cols);
        Self {
            rows,
            cols,
            stride,
            data: vec![ZERO_LANE; rows * stride / LANE_WIDTH],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for row in m.iter_rows_mut() {
            row.fill(value);
        }
        m
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        let mut m = Self::zeros(rows, cols);
        for (dst, src) in m.iter_rows_mut().zip(data.chunks_exact(cols.max(1))) {
            dst.copy_from_slice(src);
        }
        Ok(m)
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, ShapeError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        for row in rows {
            if row.len() != n_cols {
                return Err(ShapeError::new(
                    "from_rows",
                    (n_rows, n_cols),
                    (n_rows, row.len()),
                ));
            }
        }
        let mut m = Self::zeros(n_rows, n_cols);
        for (dst, src) in m.iter_rows_mut().zip(rows.iter()) {
            dst.copy_from_slice(src);
        }
        Ok(m)
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            let row = m.row_mut(r);
            for (c, x) in row.iter_mut().enumerate() {
                *x = f(r, c);
            }
        }
        m
    }

    /// Creates a randomly initialised matrix using scheme `init`.
    ///
    /// Fan-in is taken as the row count and fan-out as the column count,
    /// matching the `x · W` convention used by [`muffin-nn`]'s linear layer.
    ///
    /// [`muffin-nn`]: crate
    pub fn random(rows: usize, cols: usize, init: Init, rng: &mut Rng64) -> Self {
        Self::from_fn(rows, cols, |_, _| init.sample(rows, cols, rng))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row stride of the backing store in `f32`s: [`Matrix::cols`] rounded
    /// up to [`LANE_WIDTH`]. Equal to `cols` when the column count is
    /// already a lane multiple.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total number of **logical** elements (`rows * cols`; padding lanes
    /// are storage, not elements).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the matrix has zero logical elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full backing store including padding lanes, row-major with
    /// stride [`Matrix::stride`].
    ///
    /// The padding lanes (`cols..stride` of each row) carry no meaning:
    /// kernels and serializers never read them. This accessor exists for
    /// whole-buffer consumers that tolerate them — optimizer parameter
    /// visits (padding stays zero under every update rule that maps zero
    /// gradient and zero value to zero delta) and tests that deliberately
    /// poison padding to prove nothing reads it.
    pub fn padded_data(&self) -> &[f32] {
        self.buf()
    }

    /// Mutable view of the full backing store including padding lanes.
    ///
    /// See [`Matrix::padded_data`] for the contract on padding lanes.
    pub fn padded_data_mut(&mut self) -> &mut [f32] {
        self.buf_mut()
    }

    /// Copies the logical elements into a compact row-major vector of
    /// length `rows * cols` (padding lanes are dropped).
    pub fn to_vec(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len());
        for row in self.iter_rows() {
            out.extend_from_slice(row);
        }
        out
    }

    /// Consumes the matrix and returns its logical elements as a compact
    /// row-major vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.to_vec()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.buf()[r * self.stride + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let idx = r * self.stride + c;
        self.buf_mut()[idx] = v;
    }

    /// Borrow of row `r` as a slice (logical columns only, no padding).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        let start = r * self.stride;
        &self.buf()[start..start + self.cols]
    }

    /// Mutable borrow of row `r` (logical columns only, no padding).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        let start = r * self.stride;
        let end = start + self.cols;
        &mut self.buf_mut()[start..end]
    }

    /// Iterator over logical rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        let cols = self.cols;
        self.buf()
            .chunks_exact(self.stride.max(1))
            .map(move |chunk| &chunk[..cols])
    }

    /// Iterator over logical rows as mutable slices.
    pub fn iter_rows_mut(&mut self) -> impl Iterator<Item = &mut [f32]> {
        let cols = self.cols;
        let stride = self.stride.max(1);
        self.buf_mut()
            .chunks_exact_mut(stride)
            .map(move |chunk| &mut chunk[..cols])
    }

    /// Reshapes to `rows`×`cols` and sets every element (and every padding
    /// lane) to zero, reusing the existing allocation whenever its capacity
    /// suffices.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.stride = padded_stride(cols);
        let lanes = rows * self.stride / LANE_WIDTH;
        self.data.clear();
        self.data.resize(lanes, ZERO_LANE);
    }

    /// Overwrites `self` with the shape and contents of `src`, reusing the
    /// existing allocation whenever its capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.stride = src.stride;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// View of the backing store as a flat `f32` slice (including padding).
    #[inline]
    fn buf(&self) -> &[f32] {
        // SAFETY: `Lane` is `repr(C)` over `[f32; LANE_WIDTH]`, so a
        // `Vec<Lane>` is layout-compatible with a contiguous run of
        // `len * LANE_WIDTH` floats at alignment 32 >= 4.
        unsafe {
            std::slice::from_raw_parts(
                self.data.as_ptr().cast::<f32>(),
                self.data.len() * LANE_WIDTH,
            )
        }
    }

    /// Mutable view of the backing store as a flat `f32` slice.
    #[inline]
    fn buf_mut(&mut self) -> &mut [f32] {
        // SAFETY: see `buf`.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.data.as_mut_ptr().cast::<f32>(),
                self.data.len() * LANE_WIDTH,
            )
        }
    }

    /// Finiteness pre-scan of the logical elements, run **once per operand
    /// per kernel call** (counted by [`crate::instrument::finiteness_scans`]).
    fn all_finite_logical(&self) -> bool {
        crate::instrument::record_finiteness_scan();
        self.iter_rows()
            .all(|row| row.iter().all(|x| x.is_finite()))
    }

    /// Matrix product `self · other`.
    ///
    /// The kernel is cache-blocked over the two outer loops (64×64 row and
    /// shared-dimension tiles) while the inner
    /// accumulation runs over each output row in ascending `k` order — the
    /// same per-element operation sequence as the naive `i-k-j` triple
    /// loop, so results are byte-for-byte identical to it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing the product into `out`, reusing its
    /// allocation. Accumulation order is identical to `matmul`, so the
    /// result is byte-for-byte the same.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.resize_zeroed(m, n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        // Skipping `a == 0` terms of the inner product is only sound when
        // `other` is all-finite: `0 · NaN` and `0 · ∞` are NaN and must
        // propagate, exactly as they do in `matmul_nt`. The scan is hoisted
        // out of the loops and runs exactly once per call (the instrument
        // counter pins this); it touches logical elements only.
        let skip_zeros = other.all_finite_logical();
        let (sa, sb, so) = (self.stride, other.stride, out.stride);
        let (abuf, bbuf) = (self.buf(), other.buf());
        let obuf = out.buf_mut();
        for ii in (0..m).step_by(I_BLOCK) {
            let i_end = (ii + I_BLOCK).min(m);
            for kk in (0..k).step_by(K_BLOCK) {
                let k_end = (kk + K_BLOCK).min(k);
                for i in ii..i_end {
                    let a_row = &abuf[i * sa + kk..i * sa + k_end];
                    let out_row = &mut obuf[i * so..i * so + n];
                    let mut dk = 0;
                    while dk + 4 <= a_row.len() {
                        let kb = kk + dk;
                        let a4 = [a_row[dk], a_row[dk + 1], a_row[dk + 2], a_row[dk + 3]];
                        let b4 = [
                            &bbuf[kb * sb..kb * sb + n],
                            &bbuf[(kb + 1) * sb..(kb + 1) * sb + n],
                            &bbuf[(kb + 2) * sb..(kb + 2) * sb + n],
                            &bbuf[(kb + 3) * sb..(kb + 3) * sb + n],
                        ];
                        rank4_update(out_row, a4, b4, skip_zeros);
                        dk += 4;
                    }
                    while dk < a_row.len() {
                        let a = a_row[dk];
                        let kb = kk + dk;
                        if !(a == 0.0 && skip_zeros) {
                            rank1_update(out_row, a, &bbuf[kb * sb..kb * sb + n]);
                        }
                        dk += 1;
                    }
                }
            }
        }
    }

    /// Matrix product `selfᵀ · other` without materialising the transpose.
    ///
    /// Cache-blocked like [`Matrix::matmul`] (shared-dimension and column
    /// tiles on the two outer loops); per output element the shared
    /// dimension is accumulated in ascending order, byte-identical to the
    /// naive loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_tn`] writing the product into `out`, reusing its
    /// allocation. Accumulation order is identical to `matmul_tn`, so the
    /// result is byte-for-byte the same.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn shape mismatch: ({}x{})^T . {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (r_dim, c_dim, n) = (self.rows, self.cols, other.cols);
        out.resize_zeroed(c_dim, n);
        if r_dim == 0 || c_dim == 0 || n == 0 {
            return;
        }
        // Same hoisted pre-scan as `matmul_into`: one scan of `other` per
        // call guards the zero-skip path against swallowing NaN/∞.
        let skip_zeros = other.all_finite_logical();
        let (sa, sb, so) = (self.stride, other.stride, out.stride);
        let (abuf, bbuf) = (self.buf(), other.buf());
        let obuf = out.buf_mut();
        for rr in (0..r_dim).step_by(K_BLOCK) {
            let r_end = (rr + K_BLOCK).min(r_dim);
            for ii in (0..c_dim).step_by(I_BLOCK) {
                let i_end = (ii + I_BLOCK).min(c_dim);
                for i in ii..i_end {
                    let out_row = &mut obuf[i * so..i * so + n];
                    let mut r = rr;
                    while r + 4 <= r_end {
                        let a4 = [
                            abuf[r * sa + i],
                            abuf[(r + 1) * sa + i],
                            abuf[(r + 2) * sa + i],
                            abuf[(r + 3) * sa + i],
                        ];
                        let b4 = [
                            &bbuf[r * sb..r * sb + n],
                            &bbuf[(r + 1) * sb..(r + 1) * sb + n],
                            &bbuf[(r + 2) * sb..(r + 2) * sb + n],
                            &bbuf[(r + 3) * sb..(r + 3) * sb + n],
                        ];
                        rank4_update(out_row, a4, b4, skip_zeros);
                        r += 4;
                    }
                    while r < r_end {
                        let a = abuf[r * sa + i];
                        if !(a == 0.0 && skip_zeros) {
                            rank1_update(out_row, a, &bbuf[r * sb..r * sb + n]);
                        }
                        r += 1;
                    }
                }
            }
        }
    }

    /// Matrix product `self · otherᵀ` without materialising the transpose.
    ///
    /// Cache-blocked over row and column tiles; each dot product folds the
    /// shared dimension sequentially from zero, byte-identical to the naive
    /// `iter().zip().map().sum()` formulation.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] writing the product into `out`, reusing its
    /// allocation. Accumulation order is identical to `matmul_nt`, so the
    /// result is byte-for-byte the same.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt shape mismatch: {}x{} . ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, p) = (self.rows, self.cols, other.rows);
        out.resize_zeroed(m, p);
        if m == 0 || k == 0 || p == 0 {
            return;
        }
        let (sa, sb, so) = (self.stride, other.stride, out.stride);
        let (abuf, bbuf) = (self.buf(), other.buf());
        let obuf = out.buf_mut();
        for ii in (0..m).step_by(I_BLOCK) {
            let i_end = (ii + I_BLOCK).min(m);
            for jj in (0..p).step_by(J_BLOCK) {
                let j_end = (jj + J_BLOCK).min(p);
                for i in ii..i_end {
                    let a_row = &abuf[i * sa..i * sa + k];
                    let out_row = &mut obuf[i * so..i * so + p];
                    let mut j = jj;
                    // Four independent dot products share each `a` load.
                    // Accumulators start at -0.0 — the IEEE additive
                    // identity `Iterator::sum` folds from (`x + -0.0 == x`
                    // bitwise for every x, which +0.0 is not: `-0.0 + 0.0`
                    // flips to +0.0) — so each dot is bitwise `.sum()`.
                    while j + 4 <= j_end {
                        let b0 = &bbuf[j * sb..j * sb + k];
                        let b1 = &bbuf[(j + 1) * sb..(j + 1) * sb + k];
                        let b2 = &bbuf[(j + 2) * sb..(j + 2) * sb + k];
                        let b3 = &bbuf[(j + 3) * sb..(j + 3) * sb + k];
                        let (mut d0, mut d1, mut d2, mut d3) = (-0.0f32, -0.0f32, -0.0f32, -0.0f32);
                        for (&a, (((&v0, &v1), &v2), &v3)) in a_row
                            .iter()
                            .zip(b0.iter().zip(b1.iter()).zip(b2.iter()).zip(b3.iter()))
                        {
                            d0 += a * v0;
                            d1 += a * v1;
                            d2 += a * v2;
                            d3 += a * v3;
                        }
                        out_row[j] = d0;
                        out_row[j + 1] = d1;
                        out_row[j + 2] = d2;
                        out_row[j + 3] = d3;
                        j += 4;
                    }
                    while j < j_end {
                        let b_row = &bbuf[j * sb..j * sb + k];
                        let mut dot = -0.0f32;
                        for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                            dot += a * b;
                        }
                        out_row[j] = dot;
                        j += 1;
                    }
                }
            }
        }
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        let so = out.stride;
        let obuf = out.buf_mut();
        for (r, row) in self.iter_rows().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                obuf[c * so + r] = v;
            }
        }
        out
    }

    /// Applies `f` to every logical element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (dst, src) in out.iter_rows_mut().zip(self.iter_rows()) {
            for (o, &x) in dst.iter_mut().zip(src.iter()) {
                *o = f(x);
            }
        }
        out
    }

    /// Applies `f` to every logical element in place (padding untouched).
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for row in self.iter_rows_mut() {
            for x in row.iter_mut() {
                *x = f(*x);
            }
        }
    }

    /// Combines two same-shape matrices element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for ((dst, a_row), b_row) in out
            .iter_rows_mut()
            .zip(self.iter_rows())
            .zip(other.iter_rows())
        {
            for ((o, &a), &b) in dst.iter_mut().zip(a_row.iter()).zip(b_row.iter()) {
                *o = f(a, b);
            }
        }
        out
    }

    /// In-place variant of [`Matrix::zip_map`]: `self[i] = f(self[i], other[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_apply(&mut self, other: &Matrix, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape(), other.shape(), "zip_apply shape mismatch");
        for (dst, src) in self.iter_rows_mut().zip(other.iter_rows()) {
            for (a, &b) in dst.iter_mut().zip(src.iter()) {
                *a = f(*a, b);
            }
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`, returning a new matrix.
    pub fn scaled(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds `s * other` into `self` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, s: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (dst, src) in self.iter_rows_mut().zip(other.iter_rows()) {
            for (a, &b) in dst.iter_mut().zip(src.iter()) {
                *a += s * b;
            }
        }
    }

    /// Adds `bias` to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_in_place(&mut self, bias: &[f32]) {
        assert_eq!(
            bias.len(),
            self.cols,
            "bias length {} != cols {}",
            bias.len(),
            self.cols
        );
        for row in self.iter_rows_mut() {
            for (x, &b) in row.iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// Sum of every logical element (row-major fold, padding excluded).
    pub fn sum(&self) -> f32 {
        let mut s = 0.0f32;
        for row in self.iter_rows() {
            for &x in row {
                s += x;
            }
        }
        s
    }

    /// Mean of every element, or `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise sums (length `cols`).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = Vec::new();
        self.col_sums_into(&mut sums);
        sums
    }

    /// [`Matrix::col_sums`] writing into `out`, reusing its allocation.
    /// Accumulation order is identical to `col_sums`.
    pub fn col_sums_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for row in self.iter_rows() {
            for (s, &x) in out.iter_mut().zip(row.iter()) {
                *s += x;
            }
        }
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows().map(crate::ops::argmax).collect()
    }

    /// Applies a numerically stable softmax to each row, returning a new matrix.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for row in out.iter_rows_mut() {
            crate::ops::softmax_in_place(row);
        }
        out
    }

    /// Row-wise log-softmax, numerically stable.
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for row in out.iter_rows_mut() {
            let lse = crate::ops::logsumexp(row);
            for x in row.iter_mut() {
                *x -= lse;
            }
        }
        out
    }

    /// Returns a matrix consisting of the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::select_rows`] writing into `out`, reusing its allocation.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize_zeroed(indices.len(), self.cols);
        for (dst, &i) in (0..indices.len()).zip(indices.iter()) {
            let src = self.row(i);
            out.row_mut(dst).copy_from_slice(src);
        }
    }

    /// Returns a copy of the contiguous row range `range.start..range.end`.
    ///
    /// Equivalent to [`Matrix::select_rows`] on the collected range, but
    /// without materializing an index vector: contiguous rows copy as one
    /// block. Chunked prediction uses this on its hot path.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > rows` or `range.start > range.end`.
    pub fn row_range(&self, range: std::ops::Range<usize>) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.row_range_into(range, &mut out);
        out
    }

    /// [`Matrix::row_range`] writing into `out`, reusing its allocation.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > rows` or `range.start > range.end`.
    pub fn row_range_into(&self, range: std::ops::Range<usize>, out: &mut Matrix) {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row range {}..{} out of bounds for {} rows",
            range.start,
            range.end,
            self.rows
        );
        let n = range.end - range.start;
        out.resize_zeroed(n, self.cols);
        if n == 0 || self.cols == 0 {
            return;
        }
        // Equal column counts mean equal strides, so the range is one
        // contiguous block in both backing stores.
        let stride = self.stride;
        let src = &self.buf()[range.start * stride..range.end * stride];
        let dst = out.buf_mut();
        dst[..n * stride].copy_from_slice(src);
        // The block copy brought the source's padding lanes along; restore
        // the all-zero padding `resize_zeroed` guarantees so the result is
        // byte-identical to a row-by-row copy.
        if self.cols < stride {
            for r in 0..n {
                dst[r * stride + self.cols..(r + 1) * stride].fill(0.0);
            }
        }
    }

    /// Horizontally concatenates matrices with equal row counts.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the row counts differ or `parts` is empty.
    pub fn hcat(parts: &[&Matrix]) -> Result<Matrix, ShapeError> {
        let first = parts
            .first()
            .ok_or_else(|| ShapeError::new("hcat", (1, 1), (0, 0)))?;
        let rows = first.rows;
        // Validate every part once up front so a mismatch can't cost a
        // full-size allocation plus a partial copy.
        for m in parts {
            if m.rows != rows {
                return Err(ShapeError::new("hcat", (rows, m.cols), m.shape()));
            }
        }
        let total_cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, total_cols);
        for r in 0..rows {
            let dst = out.row_mut(r);
            let mut off = 0;
            for m in parts {
                dst[off..off + m.cols].copy_from_slice(m.row(r));
                off += m.cols;
            }
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        let mut sq = 0.0f32;
        for row in self.iter_rows() {
            for &x in row {
                sq += x * x;
            }
        }
        sq.sqrt()
    }
}

/// `out_row[j] += a * b_row[j]` over one logical row.
#[inline]
fn rank1_update(out_row: &mut [f32], a: f32, b_row: &[f32]) {
    for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
        *o += a * b;
    }
}

/// Applies four consecutive shared-dimension steps to `out_row`, each as
/// `o += a[t] * b[t][j]` in ascending `t` — the exact operation sequence of
/// four [`rank1_update`] passes, with 4× fewer loads/stores of `out_row`.
///
/// When `skip_zeros` is set and any coefficient is exactly zero, the group
/// falls back to per-step updates so zero terms are skipped under the same
/// condition the naive kernel used (preserving `-0.0` accumulator bits).
#[inline]
fn rank4_update(out_row: &mut [f32], a: [f32; 4], b: [&[f32]; 4], skip_zeros: bool) {
    if skip_zeros && (a[0] == 0.0 || a[1] == 0.0 || a[2] == 0.0 || a[3] == 0.0) {
        for t in 0..4 {
            if a[t] != 0.0 {
                rank1_update(out_row, a[t], b[t]);
            }
        }
        return;
    }
    let [b0, b1, b2, b3] = b;
    for (o, (((&v0, &v1), &v2), &v3)) in out_row
        .iter_mut()
        .zip(b0.iter().zip(b1.iter()).zip(b2.iter()).zip(b3.iter()))
    {
        let mut acc = *o;
        acc += a[0] * v0;
        acc += a[1] * v1;
        acc += a[2] * v2;
        acc += a[3] * v3;
        *o = acc;
    }
}

impl PartialEq for Matrix {
    /// Logical equality: shapes match and every logical element compares
    /// equal (`NaN != NaN`, as for raw `f32`). Padding lanes never
    /// participate.
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.iter_rows().zip(other.iter_rows()).all(|(a, b)| a == b)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("data", &self.to_vec())
            .finish()
    }
}

impl ToJson for Matrix {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("rows", self.rows.to_json());
        obj.insert("cols", self.cols.to_json());
        obj.insert("data", self.to_vec().to_json());
        obj
    }
}

impl FromJson for Matrix {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let rows: usize = json.field("rows")?;
        let cols: usize = json.field("cols")?;
        let data: Vec<f32> = json.field("data")?;
        Matrix::from_vec(rows, cols, data).map_err(|e| JsonError::decode(format!("Matrix: {e}")))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows().take(8) {
            write!(f, "  [")?;
            for (i, x) in row.iter().take(10).enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{x:.4}")?;
            }
            if row.len() > 10 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).expect("valid shape")
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert_eq!(err.op(), "from_rows");
    }

    #[test]
    fn storage_is_aligned_and_padded() {
        let a = Matrix::zeros(3, 5);
        assert_eq!(a.stride(), LANE_WIDTH);
        assert_eq!(a.padded_data().len(), 3 * LANE_WIDTH);
        assert_eq!(a.padded_data().as_ptr() as usize % 32, 0);
        // Lane-multiple widths stay unpadded.
        let b = Matrix::zeros(2, 16);
        assert_eq!(b.stride(), 16);
        assert_eq!(b.len(), 32);
    }

    #[test]
    fn len_counts_logical_elements_only() {
        let a = Matrix::zeros(4, 3);
        assert_eq!(a.len(), 12);
        assert!(a.padded_data().len() > a.len());
        assert!(!a.is_empty());
        assert!(Matrix::zeros(0, 7).is_empty());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_propagates_nan_through_zero_rows() {
        // Regression: the a == 0 fast path used to turn 0 · NaN into 0.
        let a = m(1, 2, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, 2.0, 3.0, 4.0]);
        let out = a.matmul(&b);
        assert!(out.get(0, 0).is_nan(), "0 · NaN must stay NaN");
        assert_eq!(out.get(0, 1), 4.0);
    }

    #[test]
    fn matmul_propagates_infinity_through_zero_rows() {
        let a = m(1, 2, &[0.0, 0.0]);
        let b = m(2, 1, &[f32::INFINITY, 1.0]);
        assert!(a.matmul(&b).get(0, 0).is_nan(), "0 · ∞ must stay NaN");
    }

    #[test]
    fn matmul_tn_propagates_nan_like_nt() {
        let a = m(2, 1, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, 1.0, 2.0, 3.0]);
        let tn = a.matmul_tn(&b);
        let reference = a.transpose().matmul_nt(&b.transpose());
        assert!(tn.get(0, 0).is_nan());
        assert_eq!(tn.get(0, 0).is_nan(), reference.get(0, 0).is_nan());
        assert_eq!(tn.get(0, 1), reference.get(0, 1));
    }

    #[test]
    fn matmul_zero_skip_still_exact_for_finite_inputs() {
        // The fast path must not change results where it applies: a sparse
        // operand against a finite matrix multiplies exactly.
        let a = m(2, 3, &[0.0, 2.0, 0.0, 1.0, 0.0, 3.0]);
        let b = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&b), a.matmul(&b.transpose().transpose()));
        assert_eq!(a.matmul(&b), m(2, 2, &[6., 8., 16., 20.]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[5., 6., 7., 8.]);
        let sum = &a + &b;
        assert_eq!(&sum - &b, a);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[4., 5., 6.]);
        assert_eq!(a.hadamard(&b), m(1, 3, &[4., 10., 18.]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1., 1.]);
        let b = m(1, 2, &[2., 4.]);
        a.axpy(0.5, &b);
        assert_eq!(a, m(1, 2, &[2., 3.]));
    }

    #[test]
    fn add_row_in_place_broadcasts_bias() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_in_place(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = m(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let s = a.softmax_rows();
        for row in s.iter_rows() {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = m(1, 3, &[1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for &x in s.row(0) {
            assert!((x - 1.0 / 3.0).abs() < 1e-5);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = m(1, 4, &[0.1, -0.3, 2.0, 0.7]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for (l, p) in ls.row(0).iter().zip(s.row(0)) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_finds_maxima() {
        let a = m(2, 3, &[0.1, 0.9, 0.0, 0.5, 0.2, 0.8]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn select_rows_reorders() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel, m(2, 2, &[5., 6., 1., 2.]));
    }

    #[test]
    fn hcat_concatenates_columns() {
        let a = m(2, 1, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        let c = Matrix::hcat(&[&a, &b]).expect("same rows");
        assert_eq!(c, m(2, 3, &[1., 3., 4., 2., 5., 6.]));
    }

    #[test]
    fn hcat_rejects_row_mismatch() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        assert!(Matrix::hcat(&[&a, &b]).is_err());
        // The mismatch is caught even when it sits in the last part.
        let c = Matrix::zeros(2, 4);
        assert!(Matrix::hcat(&[&a, &c, &b]).is_err());
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let a = m(2, 3, &[0.0, 2.0, f32::NAN, 1.0, 0.0, 3.0]);
        let b = m(3, 2, &[1., 2., 0., 4., 5., 6.]);
        let mut out = Matrix::zeros(7, 7); // wrong shape on purpose
        a.matmul_into(&b, &mut out);
        let expect = a.matmul(&b);
        assert_eq!(out.shape(), expect.shape());
        for (x, y) in out.to_vec().iter().zip(expect.to_vec().iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matmul_tn_into_and_nt_into_match_allocating_variants() {
        let a = m(3, 2, &[1., 0., -2., 4., 0., 6.]);
        let b = m(3, 2, &[0.5, 2., 3., f32::INFINITY, 5., 6.]);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_tn_into(&b, &mut out);
        assert_eq!(out, a.matmul_tn(&b));
        let c = m(2, 2, &[1., 2., 3., 4.]);
        c.matmul_nt_into(&c, &mut out);
        assert_eq!(out, c.matmul_nt(&c));
    }

    #[test]
    fn select_rows_into_matches_select_rows() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let mut out = Matrix::zeros(9, 9);
        a.select_rows_into(&[2, 0, 2], &mut out);
        assert_eq!(out, a.select_rows(&[2, 0, 2]));
    }

    #[test]
    fn zip_apply_matches_zip_map() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[5., 6., 7., 8.]);
        let mut c = a.clone();
        c.zip_apply(&b, |x, y| x * y - 1.0);
        assert_eq!(c, a.zip_map(&b, |x, y| x * y - 1.0));
    }

    #[test]
    fn resize_zeroed_and_copy_from_reshape() {
        let mut a = m(2, 2, &[1., 2., 3., 4.]);
        a.resize_zeroed(1, 3);
        assert_eq!(a, Matrix::zeros(1, 3));
        let src = m(3, 1, &[7., 8., 9.]);
        a.copy_from(&src);
        assert_eq!(a, src);
    }

    #[test]
    fn col_sums_into_matches_col_sums() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let mut out = vec![9.0; 7];
        a.col_sums_into(&mut out);
        assert_eq!(out, a.col_sums());
    }

    #[test]
    fn col_sums_accumulate_columns() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.col_sums(), vec![5., 7., 9.]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    fn to_vec_round_trips_through_from_vec() {
        let a = m(3, 5, &(0..15).map(|x| x as f32).collect::<Vec<_>>());
        let v = a.to_vec();
        assert_eq!(v.len(), 15);
        assert_eq!(Matrix::from_vec(3, 5, v).unwrap(), a);
    }

    #[test]
    fn random_respects_shape_and_determinism() {
        let mut rng1 = Rng64::seed(5);
        let mut rng2 = Rng64::seed(5);
        let a = Matrix::random(3, 4, Init::HeNormal, &mut rng1);
        let b = Matrix::random(3, 4, Init::HeNormal, &mut rng2);
        assert_eq!(a, b);
        assert_eq!(a.shape(), (3, 4));
    }
}
