/// Deterministic random number generator used across the whole workspace.
///
/// Every stochastic component in the Muffin reproduction (dataset
/// generation, weight initialisation, controller sampling) is seeded through
/// this type so experiments are exactly reproducible.
///
/// The core is the xoshiro256++ generator seeded through SplitMix64 —
/// implemented in-repo so the workspace builds with zero external crates.
/// The stream is a frozen part of the workspace contract: changing it
/// changes every "seed N" experiment in `results/`.
///
/// # Example
///
/// ```
/// use muffin_tensor::Rng64;
///
/// let mut a = Rng64::seed(42);
/// let mut b = Rng64::seed(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: [u64; 4],
}

/// The SplitMix64 generator as a standalone seed stream.
///
/// One `u64` of state, trivially `Send + Sync`-safe to move across worker
/// threads, and statistically independent outputs for consecutive states —
/// the properties that make it the reference recipe for deriving families
/// of child seeds (here: the per-episode head seeds of the parallel search,
/// and the state expansion inside [`Rng64::seed`]).
///
/// # Example
///
/// ```
/// use muffin_tensor::SplitMix64;
///
/// let mut stream = SplitMix64::new(7);
/// let (a, b) = (stream.next_u64(), stream.next_u64());
/// assert_ne!(a, b);
/// assert_eq!(SplitMix64::new(7).next_u64(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produces the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives an independent [`Rng64`] from the next stream output.
    pub fn fork_rng(&mut self) -> Rng64 {
        Rng64::seed(self.next_u64())
    }
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        // SplitMix64 expansion, the reference recipe for filling
        // xoshiro's 256-bit state from a 64-bit seed: consecutive or even
        // all-zero seeds still yield well-mixed, distinct states.
        let mut sm = SplitMix64::new(seed);
        Self {
            state: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Restores a generator from a snapshot taken with [`Rng64::state`].
    ///
    /// The reconstructed generator continues the original stream exactly
    /// where the snapshot was taken — the hook checkpoint/resume uses to
    /// replay a search's RNG position bit-for-bit.
    pub fn from_state(state: [u64; 4]) -> Self {
        Self { state }
    }

    /// The raw 256-bit generator state, for serialisation.
    ///
    /// Feed the value back through [`Rng64::from_state`] to resume the
    /// stream. The words are xoshiro256++ internals, not seeds: passing
    /// them to [`Rng64::seed`] would start a different stream.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Produces the next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Samples a uniform value in `[0, 1)` with 24 bits of precision (the
    /// full f32 mantissa).
    #[inline]
    fn unit_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Samples a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform bounds out of order: {lo} > {hi}");
        if lo == hi {
            return lo;
        }
        let x = lo + (hi - lo) * self.unit_f32();
        // `lo + span * u` can land exactly on `hi` after rounding; keep
        // the half-open contract.
        if x >= hi {
            lo.max(hi - (hi - lo) * f32::EPSILON)
        } else {
            x
        }
    }

    /// Samples a standard normal value via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        // Box–Muller gives exact normals from two uniforms without needing a
        // distributions dependency. u1 is shifted into (0, 1] so ln(u1) is
        // finite.
        let u1 = (((self.next_u64() >> 40) + 1) as f32) * (1.0 / (1u64 << 24) as f32);
        let u2 = self.unit_f32();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Samples a normal value with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Samples an integer uniformly from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        // Lemire's multiply-shift maps the 64-bit output onto [0, n)
        // essentially without bias for any n this workspace uses.
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Samples `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f32) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit_f32() < p
    }

    /// Samples an index from the categorical distribution given by `weights`.
    ///
    /// Weights need not be normalised; negative weights are treated as zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn categorical(&mut self, weights: &[f32]) -> usize {
        assert!(!weights.is_empty(), "categorical weights must be non-empty");
        let total: f32 = weights.iter().map(|w| w.max(0.0)).sum();
        assert!(total > 0.0, "categorical weights must have positive mass");
        let mut target = self.uniform(0.0, total);
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choice<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.below(slice.len())]
    }

    /// Derives a child generator, advancing this generator once.
    ///
    /// Useful for splitting one experiment seed into independent component
    /// seeds without manual bookkeeping.
    pub fn fork(&mut self) -> Self {
        Self::seed(self.next_u64())
    }
}

/// Weight-initialisation schemes for neural-network parameters.
///
/// # Example
///
/// ```
/// use muffin_tensor::{Init, Matrix, Rng64};
///
/// let mut rng = Rng64::seed(7);
/// let w = Matrix::random(4, 8, Init::XavierUniform, &mut rng);
/// assert_eq!(w.shape(), (4, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f32,
    },
    /// Glorot/Xavier uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming normal: `std = sqrt(2 / fan_in)`, suited to ReLU nets.
    HeNormal,
    /// Standard normal scaled by the given factor.
    ScaledNormal {
        /// Standard deviation of each entry.
        std_dev: f32,
    },
}

impl Init {
    /// Samples one value for a parameter tensor with the given fan-in/out.
    pub fn sample(self, fan_in: usize, fan_out: usize, rng: &mut Rng64) -> f32 {
        match self {
            Init::Zeros => 0.0,
            Init::Uniform { limit } => rng.uniform(-limit, limit),
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                rng.uniform(-limit, limit)
            }
            Init::HeNormal => {
                let std_dev = (2.0 / fan_in.max(1) as f32).sqrt();
                rng.normal_with(0.0, std_dev)
            }
            Init::ScaledNormal { std_dev } => rng.normal_with(0.0, std_dev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut rng = Rng64::seed(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut resumed = Rng64::from_state(snapshot);
        let replayed: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, replayed);
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // First output of SplitMix64 at seed 0 in the reference
        // implementation (Steele et al.); pins the stream the search's
        // per-episode head seeds are derived from.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn splitmix_streams_are_deterministic_and_distinct() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let mut c = SplitMix64::new(10);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn splitmix_expansion_matches_rng_seed_state() {
        // Rng64::seed is documented as SplitMix64 expansion of the seed;
        // forked children must therefore agree with the standalone stream.
        let mut sm = SplitMix64::new(123);
        let mut forked = sm.fork_rng();
        let mut direct = Rng64::seed(SplitMix64::new(123).next_u64());
        assert_eq!(forked.next_u64(), direct.next_u64());
    }

    #[test]
    fn splitmix_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SplitMix64>();
        assert_send_sync::<Rng64>();
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = Rng64::seed(123);
        let mut b = Rng64::seed(123);
        for _ in 0..32 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed(1);
        let mut b = Rng64::seed(2);
        let same = (0..16).all(|_| a.normal().to_bits() == b.normal().to_bits());
        assert!(!same);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng64::seed(9);
        for _ in 0..1000 {
            let x = rng.uniform(-0.5, 2.0);
            assert!((-0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn uniform_degenerate_interval() {
        let mut rng = Rng64::seed(9);
        assert_eq!(rng.uniform(3.0, 3.0), 3.0);
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut rng = Rng64::seed(77);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn categorical_follows_weights() {
        let mut rng = Rng64::seed(4);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8000 {
            counts[rng.categorical(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f32 / counts[0] as f32;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn categorical_rejects_zero_mass() {
        let mut rng = Rng64::seed(4);
        rng.categorical(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed(11);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng64::seed(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.normal().to_bits(), c2.normal().to_bits());
    }

    #[test]
    fn below_covers_range() {
        let mut rng = Rng64::seed(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let mut rng = Rng64::seed(21);
        for _ in 0..100 {
            let x = Init::XavierUniform.sample(100, 100, &mut rng);
            assert!(x.abs() <= (6.0f32 / 200.0).sqrt() + 1e-6);
        }
    }

    #[test]
    fn zeros_init_is_zero() {
        let mut rng = Rng64::seed(21);
        assert_eq!(Init::Zeros.sample(3, 3, &mut rng), 0.0);
    }
}
