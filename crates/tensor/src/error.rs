use std::error::Error;
use std::fmt;

/// Error returned when matrix shapes are incompatible for an operation.
///
/// Fallible constructors and checked operations return this error instead of
/// panicking so callers can surface a useful message.
///
/// # Example
///
/// ```
/// use muffin_tensor::Matrix;
///
/// let err = Matrix::from_vec(2, 3, vec![1.0; 5]).unwrap_err();
/// assert!(err.to_string().contains("expected"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    expected: (usize, usize),
    actual: (usize, usize),
}

impl ShapeError {
    /// Creates a shape error for operation `op` with the mismatching shapes.
    pub fn new(op: &'static str, expected: (usize, usize), actual: (usize, usize)) -> Self {
        Self { op, expected, actual }
    }

    /// The operation that failed.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// The shape the operation required.
    pub fn expected(&self) -> (usize, usize) {
        self.expected
    }

    /// The shape that was supplied.
    pub fn actual(&self) -> (usize, usize) {
        self.actual
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: expected {}x{}, got {}x{}",
            self.op, self.expected.0, self.expected.1, self.actual.0, self.actual.1
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_shapes() {
        let err = ShapeError::new("matmul", (2, 3), (4, 5));
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn accessors_round_trip() {
        let err = ShapeError::new("add", (1, 2), (3, 4));
        assert_eq!(err.op(), "add");
        assert_eq!(err.expected(), (1, 2));
        assert_eq!(err.actual(), (3, 4));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
