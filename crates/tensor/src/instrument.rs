//! Timing-free instrumentation hooks for the tensor kernels.
//!
//! The matmul kernels guard their zero-skip fast path with a finiteness
//! pre-scan of the right-hand operand (see [`crate::Matrix::matmul_into`]).
//! That scan is required to run **exactly once per operand per call** — a
//! regression to per-element or per-zero-hit re-scanning would be invisible
//! to equivalence tests (the floats stay identical) and only show up as a
//! quadratic slowdown. The counter below makes the contract testable
//! without timers: tests snapshot [`finiteness_scans`] around a kernel call
//! and pin the delta.
//!
//! Counters are thread-local so parallel test runners and `muffin-par`
//! workers never race; the cost is one `Cell` increment per kernel call,
//! which is noise next to the scan itself.

use std::cell::Cell;

thread_local! {
    static FINITENESS_SCANS: Cell<u64> = const { Cell::new(0) };
}

/// Number of finiteness pre-scans run by matmul kernels on this thread.
///
/// Monotonically increasing; take a snapshot before and after the call
/// under test and compare deltas rather than absolute values.
pub fn finiteness_scans() -> u64 {
    FINITENESS_SCANS.with(|c| c.get())
}

/// Records one finiteness pre-scan (called by the kernels).
pub(crate) fn record_finiteness_scan() {
    FINITENESS_SCANS.with(|c| c.set(c.get() + 1));
}
