//! The trace event model: what a [`Tracer`](crate::Tracer) records and
//! what an event log file contains.
//!
//! The schema keeps **wall-clock measurements strictly apart** from the
//! rest of each event: everything nondeterministic lives in the
//! [`Timing`] struct, so [`TraceLog::stripped`] can zero it and two
//! seeded runs of the same workload compare byte-identical
//! ([`TraceLog::to_json_string`]) no matter how long each step took.

use std::fmt;

/// A single deterministic payload value attached to an event.
///
/// The three variants keep integers, floats and strings apart so values
/// round-trip through JSON without type drift (an episode index stays an
/// integer, a reward stays a float).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An integer payload (episode numbers, sample counts, cache flags).
    Int {
        /// The value.
        v: i64,
    },
    /// A float payload (rewards, losses, unfairness scores).
    Num {
        /// The value.
        v: f64,
    },
    /// A string payload (model names, head descriptions).
    Text {
        /// The value.
        v: String,
    },
}

muffin_json::impl_json!(tagged FieldValue { Int { v }, Num { v }, Text { v } });

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int { v }
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::Int { v: i64::from(v) }
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::Int { v: v as i64 }
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Num { v }
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        // Go through the f32's shortest decimal so the JSON stays minimal
        // (mirrors `ToJson for f32`).
        if v.is_finite() {
            FieldValue::Num {
                v: format!("{v}").parse::<f64>().expect("float reformat"),
            }
        } else {
            FieldValue::Num { v: f64::from(v) }
        }
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Text { v: v.to_owned() }
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Text { v }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Int { v } => write!(f, "{v}"),
            FieldValue::Num { v } => write!(f, "{v}"),
            FieldValue::Text { v } => write!(f, "{v}"),
        }
    }
}

/// A named deterministic payload entry on an event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name, e.g. `reward` or `U_age`.
    pub name: String,
    /// Field value.
    pub value: FieldValue,
}

muffin_json::impl_json!(struct Field { name, value });

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        Self {
            name: name.into(),
            value: value.into(),
        }
    }
}

/// Wall-clock measurements of an event, **isolated** from the
/// deterministic payload so logs stay diffable modulo time.
///
/// All values are microseconds. `start_us` is relative to the tracer's
/// creation instant (monotonic, via `std::time::Instant`). For
/// [`EventData::Histogram`] summaries, `duration_us` holds the summed
/// observation time, `min_us`/`max_us` the extreme observations, and
/// `p50_us`/`p99_us` the percentile estimates from the histogram's
/// log-scaled buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timing {
    /// Microseconds from tracer creation to the event's start.
    pub start_us: u64,
    /// Duration in microseconds (total observed time for histograms).
    pub duration_us: u64,
    /// Smallest observation in microseconds (histograms only).
    pub min_us: u64,
    /// Largest observation in microseconds (histograms only).
    pub max_us: u64,
    /// Estimated median observation in microseconds (histograms only).
    pub p50_us: u64,
    /// Estimated 99th-percentile observation in microseconds
    /// (histograms only).
    pub p99_us: u64,
}

muffin_json::impl_json!(struct Timing { start_us, duration_us, min_us, max_us, p50_us, p99_us });

impl Timing {
    /// The all-zero timing used by [`TraceLog::stripped`].
    pub fn zero() -> Self {
        Self::default()
    }
}

/// The deterministic payload of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventData {
    /// A completed span: a named unit of work with payload fields. The
    /// wall-clock cost lives in the event's [`Timing`].
    Span {
        /// Payload fields recorded on the span.
        fields: Vec<Field>,
    },
    /// Final value of a named counter (emitted by
    /// [`Tracer::finish`](crate::Tracer::finish), one per counter, sorted
    /// by name).
    Counter {
        /// Accumulated count.
        value: u64,
    },
    /// Summary of a named duration histogram (emitted by
    /// [`Tracer::finish`](crate::Tracer::finish)). Only the observation
    /// count is deterministic; the observed times live in [`Timing`].
    Histogram {
        /// Number of observations.
        count: u64,
    },
    /// A free-form annotation.
    Message {
        /// The message text.
        text: String,
    },
}

muffin_json::impl_json!(tagged EventData {
    Span { fields },
    Counter { value },
    Histogram { count },
    Message { text },
});

/// One entry of a trace event log.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Position in the log (0-based, assigned at record time).
    pub seq: u64,
    /// Event name, e.g. `search.episode` or `nn.epoch`.
    pub name: String,
    /// Span-nesting depth at record time (0 = top level).
    pub depth: u32,
    /// Deterministic payload.
    pub data: EventData,
    /// Isolated wall-clock measurements.
    pub timing: Timing,
}

muffin_json::impl_json!(struct TraceEvent { seq, name, depth, data, timing });

impl TraceEvent {
    /// Looks up a payload field by name (spans only).
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        match &self.data {
            EventData::Span { fields } => fields.iter().find(|f| f.name == name).map(|f| &f.value),
            _ => None,
        }
    }
}

/// Current trace log schema version, written into every log.
///
/// Version history: v1 carried `start_us`/`duration_us`/`min_us`/`max_us`
/// timings; v2 added the `p50_us`/`p99_us` percentile estimates to
/// [`Timing`].
pub const TRACE_LOG_VERSION: u32 = 2;

/// A complete event log, as produced by
/// [`Tracer::finish`](crate::Tracer::finish) and written by the CLI's
/// `--trace-out`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Schema version ([`TRACE_LOG_VERSION`]).
    pub version: u32,
    /// Events in record order.
    pub events: Vec<TraceEvent>,
}

muffin_json::impl_json!(struct TraceLog { version, events });

impl TraceLog {
    /// An empty log at the current schema version.
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Self {
            version: TRACE_LOG_VERSION,
            events,
        }
    }

    /// A copy with every [`Timing`] zeroed — the determinism contract:
    /// two seeded runs of the same workload produce byte-identical
    /// stripped logs.
    pub fn stripped(&self) -> TraceLog {
        let events = self
            .events
            .iter()
            .map(|e| TraceEvent {
                timing: Timing::zero(),
                ..e.clone()
            })
            .collect();
        TraceLog {
            version: self.version,
            events,
        }
    }

    /// Deterministic compact JSON for this log.
    pub fn to_json_string(&self) -> String {
        muffin_json::to_string(self)
    }

    /// Writes the log as JSON.
    ///
    /// # Errors
    ///
    /// Returns an error string if the write fails.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        std::fs::write(path, self.to_json_string()).map_err(|e| e.to_string())
    }

    /// Loads a log previously written by [`TraceLog::save_json`].
    ///
    /// # Errors
    ///
    /// Returns an error string if the file cannot be read or parsed.
    pub fn load_json(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        muffin_json::from_str(&text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup_finds_span_fields_only() {
        let event = TraceEvent {
            seq: 0,
            name: "x".into(),
            depth: 0,
            data: EventData::Span {
                fields: vec![Field::new("reward", 1.5f64)],
            },
            timing: Timing::zero(),
        };
        assert_eq!(event.field("reward"), Some(&FieldValue::Num { v: 1.5 }));
        assert_eq!(event.field("missing"), None);
        let counter = TraceEvent {
            data: EventData::Counter { value: 3 },
            ..event
        };
        assert_eq!(counter.field("reward"), None);
    }

    #[test]
    fn stripped_zeroes_every_timing() {
        let log = TraceLog::new(vec![TraceEvent {
            seq: 0,
            name: "x".into(),
            depth: 1,
            data: EventData::Message { text: "hi".into() },
            timing: Timing {
                start_us: 5,
                duration_us: 9,
                min_us: 1,
                max_us: 2,
                p50_us: 1,
                p99_us: 2,
            },
        }]);
        let stripped = log.stripped();
        assert_eq!(stripped.events[0].timing, Timing::zero());
        // Everything else survives.
        assert_eq!(stripped.events[0].name, "x");
        assert_eq!(stripped.events[0].depth, 1);
    }

    #[test]
    fn field_value_conversions_preserve_type() {
        assert_eq!(FieldValue::from(3usize), FieldValue::Int { v: 3 });
        assert_eq!(FieldValue::from(7u32), FieldValue::Int { v: 7 });
        assert_eq!(FieldValue::from(0.1f32), FieldValue::Num { v: 0.1 });
        assert_eq!(FieldValue::from("a"), FieldValue::Text { v: "a".into() });
    }
}
