use crate::event::{EventData, Field, FieldValue, Timing, TraceEvent, TraceLog};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of log2-scaled histogram buckets. Bucket 0 holds observations
/// of exactly 0 µs; bucket `b` (b ≥ 1) holds `[2^(b-1), 2^b)` µs, and the
/// last bucket absorbs everything from ~18 minutes up.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// The bucket an observation of `us` microseconds lands in: the number of
/// significant bits, clamped into the fixed bucket range. Deterministic —
/// the same observation always lands in the same bucket.
fn bucket_index(us: u64) -> usize {
    ((u64::BITS - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `b` in microseconds.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Inclusive upper bound of bucket `b` in microseconds (the last bucket is
/// open-ended; callers clamp to the observed maximum).
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        (1u64 << b) - 1
    }
}

#[derive(Debug, Default)]
struct HistogramState {
    count: u64,
    total_us: u64,
    min_us: u64,
    max_us: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramState {
    fn observe_us(&mut self, us: u64) {
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.buckets[bucket_index(us)] += 1;
    }

    fn merge(&mut self, other: &HistogramState) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min_us = other.min_us;
            self.max_us = other.max_us;
        } else {
            self.min_us = self.min_us.min(other.min_us);
            self.max_us = self.max_us.max(other.max_us);
        }
        self.count += other.count;
        self.total_us = self.total_us.saturating_add(other.total_us);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            total_us: self.total_us,
            min_us: self.min_us,
            max_us: self.max_us,
            buckets: self.buckets,
        }
    }
}

/// A point-in-time copy of one named duration histogram: summary stats
/// plus the log2-scaled bucket counts, with percentile estimation.
///
/// Obtained from [`Tracer::histogram`] (e.g. by a load generator building
/// a latency report) or reconstructed implicitly by [`Tracer::finish`],
/// which stamps `percentile_us(0.50)` / `percentile_us(0.99)` into the
/// emitted histogram event's `Timing`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub total_us: u64,
    /// Smallest observation in microseconds.
    pub min_us: u64,
    /// Largest observation in microseconds.
    pub max_us: u64,
    /// Observation counts per log2 bucket; bucket `b ≥ 1` covers
    /// `[2^(b-1), 2^b)` µs and bucket 0 holds zero-duration observations.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_us / self.count
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in microseconds.
    ///
    /// Walks the buckets to the observation of rank `ceil(q · count)` and
    /// interpolates linearly by rank inside that bucket, then clamps the
    /// estimate into `[min_us, max_us]` so a one-element histogram reports
    /// its single observation exactly. Integer arithmetic only — the same
    /// bucket contents always yield the same estimate.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_lo(b);
                let hi = bucket_hi(b).min(self.max_us).max(lo);
                let into = rank - seen; // 1-based rank within this bucket
                let est = lo as u128 + (hi - lo) as u128 * into as u128 / n as u128;
                return (est as u64).clamp(self.min_us, self.max_us);
            }
            seen += n;
        }
        self.max_us
    }
}

#[derive(Debug, Default)]
struct State {
    events: Vec<TraceEvent>,
    seq: u64,
    depth: u32,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramState>,
}

#[derive(Debug)]
struct Shared {
    epoch: Instant,
    state: Mutex<State>,
}

/// Where gated progress lines go. Quiet (the default) is represented by
/// the absence of a `Progress` value on the tracer.
#[derive(Debug, Clone)]
enum Progress {
    /// Print progress lines to stderr (the CLI's `--verbose`).
    Stderr,
    /// Collect progress lines into a buffer (for tests asserting
    /// silence or content without spawning a process).
    Capture(Arc<Mutex<Vec<String>>>),
}

/// A structured, hermetic tracer: spans, counters, duration histograms
/// and a verbosity-gated progress channel.
///
/// The **no-op tracer** ([`Tracer::noop`], also [`Default`]) records
/// nothing, prints nothing, and adds only a branch per call site, so
/// instrumented code behaves identically with tracing off — the
/// workspace's determinism contract (`SearchOutcome` bytes are unchanged
/// by tracing, because a tracer never touches any RNG).
///
/// A **capturing tracer** ([`Tracer::capturing`]) accumulates
/// [`TraceEvent`]s; [`Tracer::finish`] drains them (appending one
/// `Counter` and one `Histogram` summary event per name, sorted) into a
/// [`TraceLog`] whose wall-clock measurements live only in the isolated
/// [`Timing`] field.
///
/// Handles are cheap clones sharing one buffer, and every method takes
/// `&self`, so a tracer can be threaded through nested calls freely. For
/// work fanned out across threads, [`Tracer::fork`] + [`Tracer::absorb`]
/// keep the event **order** deterministic: each job records into its own
/// fork and the caller absorbs the forks in job order.
///
/// # Example
///
/// ```
/// use muffin_trace::Tracer;
///
/// let tracer = Tracer::capturing();
/// {
///     let mut span = tracer.span("work.step");
///     span.field("items", 3usize);
/// }
/// tracer.count("work.cache_hit", 1);
/// let log = tracer.finish();
/// assert_eq!(log.events.len(), 2);
/// assert_eq!(log.events[0].name, "work.step");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
    progress: Option<Progress>,
}

impl Tracer {
    /// The no-op tracer: captures nothing, prints nothing.
    pub fn noop() -> Self {
        Self::default()
    }

    /// A tracer that records events.
    pub fn capturing() -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
            progress: None,
        }
    }

    /// Enables (or disables) progress lines on stderr.
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.progress = verbose.then_some(Progress::Stderr);
        self
    }

    /// Redirects progress lines into `buffer` (verbose, but captured) —
    /// lets tests assert what a verbose run reports without a process
    /// boundary.
    pub fn with_progress_capture(mut self, buffer: Arc<Mutex<Vec<String>>>) -> Self {
        self.progress = Some(Progress::Capture(buffer));
        self
    }

    /// Whether progress lines are emitted at all.
    pub fn verbose(&self) -> bool {
        self.progress.is_some()
    }

    /// Whether events are being captured.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Emits a progress line through the verbosity gate. The closure runs
    /// only when the gate is open, so quiet runs pay no formatting cost.
    pub fn progress(&self, msg: impl FnOnce() -> String) {
        match &self.progress {
            None => {}
            Some(Progress::Stderr) => eprintln!("{}", msg()),
            Some(Progress::Capture(buffer)) => {
                buffer.lock().expect("progress buffer poisoned").push(msg());
            }
        }
    }

    /// Opens a span. The returned guard records a `Span` event when
    /// dropped (or when [`Span::finish`] is called); attach payload with
    /// [`Span::field`]. On a no-op tracer the guard is inert.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        let inner = self.shared.as_ref().map(|shared| {
            let depth = {
                let mut state = shared.state.lock().expect("tracer poisoned");
                let depth = state.depth;
                state.depth += 1;
                depth
            };
            SpanInner {
                name: name.into(),
                start: Instant::now(),
                depth,
                fields: Vec::new(),
            }
        });
        Span {
            tracer: self,
            inner,
        }
    }

    /// Records a completed span whose duration was measured elsewhere
    /// (e.g. on a worker thread) — the deterministic way to log
    /// concurrent work: measure on the worker, record in job order on the
    /// calling thread.
    pub fn record_span(&self, name: impl Into<String>, fields: Vec<Field>, took: Duration) {
        let Some(shared) = &self.shared else { return };
        let took_us = duration_us(took);
        let now_us = duration_us(shared.epoch.elapsed());
        let mut state = shared.state.lock().expect("tracer poisoned");
        let depth = state.depth;
        push_event(
            &mut state,
            name.into(),
            depth,
            EventData::Span { fields },
            Timing {
                start_us: now_us.saturating_sub(took_us),
                duration_us: took_us,
                ..Timing::zero()
            },
        );
    }

    /// Records a free-form `Message` event.
    pub fn message(&self, name: impl Into<String>, text: impl Into<String>) {
        let Some(shared) = &self.shared else { return };
        let now_us = duration_us(shared.epoch.elapsed());
        let mut state = shared.state.lock().expect("tracer poisoned");
        let depth = state.depth;
        push_event(
            &mut state,
            name.into(),
            depth,
            EventData::Message { text: text.into() },
            Timing {
                start_us: now_us,
                ..Timing::zero()
            },
        );
    }

    /// Adds `delta` to the named counter. Counters are aggregated and
    /// emitted as one `Counter` event each by [`Tracer::finish`].
    pub fn count(&self, name: &str, delta: u64) {
        let Some(shared) = &self.shared else { return };
        let mut state = shared.state.lock().expect("tracer poisoned");
        match state.counters.get_mut(name) {
            Some(total) => *total += delta,
            None => {
                state.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of a counter (0 when absent) — for assertions.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.shared
            .as_ref()
            .map(|shared| {
                let state = shared.state.lock().expect("tracer poisoned");
                state.counters.get(name).copied().unwrap_or(0)
            })
            .unwrap_or(0)
    }

    /// Adds one observation to the named duration histogram. Aggregation
    /// (count / total / min / max) is order-insensitive, so observations
    /// may safely come from worker threads; summaries are emitted by
    /// [`Tracer::finish`].
    pub fn observe(&self, name: &str, took: Duration) {
        let Some(shared) = &self.shared else { return };
        let us = duration_us(took);
        let mut state = shared.state.lock().expect("tracer poisoned");
        match state.histograms.get_mut(name) {
            Some(hist) => hist.observe_us(us),
            None => {
                let mut hist = HistogramState::default();
                hist.observe_us(us);
                state.histograms.insert(name.to_string(), hist);
            }
        }
    }

    /// A snapshot of the named histogram's current state (buckets and
    /// summary stats), or `None` on a no-op tracer or before the first
    /// observation. Lets callers read percentiles mid-run without
    /// draining the tracer.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let shared = self.shared.as_ref()?;
        let state = shared.state.lock().expect("tracer poisoned");
        state.histograms.get(name).map(HistogramState::snapshot)
    }

    /// Number of events recorded so far (excluding pending counter and
    /// histogram summaries).
    pub fn events_recorded(&self) -> usize {
        self.shared
            .as_ref()
            .map(|shared| shared.state.lock().expect("tracer poisoned").events.len())
            .unwrap_or(0)
    }

    /// A child tracer for one unit of concurrent work: capturing if and
    /// only if `self` captures, never verbose. Record into the fork on
    /// the worker, then pass it to [`Tracer::absorb`] in a deterministic
    /// order on the calling thread.
    pub fn fork(&self) -> Tracer {
        if self.is_enabled() {
            Tracer::capturing()
        } else {
            Tracer::noop()
        }
    }

    /// Merges a fork's recordings into this tracer: events are appended
    /// in the fork's order (re-sequenced, depths offset by the current
    /// depth), counters and histograms merge into the aggregates.
    pub fn absorb(&self, fork: &Tracer) {
        let (Some(shared), Some(child)) = (&self.shared, &fork.shared) else {
            return;
        };
        let mut child_state = std::mem::take(&mut *child.state.lock().expect("tracer poisoned"));
        let mut state = shared.state.lock().expect("tracer poisoned");
        let base_depth = state.depth;
        for event in child_state.events.drain(..) {
            let depth = base_depth + event.depth;
            push_event(&mut state, event.name, depth, event.data, event.timing);
        }
        for (name, value) in child_state.counters {
            match state.counters.get_mut(&name) {
                Some(total) => *total += value,
                None => {
                    state.counters.insert(name, value);
                }
            }
        }
        for (name, hist) in child_state.histograms {
            match state.histograms.get_mut(&name) {
                Some(existing) => existing.merge(&hist),
                None => {
                    state.histograms.insert(name, hist);
                }
            }
        }
    }

    /// Drains everything recorded into a [`TraceLog`]: the events in
    /// record order, then one `Counter` event per counter and one
    /// `Histogram` event per histogram (each sorted by name, so the log
    /// is deterministic). The tracer is empty afterwards.
    ///
    /// A no-op tracer yields an empty log.
    pub fn finish(&self) -> TraceLog {
        let Some(shared) = &self.shared else {
            return TraceLog::new(Vec::new());
        };
        let mut state = shared.state.lock().expect("tracer poisoned");
        let mut drained = std::mem::take(&mut *state);
        drop(state);
        for (name, value) in std::mem::take(&mut drained.counters) {
            push_event(
                &mut drained,
                name,
                0,
                EventData::Counter { value },
                Timing::zero(),
            );
        }
        for (name, hist) in std::mem::take(&mut drained.histograms) {
            let snap = hist.snapshot();
            push_event(
                &mut drained,
                name,
                0,
                EventData::Histogram { count: hist.count },
                Timing {
                    start_us: 0,
                    duration_us: hist.total_us,
                    min_us: hist.min_us,
                    max_us: hist.max_us,
                    p50_us: snap.percentile_us(0.50),
                    p99_us: snap.percentile_us(0.99),
                },
            );
        }
        TraceLog::new(drained.events)
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn push_event(state: &mut State, name: String, depth: u32, data: EventData, timing: Timing) {
    let seq = state.seq;
    state.seq += 1;
    state.events.push(TraceEvent {
        seq,
        name,
        depth,
        data,
        timing,
    });
}

struct SpanInner {
    name: String,
    start: Instant,
    depth: u32,
    fields: Vec<Field>,
}

/// Guard for an open span; see [`Tracer::span`].
pub struct Span<'a> {
    tracer: &'a Tracer,
    inner: Option<SpanInner>,
}

impl Span<'_> {
    /// Attaches a deterministic payload field to the span.
    pub fn field(&mut self, name: impl Into<String>, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push(Field::new(name, value));
        }
    }

    /// Closes the span now (otherwise it closes on drop).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let Some(shared) = &self.tracer.shared else {
            return;
        };
        let took_us = duration_us(inner.start.elapsed());
        // `duration_since` saturates to zero if the span somehow predates
        // the tracer epoch.
        let start_us = duration_us(inner.start.duration_since(shared.epoch));
        let mut state = shared.state.lock().expect("tracer poisoned");
        state.depth = state.depth.saturating_sub(1);
        push_event(
            &mut state,
            inner.name,
            inner.depth,
            EventData::Span {
                fields: inner.fields,
            },
            Timing {
                start_us,
                duration_us: took_us,
                ..Timing::zero()
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_records_and_prints_nothing() {
        let tracer = Tracer::noop();
        {
            let mut span = tracer.span("a");
            span.field("x", 1usize);
        }
        tracer.count("c", 5);
        tracer.observe("h", Duration::from_micros(10));
        tracer.message("m", "hello");
        tracer.progress(|| panic!("progress closure must not run when quiet"));
        assert!(!tracer.is_enabled());
        assert!(!tracer.verbose());
        assert_eq!(tracer.events_recorded(), 0);
        let log = tracer.finish();
        assert!(log.events.is_empty());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let tracer = Tracer::capturing();
        {
            let _outer = tracer.span("outer");
            {
                let _inner = tracer.span("inner");
            }
        }
        let log = tracer.finish();
        // Spans close inner-first.
        assert_eq!(log.events[0].name, "inner");
        assert_eq!(log.events[0].depth, 1);
        assert_eq!(log.events[1].name, "outer");
        assert_eq!(log.events[1].depth, 0);
        assert_eq!(log.events[0].seq, 0);
        assert_eq!(log.events[1].seq, 1);
    }

    #[test]
    fn counters_aggregate_and_emit_sorted() {
        let tracer = Tracer::capturing();
        tracer.count("b.second", 1);
        tracer.count("a.first", 2);
        tracer.count("b.second", 3);
        assert_eq!(tracer.counter_value("b.second"), 4);
        let log = tracer.finish();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].name, "a.first");
        assert_eq!(log.events[0].data, EventData::Counter { value: 2 });
        assert_eq!(log.events[1].name, "b.second");
        assert_eq!(log.events[1].data, EventData::Counter { value: 4 });
    }

    #[test]
    fn histograms_track_count_min_max_total() {
        let tracer = Tracer::capturing();
        tracer.observe("h", Duration::from_micros(10));
        tracer.observe("h", Duration::from_micros(30));
        tracer.observe("h", Duration::from_micros(20));
        let log = tracer.finish();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].data, EventData::Histogram { count: 3 });
        assert_eq!(log.events[0].timing.min_us, 10);
        assert_eq!(log.events[0].timing.max_us, 30);
        assert_eq!(log.events[0].timing.duration_us, 60);
    }

    #[test]
    fn bucket_index_is_log2_scaled_and_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lo(b)), b, "lower bound of {b}");
            assert_eq!(bucket_index(bucket_hi(b)), b, "upper bound of {b}");
        }
    }

    #[test]
    fn bucket_counts_sum_to_observation_count() {
        let tracer = Tracer::capturing();
        for us in [0u64, 1, 7, 100, 5_000, 5_000, 1_000_000] {
            tracer.observe("h", Duration::from_micros(us));
        }
        let snap = tracer.histogram("h").expect("snapshot");
        assert_eq!(snap.count, 7);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        assert_eq!(snap.buckets[0], 1, "one zero-duration observation");
        assert_eq!(snap.buckets[bucket_index(5_000)], 2);
    }

    #[test]
    fn percentiles_are_bounded_and_ordered() {
        let tracer = Tracer::capturing();
        for us in 1..=1000u64 {
            tracer.observe("h", Duration::from_micros(us));
        }
        let snap = tracer.histogram("h").expect("snapshot");
        let p50 = snap.percentile_us(0.50);
        let p99 = snap.percentile_us(0.99);
        assert!(snap.min_us <= p50 && p50 <= p99 && p99 <= snap.max_us);
        // Log buckets quantise, but the estimates must stay in the right
        // ballpark: the true p50 is 500, inside bucket [256, 511].
        assert!((256..=511).contains(&p50), "p50 estimate {p50}");
        assert!(p99 >= 512, "p99 estimate {p99}");
        assert_eq!(snap.percentile_us(0.0), snap.min_us);
        assert_eq!(snap.percentile_us(1.0), snap.max_us);
    }

    #[test]
    fn single_observation_reports_itself_at_every_percentile() {
        let tracer = Tracer::capturing();
        tracer.observe("h", Duration::from_micros(37));
        let snap = tracer.histogram("h").expect("snapshot");
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.percentile_us(q), 37, "q={q}");
        }
    }

    #[test]
    fn empty_histogram_snapshot_is_none_and_zero_count_percentile_is_zero() {
        let tracer = Tracer::capturing();
        assert!(tracer.histogram("missing").is_none());
        assert!(Tracer::noop().histogram("h").is_none());
        let empty = HistogramSnapshot {
            count: 0,
            total_us: 0,
            min_us: 0,
            max_us: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(empty.percentile_us(0.5), 0);
    }

    #[test]
    fn absorb_merges_histogram_buckets() {
        let tracer = Tracer::capturing();
        tracer.observe("h", Duration::from_micros(10));
        let fork = tracer.fork();
        fork.observe("h", Duration::from_micros(10));
        fork.observe("h", Duration::from_micros(100_000));
        tracer.absorb(&fork);
        let snap = tracer.histogram("h").expect("snapshot");
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[bucket_index(10)], 2);
        assert_eq!(snap.buckets[bucket_index(100_000)], 1);
        assert_eq!(snap.max_us, 100_000);
    }

    #[test]
    fn finish_stamps_percentiles_into_histogram_timing() {
        let tracer = Tracer::capturing();
        for us in [10u64, 20, 30, 40, 1_000] {
            tracer.observe("h", Duration::from_micros(us));
        }
        let expected = tracer.histogram("h").expect("snapshot");
        let log = tracer.finish();
        let event = &log.events[0];
        assert_eq!(event.timing.p50_us, expected.percentile_us(0.50));
        assert_eq!(event.timing.p99_us, expected.percentile_us(0.99));
        assert!(event.timing.p50_us >= 10 && event.timing.p99_us <= 1_000);
        // stripped() zeroes the percentile fields with the rest of Timing.
        let stripped = log.stripped();
        assert_eq!(stripped.events[0].timing.p50_us, 0);
        assert_eq!(stripped.events[0].timing.p99_us, 0);
    }

    #[test]
    fn finish_drains_the_tracer() {
        let tracer = Tracer::capturing();
        tracer.count("c", 1);
        tracer.message("m", "x");
        assert_eq!(tracer.finish().events.len(), 2);
        assert_eq!(tracer.finish().events.len(), 0);
    }

    #[test]
    fn fork_and_absorb_merge_deterministically() {
        let tracer = Tracer::capturing();
        let _guard = tracer.span("parent");
        let forks: Vec<Tracer> = (0..3).map(|_| tracer.fork()).collect();
        for (i, fork) in forks.iter().enumerate() {
            fork.record_span(
                format!("job{i}"),
                vec![Field::new("i", i)],
                Duration::from_micros(5),
            );
            fork.count("jobs", 1);
            fork.observe("job_us", Duration::from_micros(i as u64 + 1));
        }
        // Absorb out of completion order is irrelevant: the caller picks
        // the order.
        for fork in &forks {
            tracer.absorb(fork);
        }
        drop(_guard);
        assert_eq!(tracer.counter_value("jobs"), 3);
        let log = tracer.finish();
        let names: Vec<&str> = log.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["job0", "job1", "job2", "parent", "jobs", "job_us"]
        );
        // Fork events are nested under the open parent span.
        assert_eq!(log.events[0].depth, 1);
        let hist = log.events.iter().find(|e| e.name == "job_us").unwrap();
        assert_eq!(hist.data, EventData::Histogram { count: 3 });
        assert_eq!(hist.timing.min_us, 1);
        assert_eq!(hist.timing.max_us, 3);
    }

    #[test]
    fn fork_of_noop_is_noop() {
        let tracer = Tracer::noop();
        let fork = tracer.fork();
        assert!(!fork.is_enabled());
        fork.count("c", 1);
        tracer.absorb(&fork);
        assert_eq!(tracer.finish().events.len(), 0);
    }

    #[test]
    fn progress_capture_collects_lines_and_quiet_drops_them() {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let tracer = Tracer::noop().with_progress_capture(Arc::clone(&buffer));
        assert!(tracer.verbose());
        tracer.progress(|| "line one".to_string());
        tracer.progress(|| "line two".to_string());
        assert_eq!(*buffer.lock().unwrap(), vec!["line one", "line two"]);

        let quiet = Tracer::capturing().with_verbose(false);
        assert!(!quiet.verbose());
        quiet.progress(|| panic!("must not format when quiet"));
    }

    #[test]
    fn clones_share_the_buffer() {
        let tracer = Tracer::capturing();
        let clone = tracer.clone();
        clone.count("shared", 2);
        assert_eq!(tracer.counter_value("shared"), 2);
        let _span = clone.span("from-clone");
        drop(_span);
        assert_eq!(tracer.events_recorded(), 1);
    }

    #[test]
    fn record_span_uses_current_depth() {
        let tracer = Tracer::capturing();
        let guard = tracer.span("outer");
        tracer.record_span("measured", Vec::new(), Duration::from_micros(7));
        drop(guard);
        let log = tracer.finish();
        assert_eq!(log.events[0].name, "measured");
        assert_eq!(log.events[0].depth, 1);
        assert_eq!(log.events[0].timing.duration_us, 7);
    }
}
