//! Hermetic structured observability for the Muffin workspace.
//!
//! The search/training/inference stack is instrumented with a [`Tracer`]
//! handle threaded through `muffin` (core), `muffin-nn`, `muffin-data`
//! and `muffin-models`. Like the rest of the workspace this crate is
//! built on `std` alone (plus the in-repo `muffin-json` for
//! serialisation) so a cold, air-gapped checkout keeps building.
//!
//! Three guarantees, verified by the trace test suites:
//!
//! 1. **No-op by default** — [`Tracer::noop`] records nothing and every
//!    instrumented call site degrades to a branch. Tracing never touches
//!    an RNG, so seeded outputs (`SearchOutcome` JSON bytes) are
//!    identical with tracing on, off, or captured
//!    (`tests/tests/trace_determinism.rs`, plus the golden snapshot).
//! 2. **Deterministic event logs** — wall-clock measurements live only in
//!    the isolated [`Timing`] field of each event; [`TraceLog::stripped`]
//!    zeroes them, and two seeded runs of the same workload (at *any*
//!    worker count) produce byte-identical stripped logs. Counters and
//!    histogram summaries are emitted sorted by name.
//! 3. **Thread-safe without order races** — handles are cheap clones of
//!    one shared buffer; concurrent work records into per-job
//!    [`Tracer::fork`]s that the caller [`Tracer::absorb`]s in job order,
//!    and histogram aggregation is order-insensitive.
//!
//! # Example
//!
//! ```
//! use muffin_trace::{summarize, Tracer};
//!
//! let tracer = Tracer::capturing();
//! {
//!     let mut span = tracer.span("episode");
//!     span.field("reward", 1.25f64);
//! }
//! tracer.count("cache_hit", 1);
//! let log = tracer.finish();
//! let text = muffin_json::to_string(&log); // deterministic JSON
//! assert!(text.contains("episode"));
//! println!("{}", summarize(&log));
//! ```

#![deny(missing_docs)]

mod event;
mod summary;
mod tracer;

pub use event::{EventData, Field, FieldValue, Timing, TraceEvent, TraceLog, TRACE_LOG_VERSION};
pub use summary::summarize;
pub use tracer::{HistogramSnapshot, Span, Tracer, HISTOGRAM_BUCKETS};
