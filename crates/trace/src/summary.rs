//! Rendering an event log into a per-phase timing table — the engine of
//! the CLI's `trace summarize` subcommand.

use crate::event::{EventData, TraceLog};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Debug, Default)]
struct PhaseStats {
    count: u64,
    total_us: u64,
    min_us: u64,
    max_us: u64,
    /// Percentile estimates, present for histogram rows only — spans
    /// carry one duration each, so a percentile column would just repeat
    /// the mean.
    percentiles: Option<(u64, u64)>,
}

impl PhaseStats {
    fn add(&mut self, duration_us: u64) {
        if self.count == 0 {
            self.min_us = duration_us;
            self.max_us = duration_us;
        } else {
            self.min_us = self.min_us.min(duration_us);
            self.max_us = self.max_us.max(duration_us);
        }
        self.count += 1;
        self.total_us = self.total_us.saturating_add(duration_us);
    }
}

fn ms(us: u64) -> String {
    format!("{:.3}", us as f64 / 1000.0)
}

fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            } else {
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|h| (*h).to_string()).collect();
    render_row(&mut out, &header_cells);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Renders `log` as a human-readable per-phase summary: one row per span
/// or histogram name (count, total/mean/min/max milliseconds, sorted by
/// total time descending), followed by the counters and any messages.
///
/// # Example
///
/// ```
/// use muffin_trace::{summarize, Tracer};
/// use std::time::Duration;
///
/// let tracer = Tracer::capturing();
/// tracer.record_span("phase.a", Vec::new(), Duration::from_millis(2));
/// tracer.count("hits", 3);
/// let text = summarize(&tracer.finish());
/// assert!(text.contains("phase.a"));
/// assert!(text.contains("hits"));
/// ```
pub fn summarize(log: &TraceLog) -> String {
    let mut phases: BTreeMap<&str, PhaseStats> = BTreeMap::new();
    let mut counters: Vec<(&str, u64)> = Vec::new();
    let mut messages: Vec<(&str, &str)> = Vec::new();
    for event in &log.events {
        match &event.data {
            EventData::Span { .. } => {
                phases
                    .entry(&event.name)
                    .or_default()
                    .add(event.timing.duration_us);
            }
            EventData::Histogram { count } => {
                let stats = phases.entry(&event.name).or_default();
                stats.count += count;
                stats.total_us = stats.total_us.saturating_add(event.timing.duration_us);
                stats.min_us = event.timing.min_us;
                stats.max_us = event.timing.max_us;
                stats.percentiles = Some((event.timing.p50_us, event.timing.p99_us));
            }
            EventData::Counter { value } => counters.push((&event.name, *value)),
            EventData::Message { text } => messages.push((&event.name, text)),
        }
    }

    let mut out = format!("trace log v{}: {} events\n", log.version, log.events.len());
    if !phases.is_empty() {
        let mut ranked: Vec<(&str, PhaseStats)> = phases.into_iter().collect();
        // Heaviest phases first; ties broken by name so the table is
        // deterministic.
        ranked.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .map(|(name, s)| {
                let mean = if s.count > 0 { s.total_us / s.count } else { 0 };
                let (p50, p99) = match s.percentiles {
                    Some((p50, p99)) => (ms(p50), ms(p99)),
                    None => ("-".to_string(), "-".to_string()),
                };
                vec![
                    (*name).to_string(),
                    s.count.to_string(),
                    ms(s.total_us),
                    ms(mean),
                    ms(s.min_us),
                    p50,
                    p99,
                    ms(s.max_us),
                ]
            })
            .collect();
        out.push('\n');
        out.push_str(&render_table(
            &[
                "phase", "count", "total ms", "mean ms", "min ms", "p50 ms", "p99 ms", "max ms",
            ],
            &rows,
        ));
    }
    if !counters.is_empty() {
        counters.sort();
        let rows: Vec<Vec<String>> = counters
            .iter()
            .map(|(n, v)| vec![(*n).to_string(), v.to_string()])
            .collect();
        out.push('\n');
        out.push_str(&render_table(&["counter", "value"], &rows));
    }
    if !messages.is_empty() {
        out.push('\n');
        for (name, text) in messages {
            let _ = writeln!(out, "[{name}] {text}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;
    use std::time::Duration;

    #[test]
    fn summary_groups_spans_by_name() {
        let tracer = Tracer::capturing();
        tracer.record_span("a", Vec::new(), Duration::from_millis(3));
        tracer.record_span("a", Vec::new(), Duration::from_millis(1));
        tracer.record_span("b", Vec::new(), Duration::from_millis(10));
        tracer.count("hits", 2);
        tracer.message("note", "something happened");
        let text = summarize(&tracer.finish());
        // b is heavier, so it ranks first.
        let a_pos = text.find("\na ").expect("a row");
        let b_pos = text.find("\nb ").expect("b row");
        assert!(b_pos < a_pos, "heaviest phase first:\n{text}");
        assert!(text.contains("hits"));
        assert!(text.contains("[note] something happened"));
        assert!(text.contains("5 events"));
    }

    #[test]
    fn histograms_appear_as_phases() {
        let tracer = Tracer::capturing();
        tracer.observe("h", Duration::from_micros(500));
        tracer.observe("h", Duration::from_micros(1500));
        let text = summarize(&tracer.finish());
        assert!(text.contains('h'), "{text}");
        assert!(text.contains("2.000"), "total 2 ms:\n{text}");
    }

    #[test]
    fn empty_log_renders_header_only() {
        let text = summarize(&Tracer::capturing().finish());
        assert!(text.contains("0 events"));
        assert!(!text.contains("phase"));
    }
}
