//! JSON round-trip coverage for every trace event variant, plus the
//! determinism properties of the log serialisation.

use muffin_trace::{
    EventData, Field, FieldValue, Timing, TraceEvent, TraceLog, Tracer, TRACE_LOG_VERSION,
};
use std::time::Duration;

fn event(seq: u64, name: &str, data: EventData, timing: Timing) -> TraceEvent {
    TraceEvent {
        seq,
        name: name.into(),
        depth: seq as u32 % 3,
        data,
        timing,
    }
}

fn sample_log() -> TraceLog {
    TraceLog::new(vec![
        event(
            0,
            "search.episode",
            EventData::Span {
                fields: vec![
                    Field::new("episode", 4usize),
                    Field::new("reward", 1.625f64),
                    Field::new("U_age", 0.25f32),
                    Field::new("cached", 1i64),
                    Field::new("head", "[16,8] relu"),
                ],
            },
            Timing {
                start_us: 10,
                duration_us: 900,
                ..Timing::zero()
            },
        ),
        event(
            1,
            "search.cache_hit",
            EventData::Counter { value: 17 },
            Timing::zero(),
        ),
        event(
            2,
            "fusing.predict_batch",
            EventData::Histogram { count: 12 },
            Timing {
                start_us: 0,
                duration_us: 3400,
                min_us: 120,
                max_us: 610,
                p50_us: 240,
                p99_us: 600,
            },
        ),
        event(
            3,
            "note",
            EventData::Message {
                text: "resumed".into(),
            },
            Timing::zero(),
        ),
    ])
}

#[test]
fn every_event_variant_round_trips_through_json() {
    let log = sample_log();
    let text = muffin_json::to_string(&log);
    let back: TraceLog = muffin_json::from_str(&text).expect("parse");
    assert_eq!(back, log);
    assert_eq!(back.version, TRACE_LOG_VERSION);
    // And a second encode is byte-identical (deterministic writer).
    assert_eq!(muffin_json::to_string(&back), text);
}

#[test]
fn every_field_value_variant_round_trips() {
    for value in [
        FieldValue::Int { v: -3 },
        FieldValue::Int { v: i64::MAX },
        FieldValue::Num { v: 0.1 },
        FieldValue::Num { v: f64::NAN }, // written as null, decoded as NaN
        FieldValue::Text {
            v: "with \"quotes\" and \\".into(),
        },
    ] {
        let text = muffin_json::to_string(&value);
        let back: FieldValue = muffin_json::from_str(&text).expect("parse");
        match (&value, &back) {
            (FieldValue::Num { v: a }, FieldValue::Num { v: b }) if a.is_nan() => {
                assert!(b.is_nan());
            }
            _ => assert_eq!(back, value),
        }
    }
}

#[test]
fn save_and_load_round_trip_on_disk() {
    let log = sample_log();
    let path = std::env::temp_dir().join("muffin_trace_roundtrip.json");
    log.save_json(&path).expect("save");
    let back = TraceLog::load_json(&path).expect("load");
    assert_eq!(back, log);
    std::fs::remove_file(path).ok();
}

#[test]
fn malformed_log_reports_line_and_column() {
    let path = std::env::temp_dir().join("muffin_trace_malformed.json");
    std::fs::write(&path, "{\n  \"version\": 1,\n  \"events\": [,]\n}").expect("write");
    let msg = TraceLog::load_json(&path).unwrap_err();
    assert!(msg.contains("line 3"), "missing line in: {msg}");
    assert!(msg.contains("column"), "missing column in: {msg}");
    std::fs::remove_file(path).ok();
}

#[test]
fn stripped_logs_of_two_identical_workloads_are_byte_identical() {
    let run = |pause_us: u64| {
        let tracer = Tracer::capturing();
        for i in 0..4u64 {
            let mut span = tracer.span("work.step");
            span.field("i", i as usize);
            // Different wall-clock per run; identical payloads.
            std::thread::sleep(Duration::from_micros(pause_us * (i + 1)));
        }
        tracer.count("work.items", 4);
        tracer.observe("work.io", Duration::from_micros(pause_us + 1));
        tracer.finish()
    };
    let a = run(50);
    let b = run(350);
    assert_ne!(
        muffin_json::to_string(&a),
        muffin_json::to_string(&b),
        "raw logs should differ in timing"
    );
    assert_eq!(
        muffin_json::to_string(&a.stripped()),
        muffin_json::to_string(&b.stripped()),
        "stripped logs must be byte-identical"
    );
}

#[test]
fn noop_tracer_yields_an_empty_log_that_round_trips() {
    let log = Tracer::noop().finish();
    assert!(log.events.is_empty());
    let back: TraceLog = muffin_json::from_str(&muffin_json::to_string(&log)).expect("parse");
    assert_eq!(back, log);
}
