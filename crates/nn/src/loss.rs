//! Loss functions.
//!
//! Besides the standard classification losses, this module implements the
//! paper's fairness-aware training loss (Eq. 2):
//!
//! ```text
//! L = w[g] × Σᵢ (f'(xᵢ) − yᵢ)² / N
//! ```
//!
//! where `w[g]` is the Algorithm-1 weight of the unprivileged group the
//! sample belongs to. [`weighted_mse_loss`] takes the weight *per sample*
//! (the caller resolves each sample's group weight), which generalises the
//! per-group formulation.

use muffin_tensor::Matrix;

/// Which loss a training run uses.
///
/// # Example
///
/// ```
/// use muffin_nn::LossKind;
///
/// assert_ne!(LossKind::CrossEntropy, LossKind::WeightedMse);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossKind {
    /// Softmax cross-entropy (backbone training).
    CrossEntropy,
    /// The paper's Eq. 2: per-sample-weighted mean squared error against
    /// one-hot targets (muffin-head training on the proxy dataset).
    WeightedMse,
    /// Per-sample-weighted softmax cross-entropy (ablation alternative to
    /// Eq. 2 and the loss used by the `L` fairness baseline).
    WeightedCrossEntropy,
}

muffin_json::impl_json!(enum LossKind { CrossEntropy, WeightedMse, WeightedCrossEntropy });

/// Builds a one-hot target matrix from class labels.
///
/// # Panics
///
/// Panics if any label is `>= num_classes`.
///
/// # Example
///
/// ```
/// let t = muffin_nn::one_hot(&[2, 0], 3);
/// assert_eq!(t.row(0), &[0.0, 0.0, 1.0]);
/// assert_eq!(t.row(1), &[1.0, 0.0, 0.0]);
/// ```
pub fn one_hot(labels: &[usize], num_classes: usize) -> Matrix {
    let mut out = Matrix::zeros(labels.len(), num_classes);
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < num_classes, "label {label} >= num_classes {num_classes}");
        out.set(r, label, 1.0);
    }
    out
}

/// Softmax cross-entropy loss over a batch of logits.
///
/// Returns `(mean_loss, grad_logits)` where the gradient is already divided
/// by the batch size.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn cross_entropy_loss(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    weighted_cross_entropy_loss(logits, labels, None)
}

/// Per-sample-weighted softmax cross-entropy.
///
/// With `weights = None` every sample weighs `1.0`, reducing to plain
/// cross-entropy. The mean is taken over the *sum of weights* so that
/// re-weighting does not change the loss scale.
///
/// # Panics
///
/// Panics if lengths disagree, a label is out of range, or the total weight
/// is not positive.
pub fn weighted_cross_entropy_loss(
    logits: &Matrix,
    labels: &[usize],
    weights: Option<&[f32]>,
) -> (f32, Matrix) {
    let n = logits.rows();
    assert_eq!(labels.len(), n, "labels/batch mismatch");
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "weights/batch mismatch");
    }
    let total_weight: f32 = match weights {
        Some(w) => w.iter().sum(),
        None => n as f32,
    };
    assert!(total_weight > 0.0, "total sample weight must be positive");

    let log_probs = logits.log_softmax_rows();
    let mut grad = log_probs.map(f32::exp); // softmax probabilities
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label {label} out of range");
        let w = weights.map_or(1.0, |w| w[r]);
        loss -= w * log_probs.get(r, label);
        let row = grad.row_mut(r);
        row[label] -= 1.0;
        for g in row.iter_mut() {
            *g *= w / total_weight;
        }
    }
    (loss / total_weight, grad)
}

/// Plain mean squared error between predictions and targets.
///
/// Returns `(mean_loss, grad_pred)`; the mean is over all elements.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse_loss(pred: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    let weights = vec![1.0; pred.rows()];
    weighted_mse_loss(pred, targets, &weights)
}

/// The paper's Eq. 2: per-sample-weighted mean squared error.
///
/// Each sample's squared error is scaled by its weight; the loss is
/// normalised by `Σ weights × num_classes` so the magnitude is comparable
/// across different weightings.
///
/// Returns `(loss, grad_pred)`.
///
/// # Panics
///
/// Panics if shapes or lengths disagree, or the total weight is not
/// positive.
pub fn weighted_mse_loss(pred: &Matrix, targets: &Matrix, weights: &[f32]) -> (f32, Matrix) {
    assert_eq!(pred.shape(), targets.shape(), "pred/target shape mismatch");
    assert_eq!(weights.len(), pred.rows(), "weights/batch mismatch");
    let total_weight: f32 = weights.iter().sum();
    assert!(total_weight > 0.0, "total sample weight must be positive");
    let denom = total_weight * pred.cols() as f32;

    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for (r, &w) in weights.iter().enumerate() {
        let p = pred.row(r);
        let t = targets.row(r);
        let g = grad.row_mut(r);
        for c in 0..p.len() {
            let diff = p[c] - t[c];
            loss += w * diff * diff;
            g[c] = 2.0 * w * diff / denom;
        }
    }
    (loss / denom, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_tensor::{Init, Rng64};

    #[test]
    fn one_hot_rows_sum_to_one() {
        let t = one_hot(&[0, 1, 2, 1], 3);
        for row in t.iter_rows() {
            assert_eq!(row.iter().sum::<f32>(), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "num_classes")]
    fn one_hot_rejects_out_of_range() {
        one_hot(&[3], 3);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]).unwrap();
        let (loss, _) = cross_entropy_loss(&logits, &[0, 1]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_k() {
        let logits = Matrix::zeros(4, 5);
        let (loss, _) = cross_entropy_loss(&logits, &[0, 1, 2, 3]);
        assert!((loss - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut rng = Rng64::seed(7);
        let logits = Matrix::random(3, 4, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let labels = [1usize, 3, 0];
        let (_, grad) = cross_entropy_loss(&logits, &labels);
        let h = 1e-2f32;
        for r in 0..3 {
            for c in 0..4 {
                let mut bumped = logits.clone();
                bumped.set(r, c, logits.get(r, c) + h);
                let (lp, _) = cross_entropy_loss(&bumped, &labels);
                let mut dipped = logits.clone();
                dipped.set(r, c, logits.get(r, c) - h);
                let (lm, _) = cross_entropy_loss(&dipped, &labels);
                let numeric = (lp - lm) / (2.0 * h);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 1e-3,
                    "({r},{c}): numeric {numeric} vs {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn weighted_cross_entropy_zero_weight_samples_do_not_contribute() {
        let logits = Matrix::from_rows(&[&[5.0, -5.0], &[-5.0, 5.0]]).unwrap();
        // Second sample mislabeled but weight 0 — loss stays tiny.
        let (loss, grad) = weighted_cross_entropy_loss(&logits, &[0, 0], Some(&[1.0, 0.0]));
        assert!(loss < 1e-3, "loss {loss}");
        assert!(grad.row(1).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn weighted_mse_matches_plain_mse_with_unit_weights() {
        let pred = Matrix::from_rows(&[&[0.2, 0.8], &[0.6, 0.4]]).unwrap();
        let targets = one_hot(&[1, 0], 2);
        let (l1, g1) = mse_loss(&pred, &targets);
        let (l2, g2) = weighted_mse_loss(&pred, &targets, &[1.0, 1.0]);
        assert!((l1 - l2).abs() < 1e-7);
        assert_eq!(g1, g2);
    }

    #[test]
    fn weighted_mse_scales_per_sample_gradient() {
        let pred = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 0.0]]).unwrap();
        let targets = one_hot(&[0, 0], 2);
        let (_, grad) = weighted_mse_loss(&pred, &targets, &[3.0, 1.0]);
        // Heavier sample's gradient is 3x the lighter one's.
        let ratio = grad.get(0, 0) / grad.get(1, 0);
        assert!((ratio - 3.0).abs() < 1e-5, "ratio {ratio}");
    }

    #[test]
    fn weighted_mse_gradient_matches_finite_difference() {
        let mut rng = Rng64::seed(8);
        let pred = Matrix::random(2, 3, Init::ScaledNormal { std_dev: 0.5 }, &mut rng);
        let targets = one_hot(&[2, 0], 3);
        let weights = [2.0f32, 0.5];
        let (_, grad) = weighted_mse_loss(&pred, &targets, &weights);
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut up = pred.clone();
                up.set(r, c, pred.get(r, c) + h);
                let (lp, _) = weighted_mse_loss(&up, &targets, &weights);
                let mut down = pred.clone();
                down.set(r, c, pred.get(r, c) - h);
                let (lm, _) = weighted_mse_loss(&down, &targets, &weights);
                let numeric = (lp - lm) / (2.0 * h);
                assert!((numeric - grad.get(r, c)).abs() < 1e-3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_mse_rejects_zero_total_weight() {
        let pred = Matrix::zeros(1, 2);
        let targets = Matrix::zeros(1, 2);
        weighted_mse_loss(&pred, &targets, &[0.0]);
    }

    #[test]
    fn loss_kind_is_copy_and_comparable() {
        let k = LossKind::WeightedMse;
        let k2 = k;
        assert_eq!(k, k2);
    }
}
