/// A model whose flat parameter/gradient buffers can be visited in a stable
/// order.
///
/// Optimizers identify each buffer by visitation order, so implementors
/// must visit the same buffers in the same order on every call.
///
/// # Example
///
/// ```
/// use muffin_nn::{Linear, Optimizer, Parameterized, SgdConfig};
/// use muffin_tensor::Rng64;
///
/// let mut rng = Rng64::seed(0);
/// let mut layer = Linear::new(2, 2, &mut rng);
/// let mut opt = Optimizer::sgd(SgdConfig::default());
/// layer.zero_grad();
/// opt.step(&mut layer, 0.1);
/// ```
pub trait Parameterized {
    /// Calls `f(params, grads)` for every parameter buffer.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill(0.0));
    }

    /// Total number of trainable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Global L2 norm of the current gradient.
    fn grad_norm(&mut self) -> f32 {
        let mut sq = 0.0;
        self.visit_params(&mut |_, g| sq += g.iter().map(|x| x * x).sum::<f32>());
        sq.sqrt()
    }

    /// Scales every gradient so the global norm is at most `max_norm`.
    fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            self.visit_params(&mut |_, g| {
                for x in g.iter_mut() {
                    *x *= scale;
                }
            });
        }
    }
}

/// Configuration for SGD.
///
/// Defaults match the paper's backbone recipe apart from the learning rate,
/// which the schedule controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f32,
    /// Decoupled L2 weight decay applied at each step.
    pub weight_decay: f32,
}

muffin_json::impl_json!(struct SgdConfig { momentum, weight_decay });

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }
}

/// First-order gradient optimizers.
///
/// State (momentum / Adam moments) is allocated lazily on the first step and
/// keyed by parameter-buffer visitation order.
#[derive(Debug, Clone)]
pub enum Optimizer {
    /// Stochastic gradient descent with optional momentum and weight decay.
    Sgd {
        /// Hyper-parameters.
        config: SgdConfig,
        /// Momentum buffers, one per parameter buffer.
        velocity: Vec<Vec<f32>>,
    },
    /// Adam with bias correction.
    Adam {
        /// Exponential decay for the first moment.
        beta1: f32,
        /// Exponential decay for the second moment.
        beta2: f32,
        /// Numerical stabiliser.
        eps: f32,
        /// First-moment buffers.
        m: Vec<Vec<f32>>,
        /// Second-moment buffers.
        v: Vec<Vec<f32>>,
        /// Step counter for bias correction.
        t: u32,
    },
}

// Serialised so a search checkpoint can persist the controller's Adam
// moments and resume with bit-identical updates.
muffin_json::impl_json!(tagged Optimizer {
    Sgd { config, velocity },
    Adam { beta1, beta2, eps, m, v, t },
});

impl Optimizer {
    /// Creates an SGD optimizer.
    pub fn sgd(config: SgdConfig) -> Self {
        Optimizer::Sgd {
            config,
            velocity: Vec::new(),
        }
    }

    /// Creates an Adam optimizer with the usual defaults
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    pub fn adam() -> Self {
        Optimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update with learning rate `lr` to `model`'s parameters
    /// using its accumulated gradients.
    pub fn step<M: Parameterized + ?Sized>(&mut self, model: &mut M, lr: f32) {
        match self {
            Optimizer::Sgd { config, velocity } => {
                let momentum = config.momentum;
                let weight_decay = config.weight_decay;
                let mut idx = 0;
                model.visit_params(&mut |p, g| {
                    if velocity.len() <= idx {
                        velocity.push(vec![0.0; p.len()]);
                    }
                    let vel = &mut velocity[idx];
                    debug_assert_eq!(vel.len(), p.len(), "parameter buffer changed size");
                    for i in 0..p.len() {
                        let grad = g[i] + weight_decay * p[i];
                        vel[i] = momentum * vel[i] + grad;
                        p[i] -= lr * vel[i];
                    }
                    idx += 1;
                });
            }
            Optimizer::Adam {
                beta1,
                beta2,
                eps,
                m,
                v,
                t,
            } => {
                *t += 1;
                let t_f = *t as f32;
                let bias1 = 1.0 - beta1.powf(t_f);
                let bias2 = 1.0 - beta2.powf(t_f);
                let (b1, b2, e) = (*beta1, *beta2, *eps);
                let mut idx = 0;
                model.visit_params(&mut |p, g| {
                    if m.len() <= idx {
                        m.push(vec![0.0; p.len()]);
                        v.push(vec![0.0; p.len()]);
                    }
                    let (mi, vi) = (&mut m[idx], &mut v[idx]);
                    debug_assert_eq!(mi.len(), p.len(), "parameter buffer changed size");
                    for i in 0..p.len() {
                        mi[i] = b1 * mi[i] + (1.0 - b1) * g[i];
                        vi[i] = b2 * vi[i] + (1.0 - b2) * g[i] * g[i];
                        let m_hat = mi[i] / bias1;
                        let v_hat = vi[i] / bias2;
                        p[i] -= lr * m_hat / (v_hat.sqrt() + e);
                    }
                    idx += 1;
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-parameter quadratic bowl: loss = (p - 3)^2.
    struct Bowl {
        p: Vec<f32>,
        g: Vec<f32>,
    }

    impl Bowl {
        fn new(start: f32) -> Self {
            Self {
                p: vec![start],
                g: vec![0.0],
            }
        }

        fn compute_grad(&mut self) {
            self.g[0] = 2.0 * (self.p[0] - 3.0);
        }
    }

    impl Parameterized for Bowl {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
            f(&mut self.p, &mut self.g);
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut bowl = Bowl::new(0.0);
        let mut opt = Optimizer::sgd(SgdConfig {
            momentum: 0.0,
            weight_decay: 0.0,
        });
        for _ in 0..200 {
            bowl.compute_grad();
            opt.step(&mut bowl, 0.1);
        }
        assert!((bowl.p[0] - 3.0).abs() < 1e-3, "p = {}", bowl.p[0]);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut bowl = Bowl::new(-5.0);
        let mut opt = Optimizer::sgd(SgdConfig {
            momentum: 0.9,
            weight_decay: 0.0,
        });
        for _ in 0..300 {
            bowl.compute_grad();
            opt.step(&mut bowl, 0.02);
        }
        assert!((bowl.p[0] - 3.0).abs() < 1e-2, "p = {}", bowl.p[0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut bowl = Bowl::new(10.0);
        let mut opt = Optimizer::adam();
        for _ in 0..2000 {
            bowl.compute_grad();
            opt.step(&mut bowl, 0.05);
        }
        assert!((bowl.p[0] - 3.0).abs() < 1e-2, "p = {}", bowl.p[0]);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut bowl = Bowl::new(3.0);
        // Gradient of the bowl is zero at 3.0, so with weight decay the
        // equilibrium shifts below 3.
        let mut opt = Optimizer::sgd(SgdConfig {
            momentum: 0.0,
            weight_decay: 0.5,
        });
        for _ in 0..500 {
            bowl.compute_grad();
            opt.step(&mut bowl, 0.05);
        }
        assert!(bowl.p[0] < 2.9, "p = {}", bowl.p[0]);
    }

    #[test]
    fn zero_grad_resets() {
        let mut bowl = Bowl::new(0.0);
        bowl.compute_grad();
        assert_ne!(bowl.g[0], 0.0);
        bowl.zero_grad();
        assert_eq!(bowl.g[0], 0.0);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut bowl = Bowl::new(0.0);
        bowl.compute_grad(); // grad = -6
        assert!((bowl.grad_norm() - 6.0).abs() < 1e-6);
        bowl.clip_grad_norm(1.0);
        assert!((bowl.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_when_under_limit() {
        let mut bowl = Bowl::new(0.0);
        bowl.compute_grad();
        bowl.clip_grad_norm(100.0);
        assert!((bowl.grad_norm() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn num_params_counts_scalars() {
        let mut bowl = Bowl::new(0.0);
        assert_eq!(bowl.num_params(), 1);
    }

    #[test]
    fn optimizer_state_round_trips_bit_exact() {
        // Warm up an Adam state so the moments are non-trivial floats.
        let mut bowl = Bowl::new(10.0);
        let mut opt = Optimizer::adam();
        for _ in 0..7 {
            bowl.compute_grad();
            opt.step(&mut bowl, 0.05);
        }
        let text = muffin_json::to_string(&opt);
        let restored: Optimizer = muffin_json::from_str(&text).expect("parse");
        // Stepping both from identical state must produce identical
        // parameters — the property checkpoint/resume relies on.
        let mut resumed_bowl = Bowl {
            p: bowl.p.clone(),
            g: bowl.g.clone(),
        };
        let mut resumed_opt = restored;
        for _ in 0..5 {
            bowl.compute_grad();
            opt.step(&mut bowl, 0.05);
            resumed_bowl.compute_grad();
            resumed_opt.step(&mut resumed_bowl, 0.05);
        }
        assert_eq!(bowl.p[0].to_bits(), resumed_bowl.p[0].to_bits());

        let sgd = Optimizer::sgd(SgdConfig::default());
        let text = muffin_json::to_string(&sgd);
        assert!(matches!(
            muffin_json::from_str::<Optimizer>(&text).expect("parse"),
            Optimizer::Sgd { .. }
        ));
    }
}
