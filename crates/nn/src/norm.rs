use crate::Parameterized;
use muffin_tensor::Matrix;

/// Layer normalisation with learnable gain and bias:
///
/// ```text
/// y = γ ⊙ (x − mean(x)) / sqrt(var(x) + ε) + β
/// ```
///
/// applied per row (per sample). Deeper backbone variants use it between
/// linear layers to keep activations well-scaled regardless of the
/// group-conditional noise levels in the synthetic data.
///
/// # Example
///
/// ```
/// use muffin_nn::LayerNorm;
/// use muffin_tensor::Matrix;
///
/// let ln = LayerNorm::new(4);
/// let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
/// let (y, _) = ln.forward(&x);
/// let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
/// assert!(mean.abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: Vec<f32>,
    bias: Vec<f32>,
    grad_gain: Vec<f32>,
    grad_bias: Vec<f32>,
    eps: f32,
}

muffin_json::impl_json!(struct LayerNorm { gain, bias, grad_gain, grad_bias, eps });

/// Forward cache for [`LayerNorm::backward`].
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    normalized: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer normalising rows of width `dim` (γ = 1, β = 0).
    pub fn new(dim: usize) -> Self {
        Self {
            gain: vec![1.0; dim],
            bias: vec![0.0; dim],
            grad_gain: vec![0.0; dim],
            grad_bias: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Width this layer normalises.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    /// Forward pass, returning the output and the backward cache.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LayerNormCache) {
        assert_eq!(x.cols(), self.dim(), "layernorm width mismatch");
        let d = x.cols() as f32;
        let mut normalized = Matrix::zeros(x.rows(), x.cols());
        let mut out = Matrix::zeros(x.rows(), x.cols());
        let mut inv_std = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / d;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            let n_row = normalized.row_mut(r);
            for (c, &v) in row.iter().enumerate() {
                n_row[c] = (v - mean) * istd;
            }
            let o_row = out.row_mut(r);
            for (c, o) in o_row.iter_mut().enumerate() {
                *o = self.gain[c] * normalized.get(r, c) + self.bias[c];
            }
        }
        (out, LayerNormCache { normalized, inv_std })
    }

    /// Backward pass: accumulates γ/β gradients and returns `∂L/∂x`.
    pub fn backward(&mut self, cache: &LayerNormCache, grad_out: &Matrix) -> Matrix {
        let d = grad_out.cols() as f32;
        let mut grad_in = Matrix::zeros(grad_out.rows(), grad_out.cols());
        for r in 0..grad_out.rows() {
            let g_row = grad_out.row(r);
            let n_row = cache.normalized.row(r);
            for c in 0..g_row.len() {
                self.grad_gain[c] += g_row[c] * n_row[c];
                self.grad_bias[c] += g_row[c];
            }
            // dL/dxhat
            let dxhat: Vec<f32> =
                g_row.iter().enumerate().map(|(c, &g)| g * self.gain[c]).collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(n_row).map(|(a, b)| a * b).sum();
            let istd = cache.inv_std[r];
            let gi_row = grad_in.row_mut(r);
            for c in 0..dxhat.len() {
                gi_row[c] =
                    istd / d * (d * dxhat[c] - sum_dxhat - n_row[c] * sum_dxhat_xhat);
            }
        }
        grad_in
    }
}

impl Parameterized for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.gain, &mut self.grad_gain);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_tensor::{Init, Rng64};

    #[test]
    fn output_rows_are_standardised_with_default_params() {
        let ln = LayerNorm::new(8);
        let mut rng = Rng64::seed(1);
        let x = Matrix::random(5, 8, Init::ScaledNormal { std_dev: 3.0 }, &mut rng);
        let (y, _) = ln.forward(&x);
        for row in y.iter_rows() {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gain_and_bias_shift_the_output() {
        let mut ln = LayerNorm::new(2);
        ln.visit_params(&mut |p, _| {
            if p[0] == 1.0 {
                p.copy_from_slice(&[2.0, 2.0]); // gain
            } else {
                p.copy_from_slice(&[5.0, 5.0]); // bias
            }
        });
        let x = Matrix::from_rows(&[&[-1.0, 1.0]]).unwrap();
        let (y, _) = ln.forward(&x);
        // normalised row is [-1, 1] (σ = 1): y = 2·(±1) + 5.
        assert!((y.get(0, 0) - 3.0).abs() < 1e-3);
        assert!((y.get(0, 1) - 7.0).abs() < 1e-3);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut ln = LayerNorm::new(4);
        let mut rng = Rng64::seed(2);
        ln.visit_params(&mut |p, _| {
            for v in p.iter_mut() {
                *v += rng.uniform(-0.2, 0.2);
            }
        });
        let x = Matrix::random(3, 4, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let (_, cache) = ln.forward(&x);
        ln.zero_grad();
        // Loss = sum(output).
        let grad_in = ln.backward(&cache, &Matrix::filled(3, 4, 1.0));
        let h = 1e-2f32;
        for r in 0..3 {
            for c in 0..4 {
                let mut up = x.clone();
                up.set(r, c, x.get(r, c) + h);
                let (yu, _) = ln.forward(&up);
                let mut down = x.clone();
                down.set(r, c, x.get(r, c) - h);
                let (yd, _) = ln.forward(&down);
                let numeric = (yu.sum() - yd.sum()) / (2.0 * h);
                assert!(
                    (numeric - grad_in.get(r, c)).abs() < 2e-2,
                    "({r},{c}): numeric {numeric} vs {}",
                    grad_in.get(r, c)
                );
            }
        }
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let mut ln = LayerNorm::new(3);
        let mut rng = Rng64::seed(3);
        let x = Matrix::random(2, 3, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let (_, cache) = ln.forward(&x);
        ln.zero_grad();
        ln.backward(&cache, &Matrix::filled(2, 3, 1.0));
        let mut grads = Vec::new();
        ln.visit_params(&mut |_, g| grads.push(g[0]));

        let h = 1e-3f32;
        for probe in 0..2 {
            let mut up = ln.clone();
            let mut i = 0;
            up.visit_params(&mut |p, _| {
                if i == probe {
                    p[0] += h;
                }
                i += 1;
            });
            let (yu, _) = up.forward(&x);
            let mut down = ln.clone();
            let mut i = 0;
            down.visit_params(&mut |p, _| {
                if i == probe {
                    p[0] -= h;
                }
                i += 1;
            });
            let (yd, _) = down.forward(&x);
            let numeric = (yu.sum() - yd.sum()) / (2.0 * h);
            assert!((numeric - grads[probe]).abs() < 1e-2, "param {probe}");
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let ln = LayerNorm::new(4);
        let _ = ln.forward(&Matrix::zeros(1, 3));
    }

    #[test]
    fn constant_rows_stay_finite() {
        let ln = LayerNorm::new(3);
        let (y, _) = ln.forward(&Matrix::filled(2, 3, 7.0));
        assert!(y.iter_rows().flatten().all(|v| v.is_finite()));
    }
}
