use crate::Parameterized;
use muffin_tensor::{Init, Matrix, Rng64};

/// Forward cache for one [`GruCell`] step.
#[derive(Debug, Clone)]
pub struct GruCache {
    input: Matrix,
    h_prev: Matrix,
    r: Matrix,
    z: Matrix,
    n: Matrix,
    h_new: Matrix,
}

impl GruCache {
    /// The hidden state produced by this step.
    pub fn hidden(&self) -> &Matrix {
        &self.h_new
    }
}

/// A gated recurrent unit:
///
/// ```text
/// r  = σ(x·Wxr + h·Whr + br)          reset gate
/// z  = σ(x·Wxz + h·Whz + bz)          update gate
/// n  = tanh(x·Wxn + r ⊙ (h·Whn) + bn) candidate state
/// h' = (1 − z) ⊙ n + z ⊙ h
/// ```
///
/// Offered as a drop-in alternative recurrent core for the Muffin
/// controller (the ablation benches compare it against the vanilla
/// [`crate::RnnCell`]); gating helps on longer decision sequences such as
/// four-slot bodies.
///
/// # Example
///
/// ```
/// use muffin_nn::GruCell;
/// use muffin_tensor::{Matrix, Rng64};
///
/// let mut rng = Rng64::seed(0);
/// let cell = GruCell::new(4, 8, &mut rng);
/// let (h1, _cache) = cell.forward(&Matrix::zeros(1, 4), &Matrix::zeros(1, 8));
/// assert_eq!(h1.shape(), (1, 8));
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    wxr: Matrix,
    whr: Matrix,
    br: Vec<f32>,
    wxz: Matrix,
    whz: Matrix,
    bz: Vec<f32>,
    wxn: Matrix,
    whn: Matrix,
    bn: Vec<f32>,
    grad_wxr: Matrix,
    grad_whr: Matrix,
    grad_br: Vec<f32>,
    grad_wxz: Matrix,
    grad_whz: Matrix,
    grad_bz: Vec<f32>,
    grad_wxn: Matrix,
    grad_whn: Matrix,
    grad_bn: Vec<f32>,
}

muffin_json::impl_json!(struct GruCell {
    wxr, whr, br, wxz, whz, bz, wxn, whn, bn,
    grad_wxr, grad_whr, grad_br, grad_wxz, grad_whz, grad_bz, grad_wxn, grad_whn, grad_bn,
});

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl GruCell {
    /// Creates a cell mapping `input_dim` inputs to `hidden_dim` state.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut Rng64) -> Self {
        let wx = |rng: &mut Rng64| Matrix::random(input_dim, hidden_dim, Init::XavierUniform, rng);
        let wh = |rng: &mut Rng64| Matrix::random(hidden_dim, hidden_dim, Init::XavierUniform, rng);
        Self {
            wxr: wx(rng),
            whr: wh(rng),
            br: vec![0.0; hidden_dim],
            wxz: wx(rng),
            whz: wh(rng),
            bz: vec![0.0; hidden_dim],
            wxn: wx(rng),
            whn: wh(rng),
            bn: vec![0.0; hidden_dim],
            grad_wxr: Matrix::zeros(input_dim, hidden_dim),
            grad_whr: Matrix::zeros(hidden_dim, hidden_dim),
            grad_br: vec![0.0; hidden_dim],
            grad_wxz: Matrix::zeros(input_dim, hidden_dim),
            grad_whz: Matrix::zeros(hidden_dim, hidden_dim),
            grad_bz: vec![0.0; hidden_dim],
            grad_wxn: Matrix::zeros(input_dim, hidden_dim),
            grad_whn: Matrix::zeros(hidden_dim, hidden_dim),
            grad_bn: vec![0.0; hidden_dim],
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.wxr.rows()
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.whr.rows()
    }

    /// One recurrent step.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `h_prev` have the wrong number of columns.
    pub fn forward(&self, x: &Matrix, h_prev: &Matrix) -> (Matrix, GruCache) {
        let mut r = x.matmul(&self.wxr);
        r.axpy(1.0, &h_prev.matmul(&self.whr));
        r.add_row_in_place(&self.br);
        r.map_in_place(sigmoid);

        let mut z = x.matmul(&self.wxz);
        z.axpy(1.0, &h_prev.matmul(&self.whz));
        z.add_row_in_place(&self.bz);
        z.map_in_place(sigmoid);

        let hn = h_prev.matmul(&self.whn);
        let mut n = x.matmul(&self.wxn);
        n.axpy(1.0, &r.hadamard(&hn));
        n.add_row_in_place(&self.bn);
        n.map_in_place(f32::tanh);

        // h' = (1 − z)·n + z·h
        let h_new = z
            .zip_map(&n, |zv, nv| (1.0 - zv) * nv)
            .zip_map(&z.hadamard(h_prev), |a, b| a + b);

        let cache = GruCache {
            input: x.clone(),
            h_prev: h_prev.clone(),
            r,
            z,
            n,
            h_new: h_new.clone(),
        };
        (h_new, cache)
    }

    /// Backward through one step: accumulates parameter gradients and
    /// returns `(∂L/∂x, ∂L/∂h_prev)`.
    pub fn backward(&mut self, cache: &GruCache, grad_h: &Matrix) -> (Matrix, Matrix) {
        let GruCache { input, h_prev, r, z, n, .. } = cache;

        // h' = (1 − z)·n + z·h
        let dz = grad_h.zip_map(&(h_prev - n), |g, diff| g * diff);
        let dn = grad_h.zip_map(z, |g, zv| g * (1.0 - zv));
        let mut dh_prev = grad_h.hadamard(z);

        // n = tanh(x·Wxn + r ⊙ (h·Whn) + bn)
        let dn_pre = dn.zip_map(n, |g, nv| g * (1.0 - nv * nv));
        let hn = h_prev.matmul(&self.whn);
        let dr = dn_pre.hadamard(&hn);
        let d_hn = dn_pre.hadamard(r);
        self.grad_wxn.axpy(1.0, &input.matmul_tn(&dn_pre));
        self.grad_whn.axpy(1.0, &h_prev.matmul_tn(&d_hn));
        for (gb, g) in self.grad_bn.iter_mut().zip(dn_pre.col_sums()) {
            *gb += g;
        }
        let mut dx = dn_pre.matmul_nt(&self.wxn);
        dh_prev.axpy(1.0, &d_hn.matmul_nt(&self.whn));

        // z = σ(...)
        let dz_pre = dz.zip_map(z, |g, zv| g * zv * (1.0 - zv));
        self.grad_wxz.axpy(1.0, &input.matmul_tn(&dz_pre));
        self.grad_whz.axpy(1.0, &h_prev.matmul_tn(&dz_pre));
        for (gb, g) in self.grad_bz.iter_mut().zip(dz_pre.col_sums()) {
            *gb += g;
        }
        dx.axpy(1.0, &dz_pre.matmul_nt(&self.wxz));
        dh_prev.axpy(1.0, &dz_pre.matmul_nt(&self.whz));

        // r = σ(...)
        let dr_pre = dr.zip_map(r, |g, rv| g * rv * (1.0 - rv));
        self.grad_wxr.axpy(1.0, &input.matmul_tn(&dr_pre));
        self.grad_whr.axpy(1.0, &h_prev.matmul_tn(&dr_pre));
        for (gb, g) in self.grad_br.iter_mut().zip(dr_pre.col_sums()) {
            *gb += g;
        }
        dx.axpy(1.0, &dr_pre.matmul_nt(&self.wxr));
        dh_prev.axpy(1.0, &dr_pre.matmul_nt(&self.whr));

        (dx, dh_prev)
    }
}

impl Parameterized for GruCell {
    // Weight visits hand out padded backing stores; padding stays zero
    // under every optimizer update (see `Linear::visit_params`).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.wxr.padded_data_mut(), self.grad_wxr.padded_data_mut());
        f(self.whr.padded_data_mut(), self.grad_whr.padded_data_mut());
        f(&mut self.br, &mut self.grad_br);
        f(self.wxz.padded_data_mut(), self.grad_wxz.padded_data_mut());
        f(self.whz.padded_data_mut(), self.grad_whz.padded_data_mut());
        f(&mut self.bz, &mut self.grad_bz);
        f(self.wxn.padded_data_mut(), self.grad_wxn.padded_data_mut());
        f(self.whn.padded_data_mut(), self.grad_whn.padded_data_mut());
        f(&mut self.bn, &mut self.grad_bn);
    }

    fn num_params(&mut self) -> usize {
        self.wxr.len()
            + self.whr.len()
            + self.br.len()
            + self.wxz.len()
            + self.whz.len()
            + self.bz.len()
            + self.wxn.len()
            + self.whn.len()
            + self.bn.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hidden_state_is_bounded() {
        let mut rng = Rng64::seed(1);
        let cell = GruCell::new(3, 5, &mut rng);
        let x = Matrix::random(2, 3, Init::ScaledNormal { std_dev: 4.0 }, &mut rng);
        let h = Matrix::random(2, 5, Init::ScaledNormal { std_dev: 0.9 }, &mut rng)
            .map(|v| v.clamp(-1.0, 1.0));
        let (h1, _) = cell.forward(&x, &h);
        // h' is a convex combination of tanh output and the (bounded) h.
        assert!(h1.iter_rows().flatten().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn update_gate_one_copies_previous_state() {
        let mut rng = Rng64::seed(2);
        let mut cell = GruCell::new(2, 3, &mut rng);
        // Force bz very positive → z ≈ 1 → h' ≈ h_prev.
        let mut idx = 0;
        cell.visit_params(&mut |p, _| {
            if idx == 5 {
                p.fill(50.0); // bz
            }
            idx += 1;
        });
        let h_prev = Matrix::from_rows(&[&[0.3, -0.2, 0.7]]).unwrap();
        let (h1, _) = cell.forward(&Matrix::filled(1, 2, 1.0), &h_prev);
        for (a, b) in h1.row(0).iter().zip(h_prev.row(0)) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng64::seed(3);
        let mut cell = GruCell::new(2, 3, &mut rng);
        let x = Matrix::random(2, 2, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let h0 = Matrix::random(2, 3, Init::ScaledNormal { std_dev: 0.5 }, &mut rng);

        let (_, cache) = cell.forward(&x, &h0);
        cell.zero_grad();
        cell.backward(&cache, &Matrix::filled(2, 3, 1.0));
        let mut analytic = Vec::new();
        cell.visit_params(&mut |_, g| analytic.push(g[0]));

        let h = 1e-2f32;
        for probe in 0..analytic.len() {
            let mut up = cell.clone();
            let mut i = 0;
            up.visit_params(&mut |p, _| {
                if i == probe {
                    p[0] += h;
                }
                i += 1;
            });
            let (hu, _) = up.forward(&x, &h0);
            let mut down = cell.clone();
            let mut i = 0;
            down.visit_params(&mut |p, _| {
                if i == probe {
                    p[0] -= h;
                }
                i += 1;
            });
            let (hd, _) = down.forward(&x, &h0);
            let numeric = (hu.sum() - hd.sum()) / (2.0 * h);
            assert!(
                (numeric - analytic[probe]).abs() < 2e-2,
                "buffer {probe}: numeric {numeric} vs analytic {}",
                analytic[probe]
            );
        }
    }

    #[test]
    fn backward_shapes_match_inputs() {
        let mut rng = Rng64::seed(4);
        let mut cell = GruCell::new(4, 6, &mut rng);
        let x = Matrix::zeros(3, 4);
        let h0 = Matrix::zeros(3, 6);
        let (_, cache) = cell.forward(&x, &h0);
        let (dx, dh) = cell.backward(&cache, &Matrix::filled(3, 6, 1.0));
        assert_eq!(dx.shape(), (3, 4));
        assert_eq!(dh.shape(), (3, 6));
    }

    #[test]
    fn param_count_is_three_gates() {
        let mut rng = Rng64::seed(5);
        let mut cell = GruCell::new(4, 6, &mut rng);
        assert_eq!(cell.num_params(), 3 * (4 * 6 + 6 * 6 + 6));
        assert_eq!(cell.input_dim(), 4);
        assert_eq!(cell.hidden_dim(), 6);
    }
}
