//! Classification metrics shared across the workspace.

/// Fraction of predictions equal to the ground-truth label.
///
/// Returns `0.0` for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// let acc = muffin_nn::accuracy(&[0, 1, 1], &[0, 1, 0]);
/// assert!((acc - 2.0 / 3.0).abs() < 1e-6);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / predictions.len() as f32
}

/// Row-major confusion matrix `counts[true][pred]`.
///
/// # Panics
///
/// Panics if lengths differ or any label/prediction exceeds `num_classes`.
pub fn confusion_matrix(predictions: &[usize], labels: &[usize], num_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels length mismatch");
    let mut counts = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(p < num_classes && l < num_classes, "class index out of range");
        counts[l][p] += 1;
    }
    counts
}

/// Per-class accuracy (recall): `accuracy[c]` over samples whose true label
/// is `c`. Classes with no samples report `None`.
///
/// # Panics
///
/// Panics if lengths differ or any index exceeds `num_classes`.
pub fn per_class_accuracy(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Option<f32>> {
    let cm = confusion_matrix(predictions, labels, num_classes);
    cm.iter()
        .enumerate()
        .map(|(c, row)| {
            let total: usize = row.iter().sum();
            if total == 0 {
                None
            } else {
                Some(row[c] as f32 / total as f32)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_perfect_predictions_is_one() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
    }

    #[test]
    fn accuracy_of_empty_is_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_length_mismatch() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_matrix_counts_cells() {
        let cm = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 1], 2);
        assert_eq!(cm[0][0], 1); // true 0, pred 0
        assert_eq!(cm[0][1], 1); // true 0, pred 1
        assert_eq!(cm[1][0], 1);
        assert_eq!(cm[1][1], 1);
    }

    #[test]
    fn per_class_accuracy_handles_missing_classes() {
        let pca = per_class_accuracy(&[0, 0], &[0, 0], 3);
        assert_eq!(pca[0], Some(1.0));
        assert_eq!(pca[1], None);
        assert_eq!(pca[2], None);
    }

    #[test]
    fn per_class_accuracy_is_recall() {
        // class 0: 2 samples, 1 correct.
        let pca = per_class_accuracy(&[0, 1, 1], &[0, 0, 1], 2);
        assert_eq!(pca[0], Some(0.5));
        assert_eq!(pca[1], Some(1.0));
    }
}
