use crate::loss::{one_hot, weighted_cross_entropy_loss, weighted_mse_loss, LossKind};
use crate::{LrSchedule, Mlp, MlpCache, Optimizer, Parameterized, SgdConfig};
use muffin_tensor::{Matrix, Rng64};
use muffin_trace::{Field, Tracer};

/// Summary of a completed training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss at the end of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Number of optimizer steps taken.
    pub steps: u32,
    /// Validation accuracy per epoch, when validation data was supplied.
    pub val_accuracies: Vec<f32>,
    /// Whether the run ended early on the patience criterion.
    pub stopped_early: bool,
}

muffin_json::impl_json!(struct TrainReport { epoch_losses, steps, val_accuracies, stopped_early });

impl TrainReport {
    /// The final epoch's mean loss, or `None` for a zero-epoch run.
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }

    /// The best validation accuracy observed, if validation ran.
    pub fn best_val_accuracy(&self) -> Option<f32> {
        self.val_accuracies
            .iter()
            .copied()
            .fold(None, |best, v| Some(best.map_or(v, |b: f32| b.max(v))))
    }
}

/// A reusable mini-batch trainer for [`Mlp`] classifiers.
///
/// Drives the paper's training recipe: SGD with momentum, step-decay
/// learning rate, shuffled mini-batches, and any [`LossKind`], including the
/// per-sample-weighted Eq. 2 loss used for muffin-head training.
///
/// # Example
///
/// ```
/// use muffin_nn::{ClassifierTrainer, LossKind, Mlp, MlpSpec};
/// use muffin_tensor::{Matrix, Rng64};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = Rng64::seed(0);
/// let x = Matrix::from_rows(&[&[-1.0], &[1.0]])?;
/// let y = vec![0usize, 1];
/// let mut mlp = Mlp::new(&MlpSpec::new(1, &[4], 2), &mut rng);
/// let report = ClassifierTrainer::new(50, 2)
///     .fit(&mut mlp, &x, &y, None, LossKind::CrossEntropy, &mut rng);
/// assert!(report.final_loss().unwrap() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClassifierTrainer {
    epochs: u32,
    batch_size: usize,
    schedule: LrSchedule,
    sgd: SgdConfig,
    grad_clip: Option<f32>,
}

muffin_json::impl_json!(struct ClassifierTrainer { epochs, batch_size, schedule, sgd, grad_clip });

impl ClassifierTrainer {
    /// Creates a trainer running `epochs` epochs with the given batch size,
    /// the paper's learning-rate schedule and SGD momentum 0.9.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(epochs: u32, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            epochs,
            batch_size,
            schedule: LrSchedule::paper(),
            sgd: SgdConfig::default(),
            grad_clip: Some(5.0),
        }
    }

    /// Replaces the learning-rate schedule with a constant rate.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.schedule = LrSchedule::constant(lr);
        self
    }

    /// Replaces the full learning-rate schedule.
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the SGD configuration.
    pub fn with_sgd(mut self, sgd: SgdConfig) -> Self {
        self.sgd = sgd;
        self
    }

    /// Sets (or disables, with `None`) global gradient-norm clipping.
    pub fn with_grad_clip(mut self, clip: Option<f32>) -> Self {
        self.grad_clip = clip;
        self
    }

    /// Number of epochs this trainer runs.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Trains `mlp` on features `x` and labels `y`.
    ///
    /// `sample_weights`, when given, scales each sample's loss contribution
    /// (the paper's Eq. 2 when combined with [`LossKind::WeightedMse`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()`, if `sample_weights` has the wrong
    /// length, or if `x` is empty.
    pub fn fit(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &[usize],
        sample_weights: Option<&[f32]>,
        loss: LossKind,
        rng: &mut Rng64,
    ) -> TrainReport {
        self.fit_with_validation(mlp, x, y, sample_weights, loss, None, rng)
    }

    /// Like [`ClassifierTrainer::fit`], recording one `nn.epoch` span per
    /// epoch (loss, learning rate) into `tracer`. With a no-op tracer this
    /// is exactly `fit`: tracing never touches the RNG, so the trained
    /// weights are bit-identical either way.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_traced(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &[usize],
        sample_weights: Option<&[f32]>,
        loss: LossKind,
        rng: &mut Rng64,
        tracer: &Tracer,
    ) -> TrainReport {
        self.fit_with_validation_traced(mlp, x, y, sample_weights, loss, None, rng, tracer)
    }

    /// Trains like [`ClassifierTrainer::fit`] but additionally tracks
    /// validation accuracy per epoch and stops early when it has not
    /// improved for `patience` consecutive epochs, restoring nothing (the
    /// final weights are kept — callers wanting the best epoch should
    /// snapshot on improvement).
    ///
    /// `validation` is `Some((features, labels, patience))`.
    ///
    /// # Panics
    ///
    /// Same contract as [`ClassifierTrainer::fit`]; additionally panics if
    /// the validation features/labels lengths disagree.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_with_validation(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &[usize],
        sample_weights: Option<&[f32]>,
        loss: LossKind,
        validation: Option<(&Matrix, &[usize], u32)>,
        rng: &mut Rng64,
    ) -> TrainReport {
        self.fit_with_validation_traced(
            mlp,
            x,
            y,
            sample_weights,
            loss,
            validation,
            rng,
            &Tracer::noop(),
        )
    }

    /// [`ClassifierTrainer::fit_with_validation`] with per-epoch `nn.epoch`
    /// spans recorded into `tracer`; see [`ClassifierTrainer::fit_traced`].
    ///
    /// # Panics
    ///
    /// Same contract as [`ClassifierTrainer::fit_with_validation`].
    #[allow(clippy::too_many_arguments)]
    pub fn fit_with_validation_traced(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &[usize],
        sample_weights: Option<&[f32]>,
        loss: LossKind,
        validation: Option<(&Matrix, &[usize], u32)>,
        rng: &mut Rng64,
        tracer: &Tracer,
    ) -> TrainReport {
        assert_eq!(x.rows(), y.len(), "features/labels mismatch");
        if let Some((vx, vy, _)) = validation {
            assert_eq!(vx.rows(), vy.len(), "validation features/labels mismatch");
        }
        assert!(x.rows() > 0, "cannot train on an empty dataset");
        if let Some(w) = sample_weights {
            assert_eq!(w.len(), y.len(), "weights/labels mismatch");
        }
        let num_classes = mlp.spec().output_dim();
        let targets = one_hot(y, num_classes);
        let mut optimizer = Optimizer::sgd(self.sgd);
        let mut indices: Vec<usize> = (0..x.rows()).collect();
        let mut epoch_losses = Vec::with_capacity(self.epochs as usize);
        let mut val_accuracies = Vec::new();
        let mut best_val = f32::MIN;
        let mut epochs_since_best = 0u32;
        let mut stopped_early = false;
        let mut steps = 0u32;
        // One set of buffers reused across every mini-batch of every epoch:
        // the loop below performs no per-batch heap allocation once these
        // reach steady-state size.
        let mut cache = MlpCache::new();
        let mut bx = Matrix::zeros(0, 0);
        let mut bt = Matrix::zeros(0, 0);
        let mut by: Vec<usize> = Vec::new();
        let mut bw: Vec<f32> = Vec::new();

        for epoch in 0..self.epochs {
            let epoch_start = std::time::Instant::now();
            rng.shuffle(&mut indices);
            let lr = self.schedule.at(epoch);
            let mut epoch_loss = 0.0;
            let mut batches = 0u32;
            for chunk in indices.chunks(self.batch_size) {
                x.select_rows_into(chunk, &mut bx);
                by.clear();
                by.extend(chunk.iter().map(|&i| y[i]));
                bw.clear();
                match sample_weights {
                    Some(w) => bw.extend(chunk.iter().map(|&i| w[i])),
                    None => bw.resize(chunk.len(), 1.0),
                }
                if bw.iter().sum::<f32>() <= 0.0 {
                    continue; // batch carries no training signal
                }
                mlp.forward_train_into(&bx, &mut cache);
                let logits = cache.logits();
                let (batch_loss, grad) = match loss {
                    LossKind::CrossEntropy => weighted_cross_entropy_loss(logits, &by, None),
                    LossKind::WeightedCrossEntropy => {
                        weighted_cross_entropy_loss(logits, &by, Some(&bw))
                    }
                    LossKind::WeightedMse => {
                        targets.select_rows_into(chunk, &mut bt);
                        weighted_mse_loss(logits, &bt, &bw)
                    }
                };
                mlp.zero_grad();
                mlp.backward_in_place(&mut cache, &grad);
                if let Some(clip) = self.grad_clip {
                    mlp.clip_grad_norm(clip);
                }
                optimizer.step(mlp, lr);
                epoch_loss += batch_loss;
                batches += 1;
                steps += 1;
            }
            epoch_losses.push(if batches > 0 {
                epoch_loss / batches as f32
            } else {
                0.0
            });
            if tracer.is_enabled() {
                tracer.record_span(
                    "nn.epoch",
                    vec![
                        Field::new("epoch", epoch as usize),
                        Field::new("loss", *epoch_losses.last().expect("pushed above")),
                        Field::new("lr", lr),
                    ],
                    epoch_start.elapsed(),
                );
            }

            if let Some((vx, vy, patience)) = validation {
                let acc = crate::accuracy(&mlp.predict(vx), vy);
                val_accuracies.push(acc);
                if acc > best_val + 1e-6 {
                    best_val = acc;
                    epochs_since_best = 0;
                } else {
                    epochs_since_best += 1;
                    if epochs_since_best >= patience {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }
        TrainReport {
            epoch_losses,
            steps,
            val_accuracies,
            stopped_early,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, MlpSpec};

    fn blobs(n: usize, rng: &mut Rng64) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 3;
            let (cx, cy) = match class {
                0 => (-2.0, 0.0),
                1 => (2.0, 0.0),
                _ => (0.0, 2.5),
            };
            rows.push(vec![cx + rng.normal() * 0.4, cy + rng.normal() * 0.4]);
            labels.push(class);
        }
        let x = Matrix::from_rows(&rows.iter().map(Vec::as_slice).collect::<Vec<_>>()).unwrap();
        (x, labels)
    }

    #[test]
    fn cross_entropy_training_fits_blobs() {
        let mut rng = Rng64::seed(10);
        let (x, y) = blobs(90, &mut rng);
        let mut mlp = Mlp::new(&MlpSpec::new(2, &[16], 3), &mut rng);
        let trainer = ClassifierTrainer::new(60, 16).with_learning_rate(0.1);
        trainer.fit(&mut mlp, &x, &y, None, LossKind::CrossEntropy, &mut rng);
        let acc = crate::accuracy(&mlp.predict(&x), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn weighted_mse_training_fits_blobs() {
        let mut rng = Rng64::seed(11);
        let (x, y) = blobs(90, &mut rng);
        let mut mlp = Mlp::new(
            &MlpSpec::new(2, &[16, 8], 3).with_activation(Activation::Tanh),
            &mut rng,
        );
        let trainer = ClassifierTrainer::new(120, 16).with_learning_rate(0.3);
        let weights = vec![1.0; y.len()];
        trainer.fit(
            &mut mlp,
            &x,
            &y,
            Some(&weights),
            LossKind::WeightedMse,
            &mut rng,
        );
        let acc = crate::accuracy(&mlp.predict(&x), &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn heavier_samples_dominate_the_fit() {
        let mut rng = Rng64::seed(12);
        // Two contradictory points at the same location: label differs but
        // the heavy sample should win.
        let x = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let y = vec![0usize, 1];
        let weights = vec![10.0f32, 0.1];
        let mut mlp = Mlp::new(&MlpSpec::new(1, &[4], 2), &mut rng);
        let trainer = ClassifierTrainer::new(200, 2).with_learning_rate(0.2);
        trainer.fit(
            &mut mlp,
            &x,
            &y,
            Some(&weights),
            LossKind::WeightedCrossEntropy,
            &mut rng,
        );
        assert_eq!(mlp.predict(&x)[0], 0);
    }

    #[test]
    fn loss_history_has_one_entry_per_epoch() {
        let mut rng = Rng64::seed(13);
        let (x, y) = blobs(30, &mut rng);
        let mut mlp = Mlp::new(&MlpSpec::new(2, &[4], 3), &mut rng);
        let report = ClassifierTrainer::new(7, 8).fit(
            &mut mlp,
            &x,
            &y,
            None,
            LossKind::CrossEntropy,
            &mut rng,
        );
        assert_eq!(report.epoch_losses.len(), 7);
        assert!(report.steps >= 7);
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let (x, y) = blobs(30, &mut Rng64::seed(14));
        let train = |seed: u64| {
            let mut rng = Rng64::seed(seed);
            let mut mlp = Mlp::new(&MlpSpec::new(2, &[6], 3), &mut rng);
            ClassifierTrainer::new(10, 8).fit(
                &mut mlp,
                &x,
                &y,
                None,
                LossKind::CrossEntropy,
                &mut rng,
            );
            mlp.forward(&x)
        };
        assert_eq!(train(99), train(99));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_is_rejected() {
        ClassifierTrainer::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_is_rejected() {
        let mut rng = Rng64::seed(15);
        let mut mlp = Mlp::new(&MlpSpec::new(2, &[4], 2), &mut rng);
        let x = Matrix::zeros(0, 2);
        ClassifierTrainer::new(1, 4).fit(&mut mlp, &x, &[], None, LossKind::CrossEntropy, &mut rng);
    }

    #[test]
    fn final_loss_none_for_zero_epochs() {
        let report = TrainReport {
            epoch_losses: vec![],
            steps: 0,
            val_accuracies: vec![],
            stopped_early: false,
        };
        assert!(report.final_loss().is_none());
        assert!(report.best_val_accuracy().is_none());
    }

    #[test]
    fn validation_tracking_records_each_epoch() {
        let mut rng = Rng64::seed(21);
        let (x, y) = blobs(60, &mut rng);
        let (vx, vy) = blobs(30, &mut rng);
        let mut mlp = Mlp::new(&MlpSpec::new(2, &[8], 3), &mut rng);
        let report = ClassifierTrainer::new(10, 16)
            .with_learning_rate(0.1)
            .fit_with_validation(
                &mut mlp,
                &x,
                &y,
                None,
                LossKind::CrossEntropy,
                Some((&vx, &vy, 100)),
                &mut rng,
            );
        assert_eq!(report.val_accuracies.len(), 10);
        assert!(!report.stopped_early);
        assert!(report.best_val_accuracy().expect("tracked") > 0.3);
    }

    #[test]
    fn traced_fit_records_one_span_per_epoch_and_matches_untraced() {
        let (x, y) = blobs(30, &mut Rng64::seed(16));
        let run = |tracer: &Tracer| {
            let mut rng = Rng64::seed(33);
            let mut mlp = Mlp::new(&MlpSpec::new(2, &[6], 3), &mut rng);
            ClassifierTrainer::new(5, 8).fit_traced(
                &mut mlp,
                &x,
                &y,
                None,
                LossKind::CrossEntropy,
                &mut rng,
                tracer,
            );
            mlp.forward(&x)
        };
        let tracer = Tracer::capturing();
        // Tracing must not perturb training: identical outputs either way.
        assert_eq!(run(&tracer), run(&Tracer::noop()));
        let log = tracer.finish();
        let epochs: Vec<_> = log.events.iter().filter(|e| e.name == "nn.epoch").collect();
        assert_eq!(epochs.len(), 5);
        assert!(epochs[0].field("loss").is_some());
        assert!(epochs[0].field("lr").is_some());
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let mut rng = Rng64::seed(22);
        let (x, y) = blobs(60, &mut rng);
        let (vx, vy) = blobs(30, &mut rng);
        let mut mlp = Mlp::new(&MlpSpec::new(2, &[16], 3), &mut rng);
        // Zero learning rate: validation accuracy can never improve after
        // the first epoch, so patience=2 must trip quickly.
        let report = ClassifierTrainer::new(50, 16)
            .with_learning_rate(0.0)
            .fit_with_validation(
                &mut mlp,
                &x,
                &y,
                None,
                LossKind::CrossEntropy,
                Some((&vx, &vy, 2)),
                &mut rng,
            );
        assert!(report.stopped_early);
        assert!(
            report.val_accuracies.len() <= 4,
            "stopped after {} epochs",
            report.val_accuracies.len()
        );
    }
}
