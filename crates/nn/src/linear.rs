use crate::optim::Parameterized;
use muffin_tensor::{Init, Matrix, Rng64};

/// A fully connected layer computing `y = x · W + b`.
///
/// `W` has shape `(in_dim, out_dim)` so a batch `x` of shape
/// `(batch, in_dim)` produces `(batch, out_dim)`. Gradients are accumulated
/// into the layer by [`Linear::backward`] and cleared by
/// [`Parameterized::zero_grad`].
///
/// # Example
///
/// ```
/// use muffin_nn::Linear;
/// use muffin_tensor::{Matrix, Rng64};
///
/// let mut rng = Rng64::seed(1);
/// let layer = Linear::new(3, 2, &mut rng);
/// let x = Matrix::zeros(4, 3);
/// assert_eq!(layer.forward(&x).shape(), (4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
    grad_weight: Matrix,
    grad_bias: Vec<f32>,
}

muffin_json::impl_json!(struct Linear { weight, bias, grad_weight, grad_bias });

impl Linear {
    /// Creates a layer with He-normal weights and zero biases.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        Self::with_init(in_dim, out_dim, Init::HeNormal, rng)
    }

    /// Creates a layer with the given weight initialisation.
    pub fn with_init(in_dim: usize, out_dim: usize, init: Init, rng: &mut Rng64) -> Self {
        Self {
            weight: Matrix::random(in_dim, out_dim, init, rng),
            bias: vec![0.0; out_dim],
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Borrow of the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Borrow of the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Forward pass: `x · W + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(x, &mut out);
        out
    }

    /// [`Linear::forward`] writing into `out`, reusing its allocation.
    /// Byte-identical to `forward`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weight, out);
        out.add_row_in_place(&self.bias);
    }

    /// Backward pass for the batch whose forward input was `input`.
    ///
    /// Accumulates `∂L/∂W` and `∂L/∂b` into the layer and returns
    /// `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the forward pass.
    pub fn backward(&mut self, input: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut dw = Matrix::zeros(0, 0);
        let mut db = Vec::new();
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(input, grad_out, &mut dw, &mut db, &mut grad_in);
        grad_in
    }

    /// [`Linear::backward`] writing `∂L/∂input` into `grad_in` and using
    /// `dw`/`db` as scratch, reusing all three allocations. Accumulation
    /// order matches `backward` exactly, so gradients are byte-identical.
    pub fn backward_into(
        &mut self,
        input: &Matrix,
        grad_out: &Matrix,
        dw: &mut Matrix,
        db: &mut Vec<f32>,
        grad_in: &mut Matrix,
    ) {
        self.accumulate_grads(input, grad_out, dw, db);
        // dX = grad_out . W^T
        grad_out.matmul_nt_into(&self.weight, grad_in);
    }

    /// Accumulates `∂L/∂W` and `∂L/∂b` without computing `∂L/∂input`
    /// (the input gradient of the first layer is never consumed).
    pub fn accumulate_grads(
        &mut self,
        input: &Matrix,
        grad_out: &Matrix,
        dw: &mut Matrix,
        db: &mut Vec<f32>,
    ) {
        debug_assert_eq!(input.rows(), grad_out.rows());
        // dW = input^T . grad_out
        input.matmul_tn_into(grad_out, dw);
        self.grad_weight.axpy(1.0, dw);
        // db = column sums of grad_out
        grad_out.col_sums_into(db);
        for (gb, &g) in self.grad_bias.iter_mut().zip(db.iter()) {
            *gb += g;
        }
    }
}

impl Parameterized for Linear {
    // The weight visit hands out the full padded backing store (see
    // `Matrix::padded_data`): padding params and padding grads are both
    // zero, which every update rule maps back to zero, so the optimizer
    // can treat the buffer as flat without ever perturbing the padding.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.weight.padded_data_mut(), self.grad_weight.padded_data_mut());
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn num_params(&mut self) -> usize {
        self.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Parameterized;

    fn layer() -> Linear {
        let mut rng = Rng64::seed(3);
        Linear::new(4, 3, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let l = layer();
        let x = Matrix::zeros(5, 4);
        assert_eq!(l.forward(&x).shape(), (5, 3));
    }

    #[test]
    fn forward_applies_bias() {
        let mut rng = Rng64::seed(3);
        let mut l = Linear::with_init(2, 2, Init::Zeros, &mut rng);
        l.visit_params(&mut |p, _| {
            if p.len() == 2 {
                p.copy_from_slice(&[1.0, -1.0]); // bias
            }
        });
        let out = l.forward(&Matrix::zeros(1, 2));
        assert_eq!(out.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn param_count_matches_shapes() {
        assert_eq!(layer().param_count(), 4 * 3 + 3);
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        let mut rng = Rng64::seed(9);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::random(4, 3, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        // Loss = sum(forward(x)); grad_out = ones.
        let grad_out = Matrix::filled(4, 2, 1.0);
        l.zero_grad();
        let grad_in = l.backward(&x, &grad_out);

        // Finite difference on one weight entry.
        let h = 1e-2f32;
        let base: f32 = l.forward(&x).sum();
        let mut l2 = l.clone();
        l2.visit_params(&mut |p, _| {
            if p.len() == 6 {
                p[0] += h;
            }
        });
        let bumped: f32 = l2.forward(&x).sum();
        let numeric = (bumped - base) / h;
        let mut analytic = 0.0;
        l.visit_params(&mut |p, g| {
            if p.len() == 6 {
                analytic = g[0];
            }
        });
        assert!((numeric - analytic).abs() < 1e-2, "numeric {numeric} vs {analytic}");

        // grad wrt input: column sums of W rows.
        assert_eq!(grad_in.shape(), x.shape());
    }

    #[test]
    fn backward_accumulates_bias_gradient() {
        let mut l = layer();
        l.zero_grad();
        let x = Matrix::filled(2, 4, 0.0);
        let grad_out = Matrix::filled(2, 3, 1.0);
        l.backward(&x, &grad_out);
        l.visit_params(&mut |p, g| {
            if p.len() == 3 {
                assert!(g.iter().all(|&v| (v - 2.0).abs() < 1e-6));
            }
        });
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut l = layer();
        let x = Matrix::filled(2, 4, 1.0);
        let grad_out = Matrix::filled(2, 3, 1.0);
        l.backward(&x, &grad_out);
        l.zero_grad();
        l.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }
}
