use std::fmt;

/// Non-linear activation functions available to the muffin head search
/// space and the backbone networks.
///
/// The muffin-head search space in the paper varies the activation function
/// along with depth and widths, so this enum is part of the public search
/// configuration.
///
/// # Example
///
/// ```
/// use muffin_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
/// assert_eq!(Activation::Relu.apply(3.0), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// `f(x) = x` — used on output layers.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope `0.01` for negative inputs.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

muffin_json::impl_json!(enum Activation { Identity, Relu, LeakyRelu, Sigmoid, Tanh, Gelu });

impl Activation {
    /// All activations offered to the controller's search space.
    pub const SEARCHABLE: [Activation; 4] =
        [Activation::Relu, Activation::LeakyRelu, Activation::Tanh, Activation::Sigmoid];

    /// Applies the activation to a single pre-activation value.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Gelu => {
                // tanh approximation of GELU.
                let c = (2.0 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044_715 * x * x * x)).tanh())
            }
        }
    }

    /// Derivative of the activation with respect to the pre-activation `x`.
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Gelu => {
                // Numerical derivative of the tanh approximation is accurate
                // enough for training and keeps the code honest to `apply`.
                let h = 1e-3;
                (self.apply(x + h) - self.apply(x - h)) / (2.0 * h)
            }
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Gelu => "gelu",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 6] = [
        Activation::Identity,
        Activation::Relu,
        Activation::LeakyRelu,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Gelu,
    ];

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-5.0), 0.0);
        assert_eq!(Activation::Relu.apply(5.0), 5.0);
    }

    #[test]
    fn leaky_relu_leaks() {
        assert!((Activation::LeakyRelu.apply(-2.0) + 0.02).abs() < 1e-7);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
        assert!(Activation::Sigmoid.apply(100.0) <= 1.0);
        assert!(Activation::Sigmoid.apply(-100.0) >= 0.0);
    }

    #[test]
    fn tanh_is_odd() {
        let a = Activation::Tanh;
        assert!((a.apply(0.7) + a.apply(-0.7)).abs() < 1e-6);
    }

    #[test]
    fn gelu_matches_known_values() {
        // GELU(0) = 0; GELU(x) ≈ x for large x; GELU(x) ≈ 0 for very negative x.
        assert!(Activation::Gelu.apply(0.0).abs() < 1e-6);
        assert!((Activation::Gelu.apply(6.0) - 6.0).abs() < 1e-3);
        assert!(Activation::Gelu.apply(-6.0).abs() < 1e-3);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-3f32;
        for act in ALL {
            for &x in &[-2.0f32, -0.5, -0.1, 0.1, 0.5, 2.0] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 5e-3,
                    "{act}: d/dx at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn searchable_excludes_identity() {
        assert!(!Activation::SEARCHABLE.contains(&Activation::Identity));
        assert_eq!(Activation::SEARCHABLE.len(), 4);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::LeakyRelu.to_string(), "leaky_relu");
    }
}
