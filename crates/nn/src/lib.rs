//! Neural-network substrate for the Muffin fairness framework.
//!
//! Implements everything the Muffin reproduction trains, from scratch on
//! top of [`muffin_tensor`]:
//!
//! * [`Linear`] layers with manual backpropagation,
//! * [`Activation`] functions (ReLU, LeakyReLU, Tanh, Sigmoid, GELU),
//! * losses, including the paper's **weighted MSE** (Eq. 2 of the paper)
//!   used to train the muffin head on the fairness proxy dataset,
//! * [`Optimizer`]s (SGD with momentum, Adam) over any [`Parameterized`]
//!   model,
//! * an [`Mlp`] feed-forward network (backbones and muffin heads),
//! * an [`RnnCell`] with backpropagation-through-time caches for the
//!   REINFORCE controller,
//! * learning-rate [`LrSchedule`]s matching the paper's training recipe
//!   (start 0.1, decay 0.9 every 20 steps),
//! * a reusable [`ClassifierTrainer`] driving full training runs.
//!
//! # Example
//!
//! ```
//! use muffin_nn::{Activation, ClassifierTrainer, LossKind, Mlp, MlpSpec};
//! use muffin_tensor::{Matrix, Rng64};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::seed(0);
//! // XOR-ish toy problem.
//! let x = Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]])?;
//! let y = vec![0usize, 1, 1, 0];
//! let spec = MlpSpec::new(2, &[8], 2).with_activation(Activation::Tanh);
//! let mut mlp = Mlp::new(&spec, &mut rng);
//! let trainer = ClassifierTrainer::new(400, 4).with_learning_rate(0.5);
//! trainer.fit(&mut mlp, &x, &y, None, LossKind::CrossEntropy, &mut rng);
//! assert_eq!(mlp.predict(&x), y);
//! # Ok(())
//! # }
//! ```

mod activation;
mod gru;
mod linear;
mod loss;
mod metrics;
mod mlp;
mod norm;
mod optim;
mod rnn;
mod schedule;
mod train;

pub use activation::Activation;
pub use gru::{GruCache, GruCell};
pub use linear::Linear;
pub use loss::{
    cross_entropy_loss, mse_loss, one_hot, weighted_cross_entropy_loss, weighted_mse_loss,
    LossKind,
};
pub use metrics::{accuracy, confusion_matrix, per_class_accuracy};
pub use mlp::{Mlp, MlpCache, MlpSpec};
pub use norm::{LayerNorm, LayerNormCache};
pub use optim::{Optimizer, Parameterized, SgdConfig};
pub use rnn::{RnnCache, RnnCell};
pub use schedule::LrSchedule;
pub use train::{ClassifierTrainer, TrainReport};
