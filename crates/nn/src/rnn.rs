use crate::Parameterized;
use muffin_tensor::{Init, Matrix, Rng64};

/// Forward cache for one [`RnnCell`] step, consumed by
/// [`RnnCell::backward`] during backpropagation through time.
#[derive(Debug, Clone)]
pub struct RnnCache {
    input: Matrix,
    h_prev: Matrix,
    h_new: Matrix,
}

impl RnnCache {
    /// The hidden state produced by this step.
    pub fn hidden(&self) -> &Matrix {
        &self.h_new
    }
}

/// A vanilla recurrent cell `h' = tanh(x · Wx + h · Wh + b)`.
///
/// This is the recurrent core of the Muffin controller (component ④ of the
/// paper's framework): at every decision step the cell consumes an embedding
/// of the previous action and emits the hidden state that a per-step
/// fully-connected head turns into a categorical distribution over choices.
///
/// # Example
///
/// ```
/// use muffin_nn::RnnCell;
/// use muffin_tensor::{Matrix, Rng64};
///
/// let mut rng = Rng64::seed(0);
/// let cell = RnnCell::new(4, 8, &mut rng);
/// let h0 = Matrix::zeros(1, 8);
/// let x = Matrix::zeros(1, 4);
/// let (h1, _cache) = cell.forward(&x, &h0);
/// assert_eq!(h1.shape(), (1, 8));
/// ```
#[derive(Debug, Clone)]
pub struct RnnCell {
    wx: Matrix,
    wh: Matrix,
    bias: Vec<f32>,
    grad_wx: Matrix,
    grad_wh: Matrix,
    grad_bias: Vec<f32>,
}

muffin_json::impl_json!(struct RnnCell { wx, wh, bias, grad_wx, grad_wh, grad_bias });

impl RnnCell {
    /// Creates a cell mapping `input_dim` inputs to `hidden_dim` state.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut Rng64) -> Self {
        Self {
            wx: Matrix::random(input_dim, hidden_dim, Init::XavierUniform, rng),
            wh: Matrix::random(hidden_dim, hidden_dim, Init::XavierUniform, rng),
            bias: vec![0.0; hidden_dim],
            grad_wx: Matrix::zeros(input_dim, hidden_dim),
            grad_wh: Matrix::zeros(hidden_dim, hidden_dim),
            grad_bias: vec![0.0; hidden_dim],
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.wx.rows()
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.wh.rows()
    }

    /// One recurrent step. Returns the new hidden state and the cache
    /// required by [`RnnCell::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x` or `h_prev` have the wrong number of columns.
    pub fn forward(&self, x: &Matrix, h_prev: &Matrix) -> (Matrix, RnnCache) {
        let mut z = x.matmul(&self.wx);
        let hh = h_prev.matmul(&self.wh);
        z.axpy(1.0, &hh);
        z.add_row_in_place(&self.bias);
        z.map_in_place(f32::tanh);
        let cache = RnnCache { input: x.clone(), h_prev: h_prev.clone(), h_new: z.clone() };
        (z, cache)
    }

    /// Backward through one step.
    ///
    /// `grad_h` is `∂L/∂h'` for this step (including any gradient flowing
    /// back from later steps). Accumulates parameter gradients and returns
    /// `(∂L/∂x, ∂L/∂h_prev)`.
    pub fn backward(&mut self, cache: &RnnCache, grad_h: &Matrix) -> (Matrix, Matrix) {
        // dtanh: h' = tanh(z) so dz = grad_h * (1 - h'^2).
        let dz = grad_h.zip_map(&cache.h_new, |g, h| g * (1.0 - h * h));
        self.grad_wx.axpy(1.0, &cache.input.matmul_tn(&dz));
        self.grad_wh.axpy(1.0, &cache.h_prev.matmul_tn(&dz));
        for (gb, g) in self.grad_bias.iter_mut().zip(dz.col_sums()) {
            *gb += g;
        }
        let dx = dz.matmul_nt(&self.wx);
        let dh_prev = dz.matmul_nt(&self.wh);
        (dx, dh_prev)
    }
}

impl Parameterized for RnnCell {
    // Weight visits hand out padded backing stores; padding stays zero
    // under every optimizer update (see `Linear::visit_params`).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.wx.padded_data_mut(), self.grad_wx.padded_data_mut());
        f(self.wh.padded_data_mut(), self.grad_wh.padded_data_mut());
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn num_params(&mut self) -> usize {
        self.wx.len() + self.wh.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hidden_state_is_bounded_by_tanh() {
        let mut rng = Rng64::seed(1);
        let cell = RnnCell::new(3, 5, &mut rng);
        let x = Matrix::random(2, 3, Init::ScaledNormal { std_dev: 5.0 }, &mut rng);
        let h = Matrix::random(2, 5, Init::ScaledNormal { std_dev: 5.0 }, &mut rng);
        let (h1, _) = cell.forward(&x, &h);
        assert!(h1.iter_rows().flatten().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn zero_weights_give_zero_state() {
        let mut rng = Rng64::seed(2);
        let mut cell = RnnCell::new(2, 3, &mut rng);
        cell.visit_params(&mut |p, _| p.fill(0.0));
        let (h1, _) = cell.forward(&Matrix::filled(1, 2, 1.0), &Matrix::filled(1, 3, 1.0));
        assert!(h1.iter_rows().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn backward_matches_finite_difference_on_wx() {
        let mut rng = Rng64::seed(3);
        let mut cell = RnnCell::new(2, 3, &mut rng);
        let x = Matrix::random(2, 2, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let h0 = Matrix::random(2, 3, Init::ScaledNormal { std_dev: 0.5 }, &mut rng);

        // Loss = sum(h1).
        let (_, cache) = cell.forward(&x, &h0);
        cell.zero_grad();
        let grad_h = Matrix::filled(2, 3, 1.0);
        cell.backward(&cache, &grad_h);
        let mut analytic = 0.0;
        let mut idx = 0;
        cell.visit_params(&mut |_, g| {
            if idx == 0 {
                analytic = g[0];
            }
            idx += 1;
        });

        let h = 1e-2f32;
        let mut up = cell.clone();
        let mut idx = 0;
        up.visit_params(&mut |p, _| {
            if idx == 0 {
                p[0] += h;
            }
            idx += 1;
        });
        let (h_up, _) = up.forward(&x, &h0);
        let mut down = cell.clone();
        let mut idx = 0;
        down.visit_params(&mut |p, _| {
            if idx == 0 {
                p[0] -= h;
            }
            idx += 1;
        });
        let (h_down, _) = down.forward(&x, &h0);
        let numeric = (h_up.sum() - h_down.sum()) / (2.0 * h);
        assert!((numeric - analytic).abs() < 1e-2, "numeric {numeric} vs analytic {analytic}");
    }

    #[test]
    fn backward_propagates_to_previous_hidden_state() {
        let mut rng = Rng64::seed(4);
        let mut cell = RnnCell::new(2, 3, &mut rng);
        let x = Matrix::random(1, 2, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let h0 = Matrix::random(1, 3, Init::ScaledNormal { std_dev: 0.5 }, &mut rng);
        let (_, cache) = cell.forward(&x, &h0);
        let (dx, dh) = cell.backward(&cache, &Matrix::filled(1, 3, 1.0));
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dh.shape(), h0.shape());
        // A random configuration should carry some gradient back.
        assert!(dh.norm() > 0.0);
    }

    #[test]
    fn cache_exposes_hidden() {
        let mut rng = Rng64::seed(5);
        let cell = RnnCell::new(2, 2, &mut rng);
        let (h1, cache) = cell.forward(&Matrix::zeros(1, 2), &Matrix::zeros(1, 2));
        assert_eq!(cache.hidden(), &h1);
    }

    #[test]
    fn dims_accessors() {
        let mut rng = Rng64::seed(6);
        let cell = RnnCell::new(7, 9, &mut rng);
        assert_eq!(cell.input_dim(), 7);
        assert_eq!(cell.hidden_dim(), 9);
    }
}
