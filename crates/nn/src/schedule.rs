
/// Learning-rate schedules.
///
/// The paper trains every network with "learning rate starts from 0.1 with
/// a decay of 0.9 in 20 steps" — that recipe is [`LrSchedule::paper`].
///
/// # Example
///
/// ```
/// use muffin_nn::LrSchedule;
///
/// let sched = LrSchedule::paper();
/// assert!((sched.at(0) - 0.1).abs() < 1e-7);
/// assert!((sched.at(20) - 0.09).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// A fixed learning rate.
    Constant {
        /// The learning rate used at every step.
        lr: f32,
    },
    /// Multiply by `decay` every `every` steps.
    StepDecay {
        /// Learning rate at step zero.
        initial: f32,
        /// Multiplicative factor applied at each boundary.
        decay: f32,
        /// Number of steps between decays.
        every: u32,
    },
}

muffin_json::impl_json!(tagged LrSchedule { Constant { lr }, StepDecay { initial, decay, every } });

impl LrSchedule {
    /// The paper's recipe: start at `0.1`, decay `×0.9` every 20 steps.
    pub fn paper() -> Self {
        LrSchedule::StepDecay { initial: 0.1, decay: 0.9, every: 20 }
    }

    /// Creates a constant schedule.
    pub fn constant(lr: f32) -> Self {
        LrSchedule::Constant { lr }
    }

    /// The learning rate at step `step` (0-indexed).
    pub fn at(self, step: u32) -> f32 {
        match self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay { initial, decay, every } => {
                let k = step.checked_div(every).unwrap_or(0);
                initial * decay.powi(k as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::constant(0.05);
        assert_eq!(s.at(0), 0.05);
        assert_eq!(s.at(10_000), 0.05);
    }

    #[test]
    fn step_decay_is_piecewise_constant() {
        let s = LrSchedule::StepDecay { initial: 1.0, decay: 0.5, every: 10 };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(19), 0.5);
        assert_eq!(s.at(20), 0.25);
    }

    #[test]
    fn paper_schedule_decays_by_ninety_percent_steps() {
        let s = LrSchedule::paper();
        assert!((s.at(40) - 0.1 * 0.81).abs() < 1e-7);
    }

    #[test]
    fn zero_every_means_no_decay() {
        let s = LrSchedule::StepDecay { initial: 0.2, decay: 0.5, every: 0 };
        assert_eq!(s.at(100), 0.2);
    }
}
