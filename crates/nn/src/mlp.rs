use crate::{Activation, Linear, Parameterized};
use muffin_tensor::{Matrix, Rng64};

/// Architecture description for an [`Mlp`].
///
/// In Muffin terms this describes both the synthetic *backbones* standing in
/// for the off-the-shelf CNNs and the *muffin head* whose shape the RNN
/// controller searches (e.g. the paper's `[16, 18, 12, 8]` heads).
///
/// # Example
///
/// ```
/// use muffin_nn::{Activation, MlpSpec};
///
/// let spec = MlpSpec::new(16, &[18, 12], 8).with_activation(Activation::Relu);
/// assert_eq!(spec.layer_dims(), vec![16, 18, 12, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    input_dim: usize,
    hidden: Vec<usize>,
    output_dim: usize,
    activation: Activation,
}

muffin_json::impl_json!(struct MlpSpec { input_dim, hidden, output_dim, activation });

impl MlpSpec {
    /// Creates a spec with the given input width, hidden widths and output
    /// width, defaulting to ReLU hidden activations.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(input_dim: usize, hidden: &[usize], output_dim: usize) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "dimensions must be positive");
        assert!(hidden.iter().all(|&h| h > 0), "hidden widths must be positive");
        Self { input_dim, hidden: hidden.to_vec(), output_dim, activation: Activation::Relu }
    }

    /// Sets the hidden activation function.
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden layer widths.
    pub fn hidden(&self) -> &[usize] {
        &self.hidden
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Hidden activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Full layer-width chain `[input, hidden…, output]`.
    pub fn layer_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 2);
        dims.push(self.input_dim);
        dims.extend_from_slice(&self.hidden);
        dims.push(self.output_dim);
        dims
    }

    /// Number of trainable parameters an [`Mlp`] built from this spec has.
    pub fn param_count(&self) -> usize {
        self.layer_dims().windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }
}

/// Per-layer forward caches needed for backpropagation.
///
/// The cache owns reusable buffers: feeding it to
/// [`Mlp::forward_train_into`] and [`Mlp::backward_in_place`] across many
/// mini-batches performs no per-batch heap allocation once the buffers have
/// reached their steady-state sizes.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Input to each linear layer (first entry is the network input).
    inputs: Vec<Matrix>,
    /// Pre-activation output of each linear layer.
    pre_activations: Vec<Matrix>,
    /// Ping/pong gradient buffers for the backward sweep.
    grad: Matrix,
    grad_next: Matrix,
    /// Per-layer weight/bias gradient scratch.
    dw: Matrix,
    db: Vec<f32>,
}

impl Default for MlpCache {
    fn default() -> Self {
        Self::new()
    }
}

impl MlpCache {
    /// An empty cache; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self {
            inputs: Vec::new(),
            pre_activations: Vec::new(),
            grad: Matrix::zeros(0, 0),
            grad_next: Matrix::zeros(0, 0),
            dw: Matrix::zeros(0, 0),
            db: Vec::new(),
        }
    }

    /// Logits of the most recent [`Mlp::forward_train_into`] pass.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has populated the cache yet.
    pub fn logits(&self) -> &Matrix {
        self.pre_activations
            .last()
            .expect("MlpCache::logits before any forward pass")
    }
}

/// A feed-forward multi-layer perceptron with manual backpropagation.
///
/// The final layer is linear (no activation); classification uses softmax
/// externally via [`Mlp::predict_proba`].
///
/// # Example
///
/// ```
/// use muffin_nn::{Mlp, MlpSpec};
/// use muffin_tensor::{Matrix, Rng64};
///
/// let mut rng = Rng64::seed(5);
/// let mlp = Mlp::new(&MlpSpec::new(4, &[8, 8], 3), &mut rng);
/// let probs = mlp.predict_proba(&Matrix::zeros(2, 4));
/// assert_eq!(probs.shape(), (2, 3));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    spec: MlpSpec,
    layers: Vec<Linear>,
}

muffin_json::impl_json!(struct Mlp { spec, layers });

impl Mlp {
    /// Builds a randomly initialised network from `spec`.
    pub fn new(spec: &MlpSpec, rng: &mut Rng64) -> Self {
        let dims = spec.layer_dims();
        let layers = dims.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Self { spec: spec.clone(), layers }
    }

    /// The architecture this network was built from.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Forward pass returning raw logits.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != spec.input_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i < last {
                let act = self.spec.activation;
                h.map_in_place(|v| act.apply(v));
            }
        }
        h
    }

    /// Forward pass that also returns the caches needed by [`Mlp::backward`].
    ///
    /// Allocates a fresh [`MlpCache`]; hot loops should hold one cache and
    /// call [`Mlp::forward_train_into`] instead.
    pub fn forward_train(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let mut cache = MlpCache::new();
        self.forward_train_into(x, &mut cache);
        (cache.logits().clone(), cache)
    }

    /// Forward pass writing every per-layer cache into `cache`, reusing its
    /// buffers. The logits are available as [`MlpCache::logits`].
    /// Byte-identical to [`Mlp::forward_train`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != spec.input_dim()`.
    pub fn forward_train_into(&self, x: &Matrix, cache: &mut MlpCache) {
        let n = self.layers.len();
        cache.inputs.resize(n, Matrix::zeros(0, 0));
        cache.pre_activations.resize(n, Matrix::zeros(0, 0));
        cache.inputs[0].copy_from(x);
        let act = self.spec.activation;
        let last = n - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(&cache.inputs[i], &mut cache.pre_activations[i]);
            if i < last {
                // Input to the next layer is the activated pre-activation.
                let next = &mut cache.inputs[i + 1];
                next.copy_from(&cache.pre_activations[i]);
                next.map_in_place(|v| act.apply(v));
            }
        }
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the network input.
    ///
    /// Allocates per layer; hot loops should call
    /// [`Mlp::backward_in_place`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not correspond to the most recent
    /// [`Mlp::forward_train`] batch shape.
    pub fn backward(&mut self, cache: &MlpCache, grad_logits: &Matrix) -> Matrix {
        let mut grad = grad_logits.clone();
        let act = self.spec.activation;
        let last = self.layers.len() - 1;
        for i in (0..self.layers.len()).rev() {
            if i < last {
                // Chain through the activation of layer i.
                let z = &cache.pre_activations[i];
                grad = grad.zip_map(z, |g, zv| g * act.derivative(zv));
            }
            grad = self.layers[i].backward(&cache.inputs[i], &grad);
        }
        grad
    }

    /// Backward pass reusing the scratch buffers inside `cache`.
    ///
    /// Accumulates parameter gradients exactly like [`Mlp::backward`]
    /// (byte-identical floats) but performs no per-call allocation and
    /// skips the never-consumed input gradient of the first layer.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was not populated by [`Mlp::forward_train_into`]
    /// with a matching batch shape.
    pub fn backward_in_place(&mut self, cache: &mut MlpCache, grad_logits: &Matrix) {
        let MlpCache {
            inputs,
            pre_activations,
            grad,
            grad_next,
            dw,
            db,
        } = cache;
        grad.copy_from(grad_logits);
        let act = self.spec.activation;
        let last = self.layers.len() - 1;
        for i in (0..self.layers.len()).rev() {
            if i < last {
                // Chain through the activation of layer i.
                grad.zip_apply(&pre_activations[i], |g, zv| g * act.derivative(zv));
            }
            if i > 0 {
                self.layers[i].backward_into(&inputs[i], grad, dw, db, grad_next);
                std::mem::swap(grad, grad_next);
            } else {
                self.layers[i].accumulate_grads(&inputs[i], grad, dw, db);
            }
        }
    }

    /// Softmax class probabilities for each row of `x`.
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        self.forward(x).softmax_rows()
    }

    /// Hard class predictions (argmax of the logits).
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Class probabilities and hard predictions from a **single** forward
    /// pass. Byte-identical to calling [`Mlp::predict_proba`] and
    /// [`Mlp::predict`] separately: predictions are the argmax of the raw
    /// logits, not of the softmax output.
    pub fn predict_outputs(&self, x: &Matrix) -> (Matrix, Vec<usize>) {
        let logits = self.forward(x);
        let preds = logits.argmax_rows();
        (logits.softmax_rows(), preds)
    }
}

impl Parameterized for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn num_params(&mut self) -> usize {
        self.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy_loss;
    use crate::{Optimizer, SgdConfig};
    use muffin_tensor::Init;

    #[test]
    fn spec_param_count_matches_network() {
        let spec = MlpSpec::new(10, &[16, 8], 4);
        let mut rng = Rng64::seed(0);
        let mut mlp = Mlp::new(&spec, &mut rng);
        assert_eq!(spec.param_count(), mlp.param_count());
        assert_eq!(spec.param_count(), mlp.num_params());
        assert_eq!(spec.param_count(), 10 * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn spec_rejects_zero_dims() {
        MlpSpec::new(0, &[4], 2);
    }

    #[test]
    fn forward_without_hidden_layers_is_linear() {
        let mut rng = Rng64::seed(1);
        let mlp = Mlp::new(&MlpSpec::new(3, &[], 2), &mut rng);
        let x = Matrix::zeros(1, 3);
        // Zero input through a linear layer gives exactly the bias (zeros).
        assert_eq!(mlp.forward(&x).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut rng = Rng64::seed(2);
        let mlp = Mlp::new(&MlpSpec::new(5, &[7, 6], 3), &mut rng);
        let x = Matrix::random(4, 5, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let a = mlp.forward(&x);
        let (b, _) = mlp.forward_train(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = Rng64::seed(3);
        let spec = MlpSpec::new(3, &[4], 2).with_activation(Activation::Tanh);
        let mut mlp = Mlp::new(&spec, &mut rng);
        let x = Matrix::random(5, 3, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let labels = [0usize, 1, 0, 1, 0];

        let (logits, cache) = mlp.forward_train(&x);
        let (_, grad_logits) = cross_entropy_loss(&logits, &labels);
        mlp.zero_grad();
        mlp.backward(&cache, &grad_logits);

        // Collect analytic gradients.
        let mut analytic = Vec::new();
        mlp.visit_params(&mut |_, g| analytic.push(g.to_vec()));

        // Finite differences over a few parameters of each buffer.
        let h = 1e-2f32;
        let mut buffer_idx = 0;
        let mut base_mlp = mlp.clone();
        base_mlp.visit_params(&mut |_, _| {});
        for probe in 0..analytic.len() {
            for k in [0usize] {
                let mut up = mlp.clone();
                let mut i = 0;
                up.visit_params(&mut |p, _| {
                    if i == probe && k < p.len() {
                        p[k] += h;
                    }
                    i += 1;
                });
                let (lu, _) = cross_entropy_loss(&up.forward(&x), &labels);
                let mut down = mlp.clone();
                let mut i = 0;
                down.visit_params(&mut |p, _| {
                    if i == probe && k < p.len() {
                        p[k] -= h;
                    }
                    i += 1;
                });
                let (ld, _) = cross_entropy_loss(&down.forward(&x), &labels);
                let numeric = (lu - ld) / (2.0 * h);
                let got = analytic[probe][k];
                assert!(
                    (numeric - got).abs() < 2e-2,
                    "buffer {probe}[{k}]: numeric {numeric} vs analytic {got}"
                );
            }
            buffer_idx += 1;
        }
        assert!(buffer_idx > 0);
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut rng = Rng64::seed(4);
        let spec = MlpSpec::new(2, &[8], 2);
        let mut mlp = Mlp::new(&spec, &mut rng);
        // Linearly separable blobs.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            let center = if class == 0 { -1.5 } else { 1.5 };
            rows.push(vec![center + rng.normal() * 0.3, center + rng.normal() * 0.3]);
            labels.push(class);
        }
        let x = Matrix::from_rows(&rows.iter().map(Vec::as_slice).collect::<Vec<_>>()).unwrap();
        let mut opt = Optimizer::sgd(SgdConfig::default());
        let (logits, _) = mlp.forward_train(&x);
        let (initial_loss, _) = cross_entropy_loss(&logits, &labels);
        for _ in 0..100 {
            let (logits, cache) = mlp.forward_train(&x);
            let (_, grad) = cross_entropy_loss(&logits, &labels);
            mlp.zero_grad();
            mlp.backward(&cache, &grad);
            opt.step(&mut mlp, 0.1);
        }
        let (logits, _) = mlp.forward_train(&x);
        let (final_loss, _) = cross_entropy_loss(&logits, &labels);
        assert!(final_loss < initial_loss * 0.2, "{initial_loss} -> {final_loss}");
        assert_eq!(mlp.predict(&x), labels);
    }

    #[test]
    fn in_place_paths_match_allocating_paths_bit_for_bit() {
        let mut rng = Rng64::seed(6);
        let spec = MlpSpec::new(4, &[7, 5], 3).with_activation(Activation::Tanh);
        let mlp = Mlp::new(&spec, &mut rng);
        let mut cache = MlpCache::new();
        // Reuse the same cache across batches of different sizes: results
        // must stay byte-identical to the allocating path every time.
        for batch in [6usize, 2, 9] {
            let x = Matrix::random(batch, 4, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
            let labels: Vec<usize> = (0..batch).map(|i| i % 3).collect();

            let (logits, alloc_cache) = mlp.forward_train(&x);
            mlp.forward_train_into(&x, &mut cache);
            assert_eq!(cache.logits(), &logits);

            let (_, grad) = cross_entropy_loss(&logits, &labels);
            let mut a = mlp.clone();
            a.zero_grad();
            a.backward(&alloc_cache, &grad);
            let mut b = mlp.clone();
            b.zero_grad();
            b.backward_in_place(&mut cache, &grad);

            let mut grads_a = Vec::new();
            a.visit_params(&mut |_, g| grads_a.push(g.to_vec()));
            let mut grads_b = Vec::new();
            b.visit_params(&mut |_, g| grads_b.push(g.to_vec()));
            for (ga, gb) in grads_a.iter().zip(grads_b.iter()) {
                for (x, y) in ga.iter().zip(gb.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn predict_proba_rows_are_distributions() {
        let mut rng = Rng64::seed(5);
        let mlp = Mlp::new(&MlpSpec::new(3, &[5], 4), &mut rng);
        let x = Matrix::random(6, 3, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
        let p = mlp.predict_proba(&x);
        for row in p.iter_rows() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn network_is_deterministic_given_seed() {
        let spec = MlpSpec::new(4, &[6], 2);
        let a = Mlp::new(&spec, &mut Rng64::seed(9));
        let b = Mlp::new(&spec, &mut Rng64::seed(9));
        let x = Matrix::filled(1, 4, 0.5);
        assert_eq!(a.forward(&x), b.forward(&x));
    }
}
