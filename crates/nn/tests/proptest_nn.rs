//! Property-based tests for the neural-network substrate, running on the
//! in-repo `muffin-check` harness with pinned seeds.

use muffin_check::{check, prop_assert, Config, Gen};
use muffin_nn::{
    accuracy, cross_entropy_loss, one_hot, weighted_mse_loss, Activation, Linear, Mlp, MlpSpec,
    Optimizer, Parameterized, SgdConfig,
};
use muffin_tensor::{Init, Matrix, Rng64};

fn config() -> Config {
    Config::cases(32).with_seed(0x7E45_0002)
}

#[test]
fn linear_forward_is_affine() {
    check(
        "linear layers are affine maps",
        config(),
        |g| (g.u64() % 1000, g.f32_in(0.1, 3.0)),
        |&(seed, scale)| {
            let mut rng = Rng64::seed(seed);
            let layer = Linear::new(4, 3, &mut rng);
            let x = Matrix::random(5, 4, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
            let y = Matrix::random(5, 4, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
            // f(x + y) − f(y) == f(x) − f(0)  (affine maps differ by constant)
            let lhs = &layer.forward(&(&x + &y)) - &layer.forward(&y);
            let rhs = &layer.forward(&x) - &layer.forward(&Matrix::zeros(5, 4));
            for (a, b) in lhs.iter_rows().flatten().zip(rhs.iter_rows().flatten()) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
            // Scaling the zero-bias part is homogeneous.
            let f0 = layer.forward(&Matrix::zeros(5, 4));
            let fx = &layer.forward(&x) - &f0;
            let fsx = &layer.forward(&x.scaled(scale)) - &f0;
            for (a, b) in fsx.iter_rows().flatten().zip(fx.iter_rows().flatten()) {
                prop_assert!((a - b * scale).abs() < 1e-2 * scale.max(1.0));
            }
            Ok(())
        },
    );
}

#[test]
fn cross_entropy_is_nonnegative_and_finite() {
    check(
        "CE loss >= 0, grad rows sum to 0",
        config(),
        |g| (g.u64() % 1000, g.usize_in(1..=31)),
        |&(seed, n)| {
            let mut rng = Rng64::seed(seed);
            let logits = Matrix::random(n, 5, Init::ScaledNormal { std_dev: 3.0 }, &mut rng);
            let labels: Vec<usize> = (0..n).map(|_| rng.below(5)).collect();
            let (loss, grad) = cross_entropy_loss(&logits, &labels);
            prop_assert!(loss >= 0.0);
            prop_assert!(loss.is_finite());
            prop_assert!(grad.iter_rows().flatten().all(|g| g.is_finite()));
            // Gradient rows sum to zero: softmax minus one-hot.
            for row in grad.iter_rows() {
                let s: f32 = row.iter().sum();
                prop_assert!(s.abs() < 1e-5, "row sum {s}");
            }
            Ok(())
        },
    );
}

#[test]
fn weighted_mse_scales_linearly_with_weights() {
    check(
        "uniform weight rescale cancels in Eq. 2",
        config(),
        |g| (g.u64() % 1000, g.f32_in(0.5, 4.0)),
        |&(seed, factor)| {
            let mut rng = Rng64::seed(seed);
            let pred = Matrix::random(6, 3, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
            let labels: Vec<usize> = (0..6).map(|_| rng.below(3)).collect();
            let targets = one_hot(&labels, 3);
            let w1 = vec![1.0f32; 6];
            let w2 = vec![factor; 6];
            // Uniform re-scaling of all weights cancels in the normalised loss.
            let (l1, g1) = weighted_mse_loss(&pred, &targets, &w1);
            let (l2, g2) = weighted_mse_loss(&pred, &targets, &w2);
            prop_assert!((l1 - l2).abs() < 1e-4, "{l1} vs {l2}");
            for (a, b) in g1.iter_rows().flatten().zip(g2.iter_rows().flatten()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
            Ok(())
        },
    );
}

#[test]
fn one_sgd_step_decreases_loss_on_fixed_batch() {
    check(
        "one SGD step cannot raise fixed-batch loss",
        config(),
        |g| g.u64() % 500,
        |&seed| {
            let mut rng = Rng64::seed(seed);
            let spec = MlpSpec::new(3, &[6], 2).with_activation(Activation::Tanh);
            let mut mlp = Mlp::new(&spec, &mut rng);
            let x = Matrix::random(16, 3, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
            let labels: Vec<usize> = (0..16).map(|_| rng.below(2)).collect();
            let (logits, cache) = mlp.forward_train(&x);
            let (before, grad) = cross_entropy_loss(&logits, &labels);
            mlp.zero_grad();
            mlp.backward(&cache, &grad);
            let mut opt = Optimizer::sgd(SgdConfig { momentum: 0.0, weight_decay: 0.0 });
            opt.step(&mut mlp, 0.01);
            let (after, _) = cross_entropy_loss(&mlp.forward(&x), &labels);
            prop_assert!(after <= before + 1e-5, "loss rose: {before} -> {after}");
            Ok(())
        },
    );
}

#[test]
fn predictions_are_always_valid_classes() {
    check(
        "predict emits in-range classes",
        config(),
        |g| (g.u64() % 1000, g.usize_in(2..=8)),
        |&(seed, classes)| {
            let mut rng = Rng64::seed(seed);
            let mlp = Mlp::new(&MlpSpec::new(4, &[5], classes), &mut rng);
            let x = Matrix::random(10, 4, Init::ScaledNormal { std_dev: 2.0 }, &mut rng);
            let preds = mlp.predict(&x);
            prop_assert!(preds.iter().all(|&p| p < classes));
            let labels: Vec<usize> = (0..10).map(|_| rng.below(classes)).collect();
            let acc = accuracy(&preds, &labels);
            prop_assert!((0.0..=1.0).contains(&acc));
            Ok(())
        },
    );
}

#[test]
fn grad_clipping_never_increases_norm() {
    check(
        "clip_grad_norm caps the gradient norm",
        config(),
        |g| (g.u64() % 1000, g.f32_in(0.1, 10.0)),
        |&(seed, max_norm)| {
            let mut rng = Rng64::seed(seed);
            let mut mlp = Mlp::new(&MlpSpec::new(3, &[4], 2), &mut rng);
            let x = Matrix::random(8, 3, Init::ScaledNormal { std_dev: 1.0 }, &mut rng);
            let labels: Vec<usize> = (0..8).map(|_| rng.below(2)).collect();
            let (logits, cache) = mlp.forward_train(&x);
            let (_, grad) = cross_entropy_loss(&logits, &labels);
            mlp.zero_grad();
            mlp.backward(&cache, &grad);
            let before = mlp.grad_norm();
            mlp.clip_grad_norm(max_norm);
            let after = mlp.grad_norm();
            prop_assert!(after <= before + 1e-5);
            prop_assert!(after <= max_norm + 1e-3);
            Ok(())
        },
    );
}
