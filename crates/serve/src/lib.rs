//! # muffin-serve — batched fused-inference serving
//!
//! A std-only serving layer over [`muffin::FusingStructure`]: single-sample
//! requests enter a bounded admission queue
//! ([`muffin_par::BoundedQueue`]), long-lived worker threads drain it in
//! coalesced batches, and each batch runs one fused forward pass through a
//! per-batch [`muffin::BodyOutputCache`]. Prediction is per-row (matmul,
//! softmax, argmax and consensus gating are all row-independent), so a
//! sample's answer is identical whatever batch it happens to share — batch
//! composition is a pure scheduling concern.
//!
//! ## Why long-lived workers, not `WorkerPool::map`
//!
//! [`muffin_par::WorkerPool::map`] spawns fresh OS threads on every call:
//! fine for a search episode that runs for seconds, ruinous for a request
//! path where a batch takes tens of microseconds. Thread spawn costs
//! ~20–60 µs on this class of hardware — at batch size 1 that would
//! roughly double per-request latency. The serving loop therefore spawns
//! its workers **once** per [`serve_scoped`] session and parks them on the
//! queue's condvar; batching amortises the remaining per-batch costs
//! (matrix assembly, cache setup) the same way. The measured batch-size
//! sweep lives in `docs/OPERATIONS.md`.
//!
//! ## Backpressure
//!
//! The admission queue is bounded. When it is full the request is **shed**:
//! [`ServeClient::request`] returns [`ServeError::Overloaded`] immediately
//! and the shed counter increments — the server never blocks producers
//! indefinitely and never panics on overload.
//!
//! ## Observability
//!
//! Workers record one `serve.request` observation (enqueue-to-reply
//! latency) per completed request into a shared [`muffin_trace::Tracer`]
//! histogram. Histogram aggregation is order-insensitive and its count
//! equals the number of completed requests, so with a non-saturating
//! configuration the **stripped** trace log is byte-identical across runs
//! and worker counts. Nondeterministic totals (batch count, sheds under
//! saturation) live in [`ServeStatsSnapshot`] and the loadgen report,
//! never in the trace event stream.
//!
//! # Example
//!
//! ```
//! use muffin_serve::{serve_scoped, ServeConfig, ServeEngine};
//! use muffin_trace::Tracer;
//!
//! let (engine, samples) = ServeEngine::demo(7);
//! let tracer = Tracer::capturing();
//! let (answers, stats) = serve_scoped(&engine, &ServeConfig::default(), &tracer, |client| {
//!     (0..4)
//!         .map(|i| client.request(samples.row(i)).expect("served"))
//!         .collect::<Vec<usize>>()
//! });
//! assert_eq!(answers.len(), 4);
//! assert_eq!(stats.completed, 4);
//! assert_eq!(stats.shed, 0);
//! ```

mod engine;
mod loadgen;
mod server;

pub use engine::ServeEngine;
pub use loadgen::{run_loadgen, LoadgenConfig, LoadgenReport};
pub use server::{serve_scoped, ServeClient, ServeConfig, ServeError, ServeStatsSnapshot};
