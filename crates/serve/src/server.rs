use crate::ServeEngine;
use muffin_par::BoundedQueue;
use muffin_tensor::Matrix;
use muffin_trace::Tracer;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Why a request did not get an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full: the request was shed immediately.
    /// The caller may retry; the server never blocks it.
    Overloaded,
    /// The server shut down before replying.
    Closed,
    /// The request itself is malformed (wrong feature width).
    InvalidRequest(String),
    /// The engine failed on the batch containing this request.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded: admission queue full, request shed"),
            ServeError::Closed => write!(f, "server closed before replying"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving-loop configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission queue capacity; a push into a full queue is shed.
    pub queue_depth: usize,
    /// Maximum requests coalesced into one fused forward pass.
    pub max_batch: usize,
    /// Long-lived worker threads draining the queue.
    pub workers: usize,
    /// Artificial per-batch service delay — zero in production, nonzero in
    /// tests and load drills to force queue buildup and load shedding.
    pub worker_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            max_batch: 16,
            workers: 2,
            worker_delay: Duration::ZERO,
        }
    }
}

/// Atomic counters shared by clients and workers; read out as a
/// [`ServeStatsSnapshot`] when the session ends.
#[derive(Debug, Default)]
struct ServeStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
}

impl ServeStats {
    fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}

/// End-of-session admission statistics.
///
/// `submitted == completed + shed + errors` once [`serve_scoped`] returns:
/// every accepted request is answered (workers drain the closed queue
/// before exiting) and every rejected one was counted where it failed.
/// Batch count and shed totals depend on thread scheduling, which is why
/// they live here and in the loadgen report rather than in the
/// deterministic trace event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStatsSnapshot {
    /// Requests that passed validation and attempted admission.
    pub submitted: u64,
    /// Requests answered with a prediction.
    pub completed: u64,
    /// Requests rejected because the admission queue was full.
    pub shed: u64,
    /// Requests answered with an error (bad width or engine failure).
    pub errors: u64,
    /// Fused forward passes run (each serving 1..=max_batch requests).
    pub batches: u64,
}

/// One admitted request: the feature row, its enqueue instant (for the
/// `serve.request` latency histogram) and the reply channel.
struct Job {
    sample: Vec<f32>,
    enqueued: Instant,
    reply: mpsc::Sender<Result<usize, ServeError>>,
}

/// Handle the `client_fn` of [`serve_scoped`] uses to submit requests.
/// Shareable across client threads (`&ServeClient` is `Send + Sync`).
pub struct ServeClient<'a> {
    queue: &'a BoundedQueue<Job>,
    stats: &'a ServeStats,
    num_features: usize,
}

impl ServeClient<'_> {
    /// Submits one sample and blocks until its batch is served.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidRequest`] — wrong feature width (counted as
    ///   an error, never enqueued).
    /// * [`ServeError::Overloaded`] — admission queue full; the request
    ///   was shed without blocking and the shed counter incremented.
    /// * [`ServeError::Internal`] — the engine rejected the batch.
    /// * [`ServeError::Closed`] — the session ended before a reply.
    pub fn request(&self, sample: &[f32]) -> Result<usize, ServeError> {
        if sample.len() != self.num_features {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::InvalidRequest(format!(
                "expected {} features, got {}",
                self.num_features,
                sample.len()
            )));
        }
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            sample: sample.to_vec(),
            enqueued: Instant::now(),
            reply: tx,
        };
        if self.queue.try_push(job).is_err() {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded);
        }
        match rx.recv() {
            Ok(result) => result,
            // The worker dropped the sender without replying — only
            // possible if the whole session is tearing down.
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// Feature width every request must have.
    pub fn num_features(&self) -> usize {
        self.num_features
    }
}

/// Runs a serving session: spawns `config.workers` long-lived worker
/// threads over a bounded admission queue, hands `client_fn` a
/// [`ServeClient`], and tears the session down when `client_fn` returns —
/// the queue closes, workers drain every already-admitted request, reply,
/// and exit.
///
/// Workers record one `serve.request` histogram observation per completed
/// request into `tracer`; see the crate docs for the determinism contract.
///
/// Returns `client_fn`'s result plus the final admission statistics.
pub fn serve_scoped<R, F>(
    engine: &ServeEngine,
    config: &ServeConfig,
    tracer: &Tracer,
    client_fn: F,
) -> (R, ServeStatsSnapshot)
where
    F: FnOnce(&ServeClient<'_>) -> R,
{
    let queue = BoundedQueue::new(config.queue_depth);
    let stats = ServeStats::default();
    let result = std::thread::scope(|scope| {
        // Closes the queue even if `client_fn` panics — otherwise the
        // workers would block on `pop` forever and the scope could never
        // join them to propagate the panic.
        struct CloseOnExit<'a>(&'a BoundedQueue<Job>);
        impl Drop for CloseOnExit<'_> {
            fn drop(&mut self) {
                self.0.close();
            }
        }
        let _close = CloseOnExit(&queue);
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| worker_loop(engine, config, &queue, &stats, tracer));
        }
        let client = ServeClient {
            queue: &queue,
            stats: &stats,
            num_features: engine.num_features(),
        };
        client_fn(&client)
        // `_close` drops here: workers finish the admitted backlog, see
        // the drained+closed queue, and exit; the scope joins them.
    });
    (result, stats.snapshot())
}

/// One worker: block on the queue, coalesce up to `max_batch` requests,
/// run a single fused forward, reply to every request in the batch.
/// Exits when the queue is closed and drained.
fn worker_loop(
    engine: &ServeEngine,
    config: &ServeConfig,
    queue: &BoundedQueue<Job>,
    stats: &ServeStats,
    tracer: &Tracer,
) {
    let max_batch = config.max_batch.max(1);
    while let Some(first) = queue.pop() {
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match queue.try_pop() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
        if !config.worker_delay.is_zero() {
            std::thread::sleep(config.worker_delay);
        }
        let mut features = Matrix::zeros(batch.len(), engine.num_features());
        for (r, job) in batch.iter().enumerate() {
            features.row_mut(r).copy_from_slice(&job.sample);
        }
        match engine.predict_batch(features) {
            Ok(preds) => {
                stats.batches.fetch_add(1, Ordering::Relaxed);
                for (job, class) in batch.into_iter().zip(preds) {
                    tracer.observe("serve.request", job.enqueued.elapsed());
                    stats.completed.fetch_add(1, Ordering::Relaxed);
                    // A client that gave up (channel dropped) is not an
                    // error for the server.
                    let _ = job.reply.send(Ok(class));
                }
            }
            Err(err) => {
                let msg = err.to_string();
                for job in batch {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Err(ServeError::Internal(msg.clone())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn demo() -> (ServeEngine, Matrix) {
        ServeEngine::demo(7)
    }

    #[test]
    fn served_answers_match_direct_batch_prediction() {
        let (engine, samples) = demo();
        let direct = engine
            .predict_batch(samples.row_range(0..16))
            .expect("direct");
        let config = ServeConfig {
            workers: 3,
            max_batch: 4,
            ..ServeConfig::default()
        };
        let samples = &samples;
        let (served, stats) = serve_scoped(&engine, &config, &Tracer::noop(), |client| {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..16)
                    .map(|i| s.spawn(move || client.request(samples.row(i)).expect("served")))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .collect::<Vec<usize>>()
            })
        });
        assert_eq!(served, direct, "batch coalescing changed an answer");
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.errors, 0);
        assert!(stats.batches >= 1 && stats.batches <= 16);
    }

    #[test]
    fn saturated_queue_sheds_immediately_instead_of_blocking_or_panicking() {
        let (engine, samples) = demo();
        // One slow worker, a one-slot queue, no coalescing: six requests
        // released simultaneously cannot all be admitted.
        let config = ServeConfig {
            queue_depth: 1,
            max_batch: 1,
            workers: 1,
            worker_delay: Duration::from_millis(200),
        };
        let clients = 6;
        let barrier = Barrier::new(clients);
        let samples = &samples;
        let ((), stats) = serve_scoped(&engine, &config, &Tracer::noop(), |client| {
            std::thread::scope(|s| {
                for _ in 0..clients {
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        match client.request(samples.row(0)) {
                            Ok(_) | Err(ServeError::Overloaded) => {}
                            Err(other) => panic!("unexpected serve error: {other}"),
                        }
                    });
                }
            })
        });
        assert!(stats.shed >= 1, "no request was shed: {stats:?}");
        assert_eq!(
            stats.submitted,
            stats.completed + stats.shed,
            "a request vanished: {stats:?}"
        );
    }

    #[test]
    fn wrong_width_requests_get_an_error_reply_and_are_never_enqueued() {
        let (engine, samples) = demo();
        let ((), stats) = serve_scoped(
            &engine,
            &ServeConfig::default(),
            &Tracer::noop(),
            |client| {
                let err = client.request(&[1.0, 2.0]).unwrap_err();
                assert!(matches!(err, ServeError::InvalidRequest(_)), "{err}");
                // A well-formed request on the same session still works.
                client.request(samples.row(0)).expect("served");
            },
        );
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.submitted, 1, "invalid request must not be admitted");
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn request_histogram_count_equals_completed_for_every_worker_count() {
        let (engine, samples) = demo();
        let samples = &samples;
        for workers in [1usize, 4] {
            let tracer = Tracer::capturing();
            let config = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let ((), stats) = serve_scoped(&engine, &config, &tracer, |client| {
                std::thread::scope(|s| {
                    for c in 0..4 {
                        s.spawn(move || {
                            for i in 0..8 {
                                client.request(samples.row(8 * c + i)).expect("served");
                            }
                        });
                    }
                })
            });
            assert_eq!(stats.completed, 32);
            let snap = tracer.histogram("serve.request").expect("histogram");
            assert_eq!(snap.count, 32, "workers={workers}");
        }
    }
}
