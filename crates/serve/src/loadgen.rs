use crate::{serve_scoped, ServeConfig, ServeEngine, ServeError, ServeStatsSnapshot};
use muffin_json::Json;
use muffin_tensor::{Matrix, Rng64};
use muffin_trace::Tracer;
use std::time::Instant;

/// Closed-loop load-generation configuration: `clients` threads each keep
/// exactly one request in flight until they have issued
/// `requests_per_client`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Seed for the per-client sample-selection RNG streams.
    pub seed: u64,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Requests each client issues (shed requests count as issued and are
    /// not retried).
    pub requests_per_client: u64,
    /// The serving loop under test.
    pub serve: ServeConfig,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            clients: 4,
            requests_per_client: 200,
            serve: ServeConfig::default(),
        }
    }
}

/// Throughput and latency summary of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenReport {
    /// Client threads.
    pub clients: usize,
    /// Requests attempted (clients × requests_per_client).
    pub requests: u64,
    /// End-of-run admission statistics.
    pub stats: ServeStatsSnapshot,
    /// Wall-clock duration of the whole run in nanoseconds.
    pub wall_ns: u64,
    /// Estimated median request latency (µs, from the `serve.request`
    /// histogram).
    pub p50_us: u64,
    /// Estimated 99th-percentile request latency (µs).
    pub p99_us: u64,
    /// Fastest observed request (µs).
    pub min_us: u64,
    /// Slowest observed request (µs).
    pub max_us: u64,
    /// Mean request latency (µs).
    pub mean_us: u64,
}

impl LoadgenReport {
    /// Completed requests per second of wall-clock time.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.stats.completed as f64 * 1e9 / self.wall_ns as f64
    }

    /// Mean wall-clock interval between completed requests in
    /// nanoseconds — the inverse of throughput, so "lower is better" like
    /// every other benchmark median.
    pub fn req_interval_ns(&self) -> f64 {
        if self.stats.completed == 0 {
            return 0.0;
        }
        self.wall_ns as f64 / self.stats.completed as f64
    }

    /// Renders the report in the bench-suite JSON shape
    /// (`{"suite", "results": [{"name", "median_ns", ...}]}`) that
    /// `scripts/bench-compare.sh` diffs and gates, pretty-printed one
    /// field per line as its awk extractor expects. Latency entries carry
    /// the histogram percentiles; `req_interval` carries the throughput
    /// inverse. A trailing `loadgen` object holds the raw counters for
    /// humans (no `name`/`median_ns` keys, so the extractor skips it).
    pub fn to_bench_suite_json(&self) -> String {
        let result = |name: &str, median_ns: f64, min_ns: f64, max_ns: f64| {
            let mut entry = Json::object();
            entry.insert("name", Json::Str(name.into()));
            entry.insert("iters_per_sample", Json::Int(self.stats.completed as i128));
            entry.insert("samples", Json::Int(self.clients as i128));
            entry.insert("median_ns", Json::Float(median_ns));
            entry.insert("min_ns", Json::Float(min_ns));
            entry.insert("max_ns", Json::Float(max_ns));
            entry
        };
        let us_to_ns = |us: u64| us as f64 * 1e3;
        let mut root = Json::object();
        root.insert("suite", Json::Str("serve".into()));
        root.insert(
            "results",
            Json::Arr(vec![
                result(
                    "request_p50",
                    us_to_ns(self.p50_us),
                    us_to_ns(self.min_us),
                    us_to_ns(self.max_us),
                ),
                result(
                    "request_p99",
                    us_to_ns(self.p99_us),
                    us_to_ns(self.min_us),
                    us_to_ns(self.max_us),
                ),
                result(
                    "req_interval",
                    self.req_interval_ns(),
                    self.req_interval_ns(),
                    self.req_interval_ns(),
                ),
            ]),
        );
        let mut counters = Json::object();
        counters.insert("clients", Json::Int(self.clients as i128));
        counters.insert("requests", Json::Int(self.requests as i128));
        counters.insert("completed", Json::Int(self.stats.completed as i128));
        counters.insert("shed", Json::Int(self.stats.shed as i128));
        counters.insert("request_errors", Json::Int(self.stats.errors as i128));
        counters.insert("batches", Json::Int(self.stats.batches as i128));
        counters.insert("wall_ns", Json::Int(self.wall_ns as i128));
        counters.insert("throughput_rps", Json::Float(self.throughput_rps()));
        root.insert("loadgen", counters);
        root.to_string_pretty()
    }
}

/// Runs a closed-loop load generation against `engine`: each client
/// thread draws rows from `samples` with its own deterministic RNG stream
/// and keeps one request in flight at a time. Shed requests are counted
/// and not retried, so a saturated server degrades throughput instead of
/// deadlocking the generator.
///
/// Per-request latencies land in `tracer`'s `serve.request` histogram; if
/// any request was shed, a single `serve.shed` counter event is recorded
/// afterwards (only then — a non-saturating run leaves the event stream
/// untouched so its stripped trace stays byte-stable across worker
/// counts).
///
/// # Errors
///
/// Returns a message if the configuration is unusable (no clients, no
/// samples, or a sample width mismatching the engine).
pub fn run_loadgen(
    engine: &ServeEngine,
    samples: &Matrix,
    config: &LoadgenConfig,
    tracer: &Tracer,
) -> Result<LoadgenReport, String> {
    if config.clients == 0 {
        return Err("loadgen needs at least one client".into());
    }
    if samples.rows() == 0 {
        return Err("loadgen needs a non-empty sample matrix".into());
    }
    if samples.cols() != engine.num_features() {
        return Err(format!(
            "sample matrix has {} features per row, the engine expects {}",
            samples.cols(),
            engine.num_features()
        ));
    }
    let start = Instant::now();
    let ((), stats) = serve_scoped(engine, &config.serve, tracer, |client| {
        std::thread::scope(|scope| {
            for c in 0..config.clients {
                let mut rng = Rng64::seed(config.seed ^ (0xC0FFEE + c as u64));
                scope.spawn(move || {
                    for _ in 0..config.requests_per_client {
                        let row = rng.below(samples.rows());
                        match client.request(samples.row(row)) {
                            Ok(_) | Err(ServeError::Overloaded) => {}
                            Err(ServeError::Internal(_)) | Err(ServeError::Closed) => {}
                            Err(ServeError::InvalidRequest(msg)) => {
                                // The generator only sends engine-shaped
                                // rows; reaching this is a loadgen bug.
                                panic!("loadgen sent an invalid request: {msg}");
                            }
                        }
                    }
                });
            }
        })
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    if stats.shed > 0 {
        tracer.count("serve.shed", stats.shed);
    }
    let snap = tracer.histogram("serve.request").unwrap_or_default();
    Ok(LoadgenReport {
        clients: config.clients,
        requests: config.clients as u64 * config.requests_per_client,
        stats,
        wall_ns,
        p50_us: snap.percentile_us(0.50),
        p99_us: snap.percentile_us(0.99),
        min_us: if snap.count == 0 { 0 } else { snap.min_us },
        max_us: snap.max_us,
        mean_us: snap.mean_us(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn non_saturating_loadgen_completes_every_request() {
        let (engine, samples) = ServeEngine::demo(7);
        let config = LoadgenConfig {
            clients: 3,
            requests_per_client: 20,
            serve: ServeConfig {
                queue_depth: 32,
                ..ServeConfig::default()
            },
            ..LoadgenConfig::default()
        };
        let tracer = Tracer::capturing();
        let report = run_loadgen(&engine, &samples, &config, &tracer).expect("run");
        assert_eq!(report.requests, 60);
        assert_eq!(report.stats.completed, 60);
        assert_eq!(report.stats.shed, 0);
        assert!(report.throughput_rps() > 0.0);
        assert!(report.p50_us <= report.p99_us);
        assert!(report.p99_us <= report.max_us);
        let json = report.to_bench_suite_json();
        for needle in [
            "\"suite\": \"serve\"",
            "request_p50",
            "request_p99",
            "req_interval",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // The report must parse back as JSON.
        let parsed: Json = muffin_json::from_str(&json).expect("report parses");
        assert!(parsed.get("results").is_some());
    }

    #[test]
    fn saturating_loadgen_sheds_and_reports_it() {
        let (engine, samples) = ServeEngine::demo(7);
        let config = LoadgenConfig {
            clients: 6,
            requests_per_client: 5,
            serve: ServeConfig {
                queue_depth: 1,
                max_batch: 1,
                workers: 1,
                worker_delay: Duration::from_millis(30),
            },
            ..LoadgenConfig::default()
        };
        let tracer = Tracer::capturing();
        let report = run_loadgen(&engine, &samples, &config, &tracer).expect("run");
        assert!(
            report.stats.shed > 0,
            "saturation produced no sheds: {report:?}"
        );
        assert_eq!(
            report.stats.submitted,
            report.stats.completed + report.stats.shed
        );
        assert_eq!(tracer.counter_value("serve.shed"), report.stats.shed);
    }

    #[test]
    fn misconfigured_loadgen_errors_up_front() {
        let (engine, samples) = ServeEngine::demo(7);
        let mut config = LoadgenConfig::default();
        config.clients = 0;
        assert!(run_loadgen(&engine, &samples, &config, &Tracer::noop()).is_err());
        config.clients = 1;
        let narrow = Matrix::zeros(4, samples.cols() + 1);
        assert!(run_loadgen(&engine, &narrow, &config, &Tracer::noop()).is_err());
        let empty = Matrix::zeros(0, samples.cols());
        assert!(run_loadgen(&engine, &empty, &config, &Tracer::noop()).is_err());
    }
}
