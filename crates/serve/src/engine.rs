use muffin::{BodyOutputCache, FusingStructure, HeadSpec, HeadTrainConfig, MuffinError};
use muffin_data::IsicLike;
use muffin_models::{Architecture, BackboneConfig, ModelPool};
use muffin_tensor::{Matrix, Rng64};

/// An immutable fused model ready to serve: the frozen pool, the trained
/// fusing structure and the feature width requests must match.
///
/// The engine is `Sync`, so one instance is shared by reference across all
/// serving workers; every batch goes through the **checked** request path
/// ([`FusingStructure::try_predict_cached`]) so a malformed structure (e.g.
/// deserialized from a corrupt checkpoint) surfaces as an error reply, not
/// a worker panic.
#[derive(Debug)]
pub struct ServeEngine {
    pool: ModelPool,
    fusing: FusingStructure,
    num_features: usize,
}

impl ServeEngine {
    /// Wraps a pool and a fusing structure for serving. `num_features` is
    /// the feature width every request row must have.
    pub fn new(pool: ModelPool, fusing: FusingStructure, num_features: usize) -> Self {
        Self {
            pool,
            fusing,
            num_features,
        }
    }

    /// Builds a small self-contained demo deployment: the `IsicLike` small
    /// dataset, a two-model pool (ResNet-18 + DenseNet121, fast training)
    /// and a `[16,8] relu` head trained on the age-proxy — everything the
    /// `muffin serve` / `muffin loadgen` commands need without files on
    /// disk. Returns the engine plus the test-split feature matrix for
    /// load generation. Deterministic in `seed`.
    pub fn demo(seed: u64) -> (ServeEngine, Matrix) {
        let mut rng = Rng64::seed(seed);
        let split = IsicLike::small().generate(&mut rng).split_default(&mut rng);
        let pool = ModelPool::train(
            &split.train,
            &[Architecture::resnet18(), Architecture::densenet121()],
            &BackboneConfig::fast(),
            &mut rng,
        );
        let mut map = muffin::PrivilegeMap::new();
        map.set(
            split.train.schema().by_name("age").expect("age"),
            vec![4, 5],
        );
        let proxy =
            muffin::ProxyDataset::build(&split.train, &map).expect("isic-like has age groups");
        let mut fusing = FusingStructure::new(
            vec![0, 1],
            HeadSpec::new(vec![16, 8], muffin_nn::Activation::Relu),
            &pool,
            &mut rng,
        )
        .expect("two-model body is valid");
        fusing.train_head(
            &pool,
            &split.train,
            &proxy,
            &HeadTrainConfig::fast(),
            &mut rng,
        );
        let num_features = split.train.feature_dim();
        (
            Self::new(pool, fusing, num_features),
            split.test.features().clone(),
        )
    }

    /// Feature width every request row must have.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.pool
            .get(0)
            .map(|m| m.num_classes())
            .unwrap_or_default()
    }

    /// Runs one fused forward pass over a batch of request rows and
    /// returns one class per row.
    ///
    /// Body outputs go through a per-batch [`BodyOutputCache`], so each
    /// pool model runs exactly one forward per batch however many rows the
    /// batch coalesced.
    ///
    /// # Errors
    ///
    /// Returns [`MuffinError::InvalidConfig`] if the batch width does not
    /// match [`ServeEngine::num_features`] or the fusing structure fails
    /// validation against the pool.
    pub fn predict_batch(&self, features: Matrix) -> Result<Vec<usize>, MuffinError> {
        if features.cols() != self.num_features {
            return Err(MuffinError::InvalidConfig(format!(
                "request batch has {} features per row, the engine expects {}",
                features.cols(),
                self.num_features
            )));
        }
        let cache = BodyOutputCache::new(&self.pool, features);
        self.fusing.try_predict_cached(&cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_engine_serves_its_own_samples() {
        let (engine, samples) = ServeEngine::demo(7);
        assert_eq!(engine.num_features(), samples.cols());
        assert!(engine.num_classes() > 0);
        let preds = engine
            .predict_batch(samples.clone())
            .expect("well-formed batch");
        assert_eq!(preds.len(), samples.rows());
        assert!(preds.iter().all(|&c| c < engine.num_classes()));
    }

    #[test]
    fn wrong_width_batches_error_instead_of_panicking() {
        let (engine, _) = ServeEngine::demo(7);
        let bad = Matrix::zeros(3, engine.num_features() + 1);
        let err = engine.predict_batch(bad).unwrap_err();
        assert!(matches!(err, MuffinError::InvalidConfig(_)), "{err:?}");
    }

    #[test]
    fn batch_prediction_is_row_independent() {
        let (engine, samples) = ServeEngine::demo(7);
        let full = engine
            .predict_batch(samples.row_range(0..8))
            .expect("batch of 8");
        for r in 0..8 {
            let single = engine
                .predict_batch(samples.row_range(r..r + 1))
                .expect("batch of 1");
            assert_eq!(single, vec![full[r]], "row {r} depends on its batch");
        }
    }
}
