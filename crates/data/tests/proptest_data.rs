//! Property-based tests for the dataset substrate, running on the in-repo
//! `muffin-check` harness with pinned seeds.

use muffin_check::{check, prop_assert, prop_assert_eq, prop_assert_ne, Config, Gen};
use muffin_data::{
    group_accuracies, unfairness_score, AttributeSpec, DataGenerator, GeneratorConfig, GroupSpec,
    IsicLike,
};
use muffin_tensor::Rng64;

fn cases() -> Config {
    Config::cases(24).with_seed(0x7E45_0003)
}

fn config(groups: u16, correlation: f32) -> GeneratorConfig {
    let mut gs = vec![GroupSpec::new("g0", 0.5)];
    for g in 1..groups {
        gs.push(GroupSpec::new(format!("g{g}"), 0.5 / (groups - 1) as f32).with_angle(40.0));
    }
    GeneratorConfig {
        num_samples: 400,
        feature_dim: 8,
        num_classes: 3,
        class_sep: 2.0,
        base_noise: 1.0,
        spectral_decay: 0.85,
        attributes: vec![
            AttributeSpec::new("a", gs.clone(), vec![(0, 1)]),
            AttributeSpec::new("b", gs, vec![(1, 2)]),
        ],
        correlation,
        interactions: vec![],
    }
}

#[test]
fn same_seed_same_dataset() {
    check(
        "generation is seed-deterministic",
        cases(),
        |g: &mut Gen| (g.u16_in(2..=4), g.f32_in(0.0, 1.0), g.u64() % 300),
        |&(groups, corr, seed)| {
            let gen = DataGenerator::new(config(groups, corr)).expect("valid");
            let a = gen.generate(&mut Rng64::seed(seed));
            let b = gen.generate(&mut Rng64::seed(seed));
            prop_assert_eq!(a.features(), b.features());
            prop_assert_eq!(a.labels(), b.labels());
            Ok(())
        },
    );
}

#[test]
fn different_seeds_differ() {
    check(
        "adjacent seeds give different data",
        cases(),
        |g: &mut Gen| (g.u16_in(2..=4), g.u64() % 300),
        |&(groups, seed)| {
            let gen = DataGenerator::new(config(groups, 0.3)).expect("valid");
            let a = gen.generate(&mut Rng64::seed(seed));
            let b = gen.generate(&mut Rng64::seed(seed + 1));
            prop_assert_ne!(a.features(), b.features());
            Ok(())
        },
    );
}

#[test]
fn subset_of_subset_composes() {
    check("subset composition", cases(), |g: &mut Gen| g.u64() % 300, |&seed| {
        let ds = IsicLike::small().with_num_samples(100).generate(&mut Rng64::seed(seed));
        let outer: Vec<usize> = (0..50).collect();
        let inner: Vec<usize> = (0..25).map(|i| i * 2).collect();
        let two_step = ds.subset(&outer).subset(&inner);
        let direct: Vec<usize> = inner.iter().map(|&i| outer[i]).collect();
        let one_step = ds.subset(&direct);
        prop_assert_eq!(two_step.labels(), one_step.labels());
        prop_assert_eq!(two_step.features(), one_step.features());
        Ok(())
    });
}

#[test]
fn group_accuracy_counts_partition_the_dataset() {
    check(
        "group counts partition the samples",
        cases(),
        |g: &mut Gen| (g.u64() % 300, g.usize_in(2..=5)),
        |&(seed, num_groups)| {
            let mut rng = Rng64::seed(seed);
            let n = 120;
            let preds: Vec<usize> = (0..n).map(|_| rng.below(4)).collect();
            let labels: Vec<usize> = (0..n).map(|_| rng.below(4)).collect();
            let groups: Vec<u16> = (0..n).map(|_| rng.below(num_groups) as u16).collect();
            let accs = group_accuracies(&preds, &labels, &groups, num_groups);
            let total: usize = accs.iter().map(|g| g.count).sum();
            prop_assert_eq!(total, n);
            Ok(())
        },
    );
}

#[test]
fn unfairness_is_zero_iff_groups_match_overall() {
    check("equal group accuracies give U = 0", cases(), |g: &mut Gen| g.u64() % 300, |&seed| {
        let mut rng = Rng64::seed(seed);
        // Construct two groups with identical accuracy by mirroring.
        let n = 40;
        let labels: Vec<usize> = (0..n).map(|_| rng.below(2)).collect();
        let mut preds = labels.clone();
        // Flip exactly the first 5 of each group.
        let groups: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let mut flipped = [0usize; 2];
        for i in 0..n {
            let g = groups[i] as usize;
            if flipped[g] < 5 {
                preds[i] = 1 - labels[i];
                flipped[g] += 1;
            }
        }
        let u = unfairness_score(&preds, &labels, &groups, 2);
        prop_assert!(u.abs() < 1e-6, "equal group accuracies must give U = 0, got {u}");
        Ok(())
    });
}

#[test]
fn stratified_and_random_splits_partition_identically_sized() {
    check("split flavours agree on total size", cases(), |g: &mut Gen| g.u64() % 200, |&seed| {
        let ds = IsicLike::small().with_num_samples(200).generate(&mut Rng64::seed(seed));
        let random = ds.split_default(&mut Rng64::seed(seed));
        let strat = ds.split_stratified(0.64, 0.16, None, &mut Rng64::seed(seed));
        prop_assert_eq!(
            random.train.len() + random.val.len() + random.test.len(),
            strat.train.len() + strat.val.len() + strat.test.len()
        );
        Ok(())
    });
}

#[test]
fn label_noise_monotonically_increases_flips() {
    check("more noise flips more labels", cases(), |g: &mut Gen| g.u64() % 200, |&seed| {
        let ds = IsicLike::small().with_num_samples(300).generate(&mut Rng64::seed(seed));
        let flips = |rate: f32| {
            let noisy = ds.with_label_noise(rate, &mut Rng64::seed(seed ^ 0x55));
            noisy.labels().iter().zip(ds.labels()).filter(|(a, b)| a != b).count()
        };
        let low = flips(0.1);
        let high = flips(0.5);
        prop_assert!(high > low, "50% noise ({high}) must flip more than 10% ({low})");
        Ok(())
    });
}
