//! The scenario handbook must stay in lockstep with the code: every field
//! of the JSON schema and every builtin scenario name has to appear in
//! `docs/SCENARIOS.md`, so the docs can never silently fall behind a
//! schema change.

use muffin_data::{ScenarioRegistry, SCENARIO_SCHEMA_FIELDS};

fn handbook() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SCENARIOS.md");
    std::fs::read_to_string(path).expect("docs/SCENARIOS.md is committed")
}

#[test]
fn every_schema_field_is_documented() {
    let text = handbook();
    for field in SCENARIO_SCHEMA_FIELDS {
        assert!(
            text.contains(&format!("`{field}`")),
            "docs/SCENARIOS.md does not document the schema field `{field}`"
        );
    }
}

#[test]
fn every_builtin_has_a_handbook_section() {
    let text = handbook();
    for name in ScenarioRegistry::builtin_names() {
        assert!(
            text.contains(&format!("`{name}`")),
            "docs/SCENARIOS.md does not mention the builtin scenario `{name}`"
        );
    }
}

#[test]
fn the_handbook_documents_the_current_format_version() {
    let text = handbook();
    assert!(
        text.contains(&format!(
            "`\"version\": {}`",
            muffin_data::SCENARIO_FORMAT_VERSION
        )),
        "docs/SCENARIOS.md must state the current format version"
    );
}
