use crate::{AttributeSchema, Dataset, SensitiveAttribute};
use muffin_tensor::{Matrix, Rng64};

/// One group of a synthetic sensitive attribute.
///
/// A group's *disadvantage* is produced by three mechanisms mirroring why
/// real unprivileged groups lose accuracy:
///
/// * `share` — population share; rare groups are under-represented in
///   training exactly like the paper's minority age/site groups,
/// * `angle_deg` — rotation of the class-signal subspace for this group's
///   samples; a model fit to the majority misreads rotated samples, and
///   because attributes rotate **overlapping planes**, re-fitting one
///   group's rotation drags accuracy on another attribute down (the
///   paper's seesaw),
/// * `noise_mult` — extra observation noise (e.g. poorly lit lesion photos).
///
/// # Example
///
/// ```
/// use muffin_data::GroupSpec;
///
/// let g = GroupSpec::new("oral/genital", 0.06).with_angle(80.0).with_noise_mult(1.9);
/// assert!(g.is_disadvantaged());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    name: String,
    share: f32,
    angle_deg: f32,
    noise_mult: f32,
}

muffin_json::impl_json!(struct GroupSpec { name, share, angle_deg, noise_mult });

impl GroupSpec {
    /// Creates a privileged group with the given population share.
    ///
    /// # Panics
    ///
    /// Panics if `share` is not positive.
    pub fn new(name: impl Into<String>, share: f32) -> Self {
        assert!(share > 0.0, "group share must be positive");
        Self { name: name.into(), share, angle_deg: 0.0, noise_mult: 1.0 }
    }

    /// Sets the class-signal rotation angle (degrees) for this group.
    pub fn with_angle(mut self, angle_deg: f32) -> Self {
        self.angle_deg = angle_deg;
        self
    }

    /// Sets the observation-noise multiplier for this group.
    ///
    /// # Panics
    ///
    /// Panics if `noise_mult` is not positive.
    pub fn with_noise_mult(mut self, noise_mult: f32) -> Self {
        assert!(noise_mult > 0.0, "noise multiplier must be positive");
        self.noise_mult = noise_mult;
        self
    }

    /// Group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Population share (unnormalised weight).
    pub fn share(&self) -> f32 {
        self.share
    }

    /// Rotation angle in degrees.
    pub fn angle_deg(&self) -> f32 {
        self.angle_deg
    }

    /// Observation-noise multiplier.
    pub fn noise_mult(&self) -> f32 {
        self.noise_mult
    }

    /// Whether the generator *designed* this group to be disadvantaged.
    ///
    /// The Muffin pipeline itself determines privilege empirically from
    /// model accuracy; this designed flag exists for tests and analysis.
    pub fn is_disadvantaged(&self) -> bool {
        self.angle_deg.abs() > 15.0 || self.noise_mult > 1.25
    }
}

/// A synthetic sensitive attribute: its groups plus the coordinate planes
/// its rotations act on.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSpec {
    name: String,
    groups: Vec<GroupSpec>,
    planes: Vec<(usize, usize)>,
}

muffin_json::impl_json!(struct AttributeSpec { name, groups, planes });

impl AttributeSpec {
    /// Creates an attribute from its groups and rotation planes.
    ///
    /// Planes are `(i, j)` coordinate pairs; a group with angle `θ` has its
    /// class signal rotated by `θ` in every listed plane. Attributes that
    /// share a coordinate are *entangled*.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or a plane is degenerate (`i == j`).
    pub fn new(name: impl Into<String>, groups: Vec<GroupSpec>, planes: Vec<(usize, usize)>) -> Self {
        assert!(!groups.is_empty(), "attribute needs at least one group");
        assert!(planes.iter().all(|&(i, j)| i != j), "rotation plane must use two distinct axes");
        Self { name: name.into(), groups, planes }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Group specifications.
    pub fn groups(&self) -> &[GroupSpec] {
        &self.groups
    }

    /// Rotation planes.
    pub fn planes(&self) -> &[(usize, usize)] {
        &self.planes
    }

    /// Indices of groups designed to be disadvantaged.
    pub fn designed_unprivileged(&self) -> Vec<u16> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_disadvantaged())
            .map(|(i, _)| i as u16)
            .collect()
    }

    fn to_schema_attribute(&self) -> SensitiveAttribute {
        let names: Vec<&str> = self.groups.iter().map(GroupSpec::name).collect();
        SensitiveAttribute::new(self.name.clone(), &names)
    }
}

/// Extra disadvantage applied to **one joint cell** of two attributes.
///
/// The marginal [`GroupSpec`] rotations act per attribute; a cell effect
/// acts only on samples that fall in a specific *intersection* (e.g. the
/// `old × female` cell), so a dataset can look fair under every marginal
/// attribute while one joint cell is systematically misread — the hidden
/// intersectional disadvantage MIFair and Chen & Sarro measure.
#[derive(Debug, Clone, PartialEq)]
pub struct CellEffect {
    group_a: String,
    group_b: String,
    angle_deg: f32,
    noise_mult: f32,
}

muffin_json::impl_json!(struct CellEffect { group_a, group_b, angle_deg, noise_mult });

impl CellEffect {
    /// Creates a no-op effect targeting the `(group_a, group_b)` cell.
    ///
    /// Group names refer to the parent [`InteractionSpec`]'s two attributes.
    pub fn new(group_a: impl Into<String>, group_b: impl Into<String>) -> Self {
        Self { group_a: group_a.into(), group_b: group_b.into(), angle_deg: 0.0, noise_mult: 1.0 }
    }

    /// Sets the extra class-signal rotation (degrees) for this cell.
    pub fn with_angle(mut self, angle_deg: f32) -> Self {
        self.angle_deg = angle_deg;
        self
    }

    /// Sets the extra observation-noise multiplier for this cell.
    ///
    /// # Panics
    ///
    /// Panics if `noise_mult` is not positive.
    pub fn with_noise_mult(mut self, noise_mult: f32) -> Self {
        assert!(noise_mult > 0.0, "noise multiplier must be positive");
        self.noise_mult = noise_mult;
        self
    }

    /// Name of the targeted group in the interaction's first attribute.
    pub fn group_a(&self) -> &str {
        &self.group_a
    }

    /// Name of the targeted group in the interaction's second attribute.
    pub fn group_b(&self) -> &str {
        &self.group_b
    }

    /// Extra rotation angle in degrees.
    pub fn angle_deg(&self) -> f32 {
        self.angle_deg
    }

    /// Extra observation-noise multiplier.
    pub fn noise_mult(&self) -> f32 {
        self.noise_mult
    }
}

/// Intersectional disadvantage between two attributes: a set of
/// [`CellEffect`]s plus the coordinate planes they rotate.
///
/// Effects are applied **after** all marginal group rotations and consume
/// no randomness, so a config with an empty `interactions` list generates
/// byte-identical datasets to one predating the field.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionSpec {
    attr_a: String,
    attr_b: String,
    planes: Vec<(usize, usize)>,
    cells: Vec<CellEffect>,
}

muffin_json::impl_json!(struct InteractionSpec { attr_a, attr_b, planes, cells });

impl InteractionSpec {
    /// Creates an interaction between two named attributes rotating the
    /// given planes.
    ///
    /// # Panics
    ///
    /// Panics if the attribute names coincide or a plane is degenerate.
    pub fn new(
        attr_a: impl Into<String>,
        attr_b: impl Into<String>,
        planes: Vec<(usize, usize)>,
    ) -> Self {
        let (attr_a, attr_b) = (attr_a.into(), attr_b.into());
        assert!(attr_a != attr_b, "interaction needs two distinct attributes");
        assert!(planes.iter().all(|&(i, j)| i != j), "rotation plane must use two distinct axes");
        Self { attr_a, attr_b, planes, cells: Vec::new() }
    }

    /// Adds a cell effect.
    pub fn with_cell(mut self, cell: CellEffect) -> Self {
        self.cells.push(cell);
        self
    }

    /// First attribute name.
    pub fn attr_a(&self) -> &str {
        &self.attr_a
    }

    /// Second attribute name.
    pub fn attr_b(&self) -> &str {
        &self.attr_b
    }

    /// Rotation planes shared by every cell effect.
    pub fn planes(&self) -> &[(usize, usize)] {
        &self.planes
    }

    /// Cell effects.
    pub fn cells(&self) -> &[CellEffect] {
        &self.cells
    }
}

/// Full configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of samples to generate.
    pub num_samples: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Scale of the class prototypes (higher → easier problem).
    pub class_sep: f32,
    /// Baseline observation-noise level.
    pub base_noise: f32,
    /// Per-coordinate energy decay: class signal and noise in coordinate
    /// `k` scale by `decay^k`, concentrating information in low
    /// coordinates so plane rotations matter.
    pub spectral_decay: f32,
    /// Sensitive attributes.
    pub attributes: Vec<AttributeSpec>,
    /// Probability that a sample's group draws reuse one shared
    /// disadvantage latent across attributes (creates the overlap between
    /// unprivileged groups that Algorithm 1 exploits).
    pub correlation: f32,
    /// Intersectional cell effects applied after the marginal rotations.
    pub interactions: Vec<InteractionSpec>,
}

muffin_json::impl_json!(struct GeneratorConfig {
    num_samples, feature_dim, num_classes, class_sep, base_noise, spectral_decay, attributes, correlation, interactions,
});

impl GeneratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_samples == 0 {
            return Err("num_samples must be positive".into());
        }
        if self.num_classes < 2 {
            return Err("need at least two classes".into());
        }
        if self.feature_dim == 0 {
            return Err("feature_dim must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.correlation) {
            return Err("correlation must lie in [0, 1]".into());
        }
        if self.attributes.is_empty() {
            return Err("need at least one sensitive attribute".into());
        }
        for attr in &self.attributes {
            for &(i, j) in attr.planes() {
                if i >= self.feature_dim || j >= self.feature_dim {
                    return Err(format!(
                        "attribute {} rotates plane ({i},{j}) outside feature_dim {}",
                        attr.name(),
                        self.feature_dim
                    ));
                }
            }
        }
        for inter in &self.interactions {
            let label = format!("interaction {}×{}", inter.attr_a(), inter.attr_b());
            let attr_of = |name: &str| self.attributes.iter().find(|a| a.name() == name);
            let Some(a) = attr_of(inter.attr_a()) else {
                return Err(format!("{label} names unknown attribute {}", inter.attr_a()));
            };
            let Some(b) = attr_of(inter.attr_b()) else {
                return Err(format!("{label} names unknown attribute {}", inter.attr_b()));
            };
            for &(i, j) in inter.planes() {
                if i >= self.feature_dim || j >= self.feature_dim {
                    return Err(format!(
                        "{label} rotates plane ({i},{j}) outside feature_dim {}",
                        self.feature_dim
                    ));
                }
            }
            for cell in inter.cells() {
                if !a.groups().iter().any(|g| g.name() == cell.group_a()) {
                    return Err(format!(
                        "{label} cell names unknown group {} of {}",
                        cell.group_a(),
                        inter.attr_a()
                    ));
                }
                if !b.groups().iter().any(|g| g.name() == cell.group_b()) {
                    return Err(format!(
                        "{label} cell names unknown group {} of {}",
                        cell.group_b(),
                        inter.attr_b()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Seeded synthetic dataset generator.
///
/// # Example
///
/// ```
/// use muffin_data::{AttributeSpec, DataGenerator, GeneratorConfig, GroupSpec};
/// use muffin_tensor::Rng64;
///
/// # fn main() -> Result<(), String> {
/// let config = GeneratorConfig {
///     num_samples: 200,
///     feature_dim: 8,
///     num_classes: 3,
///     class_sep: 2.0,
///     base_noise: 0.8,
///     spectral_decay: 0.85,
///     attributes: vec![AttributeSpec::new(
///         "age",
///         vec![GroupSpec::new("young", 0.7), GroupSpec::new("old", 0.3).with_angle(60.0)],
///         vec![(0, 1)],
///     )],
///     correlation: 0.0,
///     interactions: vec![],
/// };
/// let dataset = DataGenerator::new(config)?.generate(&mut Rng64::seed(1));
/// assert_eq!(dataset.len(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DataGenerator {
    config: GeneratorConfig,
}

impl DataGenerator {
    /// Creates a generator after validating `config`.
    ///
    /// # Errors
    ///
    /// Returns the validation message if the configuration is inconsistent.
    pub fn new(config: GeneratorConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// The schema the generated datasets carry.
    pub fn schema(&self) -> AttributeSchema {
        AttributeSchema::new(
            self.config.attributes.iter().map(AttributeSpec::to_schema_attribute).collect(),
        )
    }

    /// Generates a dataset.
    ///
    /// Identical `(config, seed)` pairs produce identical datasets.
    pub fn generate(&self, rng: &mut Rng64) -> Dataset {
        let cfg = &self.config;
        let n = cfg.num_samples;
        let d = cfg.feature_dim;

        // Spectral envelope concentrating signal (and noise) in low coords.
        let envelope: Vec<f32> = (0..d).map(|k| cfg.spectral_decay.powi(k as i32)).collect();

        // Class prototypes: random directions under the envelope, scaled.
        let mut prototypes = Vec::with_capacity(cfg.num_classes);
        for _ in 0..cfg.num_classes {
            let mut proto: Vec<f32> = (0..d).map(|k| rng.normal() * envelope[k]).collect();
            let norm: f32 = proto.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in &mut proto {
                *x = *x / norm * cfg.class_sep;
            }
            prototypes.push(proto);
        }

        let shares: Vec<Vec<f32>> = cfg
            .attributes
            .iter()
            .map(|a| a.groups().iter().map(GroupSpec::share).collect())
            .collect();

        // Resolve interaction names to indices once; validation guarantees
        // every lookup succeeds. Applying these after the marginal loop
        // consumes no randomness, so configs without interactions generate
        // byte-identical datasets to pre-interaction builds.
        struct ResolvedCell {
            group_a: usize,
            group_b: usize,
            angle_rad: f32,
            noise_mult: f32,
        }
        struct ResolvedInteraction<'a> {
            attr_a: usize,
            attr_b: usize,
            planes: &'a [(usize, usize)],
            cells: Vec<ResolvedCell>,
        }
        let attr_index = |name: &str| {
            cfg.attributes.iter().position(|a| a.name() == name).expect("validated attribute")
        };
        let group_index = |attr: usize, name: &str| {
            cfg.attributes[attr]
                .groups()
                .iter()
                .position(|g| g.name() == name)
                .expect("validated group")
        };
        let resolved: Vec<ResolvedInteraction> = cfg
            .interactions
            .iter()
            .map(|inter| {
                let (attr_a, attr_b) = (attr_index(inter.attr_a()), attr_index(inter.attr_b()));
                ResolvedInteraction {
                    attr_a,
                    attr_b,
                    planes: inter.planes(),
                    cells: inter
                        .cells()
                        .iter()
                        .map(|c| ResolvedCell {
                            group_a: group_index(attr_a, c.group_a()),
                            group_b: group_index(attr_b, c.group_b()),
                            angle_rad: c.angle_deg().to_radians(),
                            noise_mult: c.noise_mult(),
                        })
                        .collect(),
                }
            })
            .collect();

        let mut features = Matrix::zeros(n, d);
        let mut labels = Vec::with_capacity(n);
        let mut group_ids: Vec<Vec<u16>> = vec![Vec::with_capacity(n); cfg.attributes.len()];

        for s in 0..n {
            // Shared disadvantage latent: correlated group membership.
            let latent = rng.uniform(0.0, 1.0);
            let mut sample_groups = Vec::with_capacity(cfg.attributes.len());
            for (a, attr_shares) in shares.iter().enumerate() {
                let draw =
                    if rng.chance(cfg.correlation) { latent } else { rng.uniform(0.0, 1.0) };
                let g = quantile_group(attr_shares, draw);
                group_ids[a].push(g as u16);
                sample_groups.push(g);
            }

            let class = rng.below(cfg.num_classes);
            labels.push(class);

            // Start from the class prototype, rotate per attribute/group.
            let mut signal = prototypes[class].clone();
            let mut noise_mult = 1.0f32;
            for (attr, &g) in cfg.attributes.iter().zip(&sample_groups) {
                let spec = &attr.groups()[g];
                noise_mult *= spec.noise_mult();
                let angle = spec.angle_deg().to_radians();
                if angle != 0.0 {
                    let (sin, cos) = angle.sin_cos();
                    for &(i, j) in attr.planes() {
                        let (xi, xj) = (signal[i], signal[j]);
                        signal[i] = xi * cos - xj * sin;
                        signal[j] = xi * sin + xj * cos;
                    }
                }
            }

            // Intersectional cell effects: only samples landing in a
            // targeted joint cell get the extra rotation/noise.
            for inter in &resolved {
                let (ga, gb) = (sample_groups[inter.attr_a], sample_groups[inter.attr_b]);
                for cell in &inter.cells {
                    if cell.group_a != ga || cell.group_b != gb {
                        continue;
                    }
                    noise_mult *= cell.noise_mult;
                    if cell.angle_rad != 0.0 {
                        let (sin, cos) = cell.angle_rad.sin_cos();
                        for &(i, j) in inter.planes {
                            let (xi, xj) = (signal[i], signal[j]);
                            signal[i] = xi * cos - xj * sin;
                            signal[j] = xi * sin + xj * cos;
                        }
                    }
                }
            }

            let row = features.row_mut(s);
            for k in 0..d {
                row[k] = signal[k] + rng.normal() * cfg.base_noise * noise_mult * envelope[k];
            }
        }

        Dataset::new(features, labels, cfg.num_classes, self.schema(), group_ids)
    }
}

/// Maps a `[0, 1)` draw onto a group index through the cumulative shares.
fn quantile_group(shares: &[f32], draw: f32) -> usize {
    let total: f32 = shares.iter().sum();
    let mut target = draw * total;
    for (i, &s) in shares.iter().enumerate() {
        if target < s {
            return i;
        }
        target -= s;
    }
    shares.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_attr_config() -> GeneratorConfig {
        GeneratorConfig {
            num_samples: 2000,
            feature_dim: 10,
            num_classes: 4,
            class_sep: 2.0,
            base_noise: 0.7,
            spectral_decay: 0.85,
            attributes: vec![
                AttributeSpec::new(
                    "age",
                    vec![
                        GroupSpec::new("young", 0.6),
                        GroupSpec::new("old", 0.4).with_angle(60.0).with_noise_mult(1.5),
                    ],
                    vec![(0, 1)],
                ),
                AttributeSpec::new(
                    "site",
                    vec![
                        GroupSpec::new("torso", 0.7),
                        GroupSpec::new("oral", 0.3).with_angle(70.0),
                    ],
                    vec![(1, 2)],
                ),
            ],
            correlation: 0.5,
            interactions: vec![],
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = DataGenerator::new(two_attr_config()).expect("valid");
        let a = gen.generate(&mut Rng64::seed(9));
        let b = gen.generate(&mut Rng64::seed(9));
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn group_shares_are_respected() {
        let gen = DataGenerator::new(two_attr_config()).expect("valid");
        let ds = gen.generate(&mut Rng64::seed(10));
        let age = ds.schema().by_name("age").expect("age");
        let old = ds.group_indices(age, crate::GroupId::new(1)).len() as f32 / ds.len() as f32;
        assert!((old - 0.4).abs() < 0.05, "old share {old}");
    }

    #[test]
    fn correlation_creates_group_overlap() {
        let mut cfg = two_attr_config();
        cfg.correlation = 1.0;
        let gen = DataGenerator::new(cfg).expect("valid");
        let ds = gen.generate(&mut Rng64::seed(11));
        let age = ds.schema().by_name("age").expect("age");
        let site = ds.schema().by_name("site").expect("site");
        // With full correlation, every "oral" sample (top 30% latent) is
        // also "old" (top 40% latent).
        let oral: Vec<usize> = ds.group_indices(site, crate::GroupId::new(1));
        let also_old = oral
            .iter()
            .filter(|&&i| ds.group_of(age, i).index() == 1)
            .count() as f32
            / oral.len() as f32;
        assert!(also_old > 0.95, "overlap {also_old}");
    }

    #[test]
    fn zero_correlation_gives_independent_groups() {
        let mut cfg = two_attr_config();
        cfg.correlation = 0.0;
        let gen = DataGenerator::new(cfg).expect("valid");
        let ds = gen.generate(&mut Rng64::seed(12));
        let age = ds.schema().by_name("age").expect("age");
        let site = ds.schema().by_name("site").expect("site");
        let oral: Vec<usize> = ds.group_indices(site, crate::GroupId::new(1));
        let also_old = oral
            .iter()
            .filter(|&&i| ds.group_of(age, i).index() == 1)
            .count() as f32
            / oral.len() as f32;
        // Independent: P(old | oral) ≈ P(old) = 0.4.
        assert!((also_old - 0.4).abs() < 0.08, "overlap {also_old}");
    }

    #[test]
    fn rotated_groups_have_shifted_signal() {
        // With no noise, group-1 samples of a class should differ from
        // group-0 samples of the same class in the rotated plane.
        let mut cfg = two_attr_config();
        cfg.base_noise = 1e-6;
        cfg.num_samples = 400;
        let gen = DataGenerator::new(cfg).expect("valid");
        let ds = gen.generate(&mut Rng64::seed(13));
        let age = ds.schema().by_name("age").expect("age");
        let young: Vec<usize> = ds
            .group_indices(age, crate::GroupId::new(0))
            .into_iter()
            .filter(|&i| ds.labels()[i] == 0 && ds.group_of(crate::AttributeId::new(1), i).index() == 0)
            .collect();
        let old: Vec<usize> = ds
            .group_indices(age, crate::GroupId::new(1))
            .into_iter()
            .filter(|&i| ds.labels()[i] == 0 && ds.group_of(crate::AttributeId::new(1), i).index() == 0)
            .collect();
        if let (Some(&a), Some(&b)) = (young.first(), old.first()) {
            let fa = ds.features().row(a);
            let fb = ds.features().row(b);
            let dist: f32 = fa.iter().zip(fb).map(|(x, y)| (x - y).powi(2)).sum();
            assert!(dist > 0.1, "rotation should separate groups, dist {dist}");
        } else {
            panic!("expected samples in both groups");
        }
    }

    #[test]
    fn validation_catches_bad_plane() {
        let mut cfg = two_attr_config();
        cfg.feature_dim = 2;
        assert!(GeneratorConfig::validate(&cfg).is_err());
    }

    #[test]
    fn validation_catches_bad_correlation() {
        let mut cfg = two_attr_config();
        cfg.correlation = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_single_class() {
        let mut cfg = two_attr_config();
        cfg.num_classes = 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn quantile_group_maps_cumulatively() {
        let shares = [0.5, 0.3, 0.2];
        assert_eq!(quantile_group(&shares, 0.0), 0);
        assert_eq!(quantile_group(&shares, 0.49), 0);
        assert_eq!(quantile_group(&shares, 0.51), 1);
        assert_eq!(quantile_group(&shares, 0.99), 2);
    }

    #[test]
    fn designed_unprivileged_flags_rotated_groups() {
        let cfg = two_attr_config();
        assert_eq!(cfg.attributes[0].designed_unprivileged(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "distinct axes")]
    fn degenerate_plane_is_rejected() {
        AttributeSpec::new("bad", vec![GroupSpec::new("g", 1.0)], vec![(2, 2)]);
    }

    #[test]
    fn empty_interactions_keep_generation_byte_identical() {
        let gen_plain = DataGenerator::new(two_attr_config()).expect("valid");
        let mut cfg = two_attr_config();
        // An interaction whose cells never fire must not perturb anything
        // either — it consumes no randomness and rotates no sample.
        cfg.interactions = vec![InteractionSpec::new("age", "site", vec![(3, 4)])];
        let gen_inert = DataGenerator::new(cfg).expect("valid");
        let a = gen_plain.generate(&mut Rng64::seed(21));
        let b = gen_inert.generate(&mut Rng64::seed(21));
        assert_eq!(a.features(), b.features());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn cell_effect_shifts_only_the_targeted_cell() {
        let mut cfg = two_attr_config();
        cfg.base_noise = 1e-6;
        cfg.num_samples = 1200;
        let plain = DataGenerator::new(cfg.clone()).expect("valid").generate(&mut Rng64::seed(5));
        cfg.interactions = vec![InteractionSpec::new("age", "site", vec![(2, 3)])
            .with_cell(CellEffect::new("old", "oral").with_angle(90.0))];
        let shifted = DataGenerator::new(cfg).expect("valid").generate(&mut Rng64::seed(5));
        let age = plain.schema().by_name("age").expect("age");
        let site = plain.schema().by_name("site").expect("site");
        for s in 0..plain.len() {
            let in_cell = plain.group_of(age, s).index() == 1 && plain.group_of(site, s).index() == 1;
            let moved = plain
                .features()
                .row(s)
                .iter()
                .zip(shifted.features().row(s))
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max)
                > 1e-4;
            assert_eq!(moved, in_cell, "sample {s}: moved={moved} in_cell={in_cell}");
        }
    }

    #[test]
    fn interaction_validation_catches_unknown_attribute_and_group() {
        let mut cfg = two_attr_config();
        cfg.interactions = vec![InteractionSpec::new("age", "venue", vec![(0, 1)])];
        let err = cfg.validate().expect_err("unknown attribute");
        assert!(err.contains("unknown attribute venue"), "{err}");

        let mut cfg = two_attr_config();
        cfg.interactions = vec![InteractionSpec::new("age", "site", vec![(0, 1)])
            .with_cell(CellEffect::new("old", "plantar"))];
        let err = cfg.validate().expect_err("unknown group");
        assert!(err.contains("unknown group plantar"), "{err}");

        let mut cfg = two_attr_config();
        cfg.interactions = vec![InteractionSpec::new("age", "site", vec![(0, 99)])];
        let err = cfg.validate().expect_err("bad plane");
        assert!(err.contains("outside feature_dim"), "{err}");
    }

    #[test]
    #[should_panic(expected = "two distinct attributes")]
    fn self_interaction_is_rejected() {
        InteractionSpec::new("age", "age", vec![(0, 1)]);
    }
}
