use crate::{AttributeSpec, DataGenerator, Dataset, GeneratorConfig, GroupSpec};
use muffin_tensor::Rng64;

/// Builder for the ISIC2019-like synthetic dataset.
///
/// Mirrors the structure of the paper's primary evaluation dataset: an
/// 8-class dermatology classification problem carrying three sensitive
/// attributes — **age** (6 groups), **disease site** (9 groups) and
/// **gender** (2 groups). Age and site have strongly disadvantaged groups
/// whose rotation planes overlap (entanglement); gender groups are nearly
/// identical, reproducing the paper's Figure 1 finding that gender
/// unfairness is small (< 0.12) while age/site unfairness exceeds 0.4.
///
/// # Example
///
/// ```
/// use muffin_data::IsicLike;
/// use muffin_tensor::Rng64;
///
/// let ds = IsicLike::new().with_num_samples(500).generate(&mut Rng64::seed(3));
/// assert_eq!(ds.num_classes(), 8);
/// assert_eq!(ds.schema().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IsicLike {
    num_samples: usize,
}

impl IsicLike {
    /// Default configuration: 8 000 samples.
    pub fn new() -> Self {
        Self { num_samples: 8_000 }
    }

    /// A small variant (1 200 samples) for tests and quick runs.
    pub fn small() -> Self {
        Self { num_samples: 1_200 }
    }

    /// Overrides the sample count.
    ///
    /// # Panics
    ///
    /// Panics if `num_samples == 0`.
    pub fn with_num_samples(mut self, num_samples: usize) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        self.num_samples = num_samples;
        self
    }

    /// The underlying generator configuration.
    pub fn config(&self) -> GeneratorConfig {
        GeneratorConfig {
            num_samples: self.num_samples,
            feature_dim: 24,
            num_classes: 8,
            class_sep: 2.0,
            base_noise: 1.35,
            spectral_decay: 0.82,
            attributes: vec![
                // Age: six groups; the two oldest are rare, rotated and noisy.
                AttributeSpec::new(
                    "age",
                    vec![
                        GroupSpec::new("0-20", 0.10),
                        GroupSpec::new("21-35", 0.22),
                        GroupSpec::new("36-50", 0.26),
                        GroupSpec::new("51-65", 0.20),
                        GroupSpec::new("66-80", 0.13).with_angle(60.0).with_noise_mult(1.8),
                        GroupSpec::new("81+", 0.09).with_angle(85.0).with_noise_mult(2.1),
                    ],
                    vec![(0, 1), (4, 5)],
                ),
                // Site: nine groups; four disadvantaged. Planes share
                // coordinates 1 and 5 with age, and the site rotations run
                // *against* the age rotations (negative angles) — fitting
                // one attribute's distortion actively un-fits the other,
                // which is the source of the age↔site seesaw.
                AttributeSpec::new(
                    "site",
                    vec![
                        GroupSpec::new("anterior torso", 0.17),
                        GroupSpec::new("upper extremity", 0.15),
                        GroupSpec::new("lower extremity", 0.15),
                        GroupSpec::new("head/neck", 0.13),
                        GroupSpec::new("posterior torso", 0.13),
                        GroupSpec::new("palms/soles", 0.08).with_angle(-55.0).with_noise_mult(1.7),
                        GroupSpec::new("lateral torso", 0.07).with_angle(-70.0).with_noise_mult(1.9),
                        GroupSpec::new("oral/genital", 0.06).with_angle(-90.0).with_noise_mult(2.2),
                        GroupSpec::new("unknown", 0.06).with_angle(-40.0).with_noise_mult(1.5),
                    ],
                    vec![(1, 2), (5, 6)],
                ),
                // Gender: balanced and essentially undistorted (Fig. 1a-b).
                GenderSpec::build(),
            ],
            correlation: 0.35,
            interactions: vec![],
        }
    }

    /// Generates the dataset.
    pub fn generate(&self, rng: &mut Rng64) -> Dataset {
        DataGenerator::new(self.config()).expect("builtin ISIC-like config is valid").generate(rng)
    }
}

impl Default for IsicLike {
    fn default() -> Self {
        Self::new()
    }
}

/// Internal helper so the gender attribute is specified exactly once.
struct GenderSpec;

impl GenderSpec {
    fn build() -> AttributeSpec {
        AttributeSpec::new(
            "gender",
            vec![
                GroupSpec::new("male", 0.52),
                GroupSpec::new("female", 0.48).with_noise_mult(1.05),
            ],
            vec![(9, 10)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttributeId;

    #[test]
    fn schema_matches_paper_structure() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(1));
        let schema = ds.schema();
        assert_eq!(schema.attribute_names(), vec!["age", "site", "gender"]);
        assert_eq!(schema.get(AttributeId::new(0)).unwrap().num_groups(), 6);
        assert_eq!(schema.get(AttributeId::new(1)).unwrap().num_groups(), 9);
        assert_eq!(schema.get(AttributeId::new(2)).unwrap().num_groups(), 2);
    }

    #[test]
    fn age_and_site_have_designed_unprivileged_groups() {
        let cfg = IsicLike::new().config();
        assert_eq!(cfg.attributes[0].designed_unprivileged(), vec![4, 5]);
        assert_eq!(cfg.attributes[1].designed_unprivileged(), vec![5, 6, 7, 8]);
        assert!(cfg.attributes[2].designed_unprivileged().is_empty());
    }

    #[test]
    fn age_and_site_planes_overlap() {
        let cfg = IsicLike::new().config();
        let age_coords: Vec<usize> =
            cfg.attributes[0].planes().iter().flat_map(|&(i, j)| [i, j]).collect();
        let site_coords: Vec<usize> =
            cfg.attributes[1].planes().iter().flat_map(|&(i, j)| [i, j]).collect();
        assert!(age_coords.iter().any(|c| site_coords.contains(c)), "entanglement requires overlap");
    }

    #[test]
    fn default_and_small_differ_only_in_size() {
        let a = IsicLike::new().config();
        let b = IsicLike::small().config();
        assert_eq!(a.num_classes, b.num_classes);
        assert!(a.num_samples > b.num_samples);
    }

    #[test]
    fn every_class_appears() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(2));
        let mut seen = vec![false; ds.num_classes()];
        for &l in ds.labels() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
