//! Dataset persistence.
//!
//! Generated datasets are deterministic given `(config, seed)`, but
//! experiments that must share *exactly* the same data across machines or
//! toolchains can serialise a [`Dataset`] to JSON and reload it.

use crate::Dataset;
use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

/// Error raised when saving or loading a dataset.
#[derive(Debug)]
pub enum DatasetIoError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file contents are not a valid serialised dataset.
    Parse(String),
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "dataset io failed: {e}"),
            DatasetIoError::Parse(msg) => write!(f, "dataset parse failed: {msg}"),
        }
    }
}

impl Error for DatasetIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetIoError::Io(e) => Some(e),
            DatasetIoError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for DatasetIoError {
    fn from(e: std::io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

impl Dataset {
    /// Serialises the dataset to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetIoError::Io`] if the file cannot be written.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), DatasetIoError> {
        let json = muffin_json::to_string(self);
        fs::write(path, json)?;
        Ok(())
    }

    /// Loads a dataset previously written by [`Dataset::save_json`].
    ///
    /// # Errors
    ///
    /// Returns [`DatasetIoError::Io`] if the file cannot be read and
    /// [`DatasetIoError::Parse`] if it is not a valid dataset.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Dataset, DatasetIoError> {
        Self::load_json_traced(path, &muffin_trace::Tracer::noop())
    }

    /// Like [`Dataset::load_json`], recording a `data.load_dataset` span
    /// (path, sample count) into `tracer`.
    ///
    /// # Errors
    ///
    /// Same as [`Dataset::load_json`].
    pub fn load_json_traced(
        path: impl AsRef<Path>,
        tracer: &muffin_trace::Tracer,
    ) -> Result<Dataset, DatasetIoError> {
        let mut span = tracer.span("data.load_dataset");
        span.field("path", path.as_ref().display().to_string());
        let text = fs::read_to_string(path)?;
        let dataset: Dataset =
            muffin_json::from_str(&text).map_err(|e| DatasetIoError::Parse(e.to_string()))?;
        span.field("samples", dataset.len());
        Ok(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsicLike;
    use muffin_tensor::Rng64;

    #[test]
    fn save_load_round_trips() {
        let ds = IsicLike::small()
            .with_num_samples(50)
            .generate(&mut Rng64::seed(1));
        let dir = std::env::temp_dir().join("muffin_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("roundtrip.json");
        ds.save_json(&path).expect("save");
        let loaded = Dataset::load_json(&path).expect("load");
        assert_eq!(loaded.features(), ds.features());
        assert_eq!(loaded.labels(), ds.labels());
        assert_eq!(loaded.schema(), ds.schema());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Dataset::load_json("/nonexistent/muffin.json").unwrap_err();
        assert!(matches!(err, DatasetIoError::Io(_)));
        assert!(err.to_string().contains("io failed"));
    }

    #[test]
    fn garbage_file_is_a_parse_error() {
        let dir = std::env::temp_dir().join("muffin_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").expect("write");
        let err = Dataset::load_json(&path).unwrap_err();
        assert!(matches!(err, DatasetIoError::Parse(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_file_error_carries_line_and_column() {
        let dir = std::env::temp_dir().join("muffin_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("malformed.json");
        // Bad literal on line 3, column 15.
        std::fs::write(&path, "{\n  \"features\": {\n    \"rows\": 1,,\n  }\n}").expect("write");
        let err = Dataset::load_json(&path).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, DatasetIoError::Parse(_)));
        assert!(msg.contains("line 3"), "missing line in: {msg}");
        assert!(msg.contains("column"), "missing column in: {msg}");
        std::fs::remove_file(path).ok();
    }
}
