//! The paper's fairness metric (Section 3.1).
//!
//! For a model `N`, attribute `a_k` splitting dataset `D` into groups
//! `D_1 … D_G`, the **unfairness score** is the L1 deviation of group
//! accuracies from the overall accuracy:
//!
//! ```text
//! U(f'_N, D)_{a_k} = Σ_g |A(f'_N, D_g) − A(f'_N, D)|
//! ```
//!
//! A lower score is fairer. These primitives live in the data crate so the
//! baseline trainers in `muffin-models` can use them without depending on
//! the core crate; `muffin` re-exports them and adds the multi-dimension
//! aggregate of Eq. 1.


/// Accuracy of one group, with its sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupAccuracy {
    /// Group index within the attribute.
    pub group: u16,
    /// Number of samples in the group.
    pub count: usize,
    /// Accuracy over the group's samples (`0.0` for empty groups).
    pub accuracy: f32,
}

muffin_json::impl_json!(struct GroupAccuracy { group, count, accuracy });

/// Per-group accuracies for one attribute.
///
/// Groups with no samples report zero accuracy and zero count.
///
/// # Panics
///
/// Panics if slice lengths differ.
///
/// # Example
///
/// ```
/// let accs = muffin_data::group_accuracies(&[0, 1, 1], &[0, 1, 0], &[0, 0, 1], 2);
/// assert_eq!(accs[0].count, 2);
/// assert!((accs[0].accuracy - 1.0).abs() < 1e-6);
/// assert!((accs[1].accuracy - 0.0).abs() < 1e-6);
/// ```
pub fn group_accuracies(
    predictions: &[usize],
    labels: &[usize],
    groups: &[u16],
    num_groups: usize,
) -> Vec<GroupAccuracy> {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels mismatch");
    assert_eq!(predictions.len(), groups.len(), "predictions/groups mismatch");
    let mut counts = vec![0usize; num_groups];
    let mut correct = vec![0usize; num_groups];
    for ((&p, &l), &g) in predictions.iter().zip(labels).zip(groups) {
        let g = g as usize;
        assert!(g < num_groups, "group {g} out of range {num_groups}");
        counts[g] += 1;
        if p == l {
            correct[g] += 1;
        }
    }
    (0..num_groups)
        .map(|g| GroupAccuracy {
            group: g as u16,
            count: counts[g],
            accuracy: if counts[g] == 0 { 0.0 } else { correct[g] as f32 / counts[g] as f32 },
        })
        .collect()
}

/// The paper's unfairness score `U` for one attribute.
///
/// Empty groups are skipped (they carry no evidence about fairness).
///
/// # Panics
///
/// Panics if slice lengths differ or a group id is out of range.
///
/// # Example
///
/// ```
/// // Perfectly even accuracy across groups → zero unfairness.
/// let u = muffin_data::unfairness_score(&[0, 0], &[0, 1], &[0, 1], 2);
/// assert!((u - 1.0).abs() < 1e-6); // |1−0.5| + |0−0.5| = 1
/// ```
pub fn unfairness_score(
    predictions: &[usize],
    labels: &[usize],
    groups: &[u16],
    num_groups: usize,
) -> f32 {
    if predictions.is_empty() {
        return 0.0;
    }
    let overall = muffin_overall_accuracy(predictions, labels);
    group_accuracies(predictions, labels, groups, num_groups)
        .iter()
        .filter(|g| g.count > 0)
        .map(|g| (g.accuracy - overall).abs())
        .sum()
}

/// Maximum minus minimum group accuracy (the paper quotes these gaps, e.g.
/// 45.04% for site).
///
/// Empty groups are skipped; returns `0.0` if fewer than two groups have
/// samples.
pub fn group_accuracy_gap(
    predictions: &[usize],
    labels: &[usize],
    groups: &[u16],
    num_groups: usize,
) -> f32 {
    let accs = group_accuracies(predictions, labels, groups, num_groups);
    let present: Vec<f32> =
        accs.iter().filter(|g| g.count > 0).map(|g| g.accuracy).collect();
    if present.len() < 2 {
        return 0.0;
    }
    let max = present.iter().copied().fold(f32::MIN, f32::max);
    let min = present.iter().copied().fold(f32::MAX, f32::min);
    max - min
}

/// **Intersectional** unfairness: the paper's U computed over the *joint*
/// groups of two attributes (`(a, b)` pairs). Eq. 1 sums per-attribute
/// scores, which can miss subgroups that are unprivileged only in the
/// intersection (e.g. elderly patients with oral lesions); this extension
/// measures exactly that.
///
/// Empty joint groups are skipped.
///
/// # Panics
///
/// Panics if lengths disagree or group ids exceed their counts.
///
/// # Example
///
/// ```
/// // Two binary attributes → four joint groups.
/// let u = muffin_data::intersectional_unfairness(
///     &[0, 0, 0, 1],
///     &[0, 0, 0, 0],
///     &[0, 0, 1, 1],
///     2,
///     &[0, 1, 0, 1],
///     2,
/// );
/// assert!(u > 0.0);
/// ```
pub fn intersectional_unfairness(
    predictions: &[usize],
    labels: &[usize],
    groups_a: &[u16],
    num_groups_a: usize,
    groups_b: &[u16],
    num_groups_b: usize,
) -> f32 {
    joint_unfairness(predictions, labels, &[groups_a, groups_b], &[num_groups_a, num_groups_b])
}

/// Encodes `k` parallel per-attribute group-id slices into **row-major
/// joint cell ids**, returning the ids and the total cell count.
///
/// For attributes with `n_0, n_1, …` groups, the sample in groups
/// `(g_0, g_1, …)` lands in cell `((g_0·n_1 + g_1)·n_2 + g_2)…` — the same
/// layout [`intersectional_group_accuracies`] and the per-cell reports use,
/// so a cell id decodes back to its group tuple by repeated `div`/`mod`.
///
/// # Panics
///
/// Panics if no attributes are given, slice lengths differ, a group id is
/// out of range, or the joint cell count overflows `u16`.
pub fn joint_group_ids(groups: &[&[u16]], num_groups: &[usize]) -> (Vec<u16>, usize) {
    assert!(!groups.is_empty(), "need at least one attribute");
    assert_eq!(groups.len(), num_groups.len(), "groups/num_groups mismatch");
    let cells = num_groups.iter().product::<usize>();
    assert!(cells <= u16::MAX as usize + 1, "joint cell count {cells} overflows u16");
    let n = groups[0].len();
    let mut joint = vec![0u16; n];
    for (axis, (&ids, &count)) in groups.iter().zip(num_groups).enumerate() {
        assert_eq!(ids.len(), n, "attribute {axis} length mismatch");
        for (j, &g) in joint.iter_mut().zip(ids) {
            assert!((g as usize) < count, "attribute {axis} group {g} out of range {count}");
            *j = *j * count as u16 + g;
        }
    }
    (joint, cells)
}

/// The paper's U computed over the joint cells of **any number** of
/// attributes — the k-way generalisation of [`intersectional_unfairness`].
///
/// Empty joint cells are skipped, exactly like empty groups in the
/// marginal score.
///
/// # Panics
///
/// Panics on the same conditions as [`joint_group_ids`] or if
/// `predictions`/`labels` lengths disagree with the group slices.
pub fn joint_unfairness(
    predictions: &[usize],
    labels: &[usize],
    groups: &[&[u16]],
    num_groups: &[usize],
) -> f32 {
    let (joint, cells) = joint_group_ids(groups, num_groups);
    unfairness_score(predictions, labels, &joint, cells)
}

/// Per-cell accuracies over the joint groups of two attributes, in
/// row-major order: the cell for `(g_a, g_b)` sits at index
/// `g_a · num_groups_b + g_b`.
///
/// # Panics
///
/// Panics on the same conditions as [`joint_group_ids`].
pub fn intersectional_group_accuracies(
    predictions: &[usize],
    labels: &[usize],
    groups_a: &[u16],
    num_groups_a: usize,
    groups_b: &[u16],
    num_groups_b: usize,
) -> Vec<GroupAccuracy> {
    let (joint, cells) =
        joint_group_ids(&[groups_a, groups_b], &[num_groups_a, num_groups_b]);
    group_accuracies(predictions, labels, &joint, cells)
}

fn muffin_overall_accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / predictions.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_accuracy_has_zero_unfairness() {
        // Both groups 50% accurate, overall 50%.
        let preds = [0, 1, 0, 1];
        let labels = [0, 0, 0, 0];
        let groups = [0u16, 0, 1, 1];
        let u = unfairness_score(&preds, &labels, &groups, 2);
        assert!(u.abs() < 1e-6);
    }

    #[test]
    fn skewed_accuracy_has_positive_unfairness() {
        // Group 0 perfect, group 1 all wrong → overall 0.5, U = 1.0.
        let preds = [0, 0, 1, 1];
        let labels = [0, 0, 0, 0];
        let groups = [0u16, 0, 1, 1];
        let u = unfairness_score(&preds, &labels, &groups, 2);
        assert!((u - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unfairness_grows_with_number_of_deviant_groups() {
        // Three groups: two perfect, one all wrong.
        let preds = [0, 0, 1];
        let labels = [0, 0, 0];
        let groups = [0u16, 1, 2];
        let u3 = unfairness_score(&preds, &labels, &groups, 3);
        // overall = 2/3; deviations = 1/3 + 1/3 + 2/3 = 4/3.
        assert!((u3 - 4.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn empty_groups_are_ignored() {
        let preds = [0, 0];
        let labels = [0, 0];
        let groups = [0u16, 0];
        // Group 1 exists in the schema but has no samples.
        let u = unfairness_score(&preds, &labels, &groups, 2);
        assert!(u.abs() < 1e-6);
    }

    #[test]
    fn empty_input_has_zero_unfairness() {
        assert_eq!(unfairness_score(&[], &[], &[], 3), 0.0);
    }

    #[test]
    fn gap_is_max_minus_min() {
        let preds = [0, 1, 0, 0];
        let labels = [0, 0, 0, 0];
        let groups = [0u16, 0, 1, 1];
        // group0 50%, group1 100%.
        let gap = group_accuracy_gap(&preds, &labels, &groups, 2);
        assert!((gap - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gap_of_single_group_is_zero() {
        let gap = group_accuracy_gap(&[0], &[0], &[0], 2);
        assert_eq!(gap, 0.0);
    }

    #[test]
    fn group_accuracies_report_counts() {
        let accs = group_accuracies(&[0, 0, 1], &[0, 1, 1], &[0, 1, 1], 2);
        assert_eq!(accs[0].count, 1);
        assert_eq!(accs[1].count, 2);
        assert!((accs[1].accuracy - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_out_of_range_panics() {
        group_accuracies(&[0], &[0], &[5], 2);
    }

    #[test]
    fn intersectional_zero_when_joint_groups_are_even() {
        // Four joint groups, each with one sample, all correct.
        let u = intersectional_unfairness(
            &[0, 0, 0, 0],
            &[0, 0, 0, 0],
            &[0, 0, 1, 1],
            2,
            &[0, 1, 0, 1],
            2,
        );
        assert!(u.abs() < 1e-6);
    }

    #[test]
    fn intersectional_detects_hidden_joint_disadvantage() {
        // Per-attribute accuracies are even (each marginal group is 50%
        // accurate), but the (1,1) intersection is always wrong.
        let preds = [0, 1, 1, 0];
        let labels = [0, 0, 0, 0];
        let groups_a = [0u16, 0, 1, 1];
        let groups_b = [0u16, 1, 0, 1];
        let u_a = unfairness_score(&preds, &labels, &groups_a, 2);
        let u_b = unfairness_score(&preds, &labels, &groups_b, 2);
        assert!(u_a.abs() < 1e-6 && u_b.abs() < 1e-6, "marginals look fair");
        let u_joint =
            intersectional_unfairness(&preds, &labels, &groups_a, 2, &groups_b, 2);
        assert!(u_joint > 0.5, "intersection must expose the disadvantage, got {u_joint}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn intersectional_validates_group_ranges() {
        intersectional_unfairness(&[0], &[0], &[2], 2, &[0], 2);
    }

    #[test]
    fn joint_ids_are_row_major() {
        let (joint, cells) = joint_group_ids(&[&[0, 0, 1, 1], &[0, 1, 0, 1]], &[2, 2]);
        assert_eq!(joint, vec![0, 1, 2, 3]);
        assert_eq!(cells, 4);
        // Three attributes: (1, 0, 2) with counts (2, 2, 3) → (1·2+0)·3+2 = 8.
        let (joint, cells) = joint_group_ids(&[&[1], &[0], &[2]], &[2, 2, 3]);
        assert_eq!(joint, vec![8]);
        assert_eq!(cells, 12);
    }

    #[test]
    fn joint_unfairness_matches_hand_computed_three_way_oracle() {
        // Two samples per cell over 2×2×2 cells would be tedious; use a
        // minimal case where one of the four *occupied* cells is wrong.
        // Cells present: (0,0,0) ok, (0,1,1) ok, (1,0,1) ok, (1,1,0) wrong.
        // Overall accuracy 3/4; deviations = 3·|1−3/4| + |0−3/4| = 3/2.
        let preds = [0, 0, 0, 1];
        let labels = [0, 0, 0, 0];
        let a = [0u16, 0, 1, 1];
        let b = [0u16, 1, 0, 1];
        let c = [0u16, 1, 1, 0];
        let u = joint_unfairness(&preds, &labels, &[&a, &b, &c], &[2, 2, 2]);
        assert!((u - 1.5).abs() < 1e-6, "got {u}");
    }

    #[test]
    fn two_way_joint_matches_intersectional() {
        let preds = [0, 1, 1, 0, 0];
        let labels = [0, 0, 0, 0, 1];
        let a = [0u16, 0, 1, 1, 0];
        let b = [0u16, 1, 0, 1, 1];
        let via_joint = joint_unfairness(&preds, &labels, &[&a, &b], &[2, 2]);
        let via_pair = intersectional_unfairness(&preds, &labels, &a, 2, &b, 2);
        assert_eq!(via_joint, via_pair);
    }

    #[test]
    fn intersectional_accuracies_index_cells_row_major() {
        let preds = [0, 1, 1, 0];
        let labels = [0, 0, 0, 0];
        let a = [0u16, 0, 1, 1];
        let b = [0u16, 1, 0, 1];
        let cells = intersectional_group_accuracies(&preds, &labels, &a, 2, &b, 2);
        assert_eq!(cells.len(), 4);
        assert!((cells[0].accuracy - 1.0).abs() < 1e-6); // (0,0)
        assert!((cells[1].accuracy - 0.0).abs() < 1e-6); // (0,1)
        assert!((cells[2].accuracy - 0.0).abs() < 1e-6); // (1,0)
        assert!((cells[3].accuracy - 1.0).abs() < 1e-6); // (1,1)
        assert!(cells.iter().all(|c| c.count == 1));
    }

    #[test]
    #[should_panic(expected = "overflows u16")]
    fn joint_cell_overflow_is_rejected() {
        let g = [0u16];
        joint_group_ids(&[&g, &g, &g], &[300, 300, 300]);
    }
}
