//! Dataset corruption utilities for robustness experiments.
//!
//! Real clinical labels are noisy, and noise is rarely uniform across
//! groups — mislabeling is itself often biased. These utilities inject
//! controlled label noise (uniform or group-targeted) so the extension
//! experiments can ask: *does Muffin's fairness improvement survive label
//! noise?* (The paper leaves robustness unexamined; this is the repo's
//! future-work extension.)

use crate::{AttributeId, Dataset};
use muffin_tensor::Rng64;

impl Dataset {
    /// Returns a copy with each label independently resampled to a wrong
    /// class with probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_label_noise(&self, rate: f32, rng: &mut Rng64) -> Dataset {
        assert!((0.0..=1.0).contains(&rate), "noise rate must lie in [0, 1]");
        self.with_noise_mask(rng, |_| rate)
    }

    /// Returns a copy where only the listed groups of `attr` receive label
    /// noise at `rate` — biased annotation, the harder real-world case.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `attr` is out of range.
    pub fn with_group_label_noise(
        &self,
        attr: AttributeId,
        groups: &[u16],
        rate: f32,
        rng: &mut Rng64,
    ) -> Dataset {
        assert!((0.0..=1.0).contains(&rate), "noise rate must lie in [0, 1]");
        let membership: Vec<bool> =
            self.groups(attr).iter().map(|g| groups.contains(g)).collect();
        self.with_noise_mask(rng, |i| if membership[i] { rate } else { 0.0 })
    }

    fn with_noise_mask(&self, rng: &mut Rng64, rate_of: impl Fn(usize) -> f32) -> Dataset {
        let num_classes = self.num_classes();
        let labels: Vec<usize> = self
            .labels()
            .iter()
            .enumerate()
            .map(|(i, &label)| {
                if num_classes > 1 && rng.chance(rate_of(i)) {
                    // Resample uniformly over the *wrong* classes.
                    let offset = 1 + rng.below(num_classes - 1);
                    (label + offset) % num_classes
                } else {
                    label
                }
            })
            .collect();
        let group_ids: Vec<Vec<u16>> =
            self.schema().iter().map(|(id, _)| self.groups(id).to_vec()).collect();
        Dataset::new(
            self.features().clone(),
            labels,
            num_classes,
            self.schema().clone(),
            group_ids,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsicLike;

    #[test]
    fn zero_noise_is_identity() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(1));
        let noisy = ds.with_label_noise(0.0, &mut Rng64::seed(2));
        assert_eq!(noisy.labels(), ds.labels());
    }

    #[test]
    fn full_noise_flips_every_label() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(3));
        let noisy = ds.with_label_noise(1.0, &mut Rng64::seed(4));
        let unchanged =
            noisy.labels().iter().zip(ds.labels()).filter(|(a, b)| a == b).count();
        assert_eq!(unchanged, 0, "a flipped label must always differ");
    }

    #[test]
    fn noise_rate_is_approximately_respected() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(5));
        let noisy = ds.with_label_noise(0.3, &mut Rng64::seed(6));
        let flipped = noisy.labels().iter().zip(ds.labels()).filter(|(a, b)| a != b).count();
        let rate = flipped as f32 / ds.len() as f32;
        assert!((rate - 0.3).abs() < 0.05, "observed rate {rate}");
    }

    #[test]
    fn labels_stay_in_range() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let noisy = ds.with_label_noise(0.5, &mut Rng64::seed(8));
        assert!(noisy.labels().iter().all(|&l| l < ds.num_classes()));
    }

    #[test]
    fn group_noise_only_touches_target_groups() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(9));
        let age = ds.schema().by_name("age").expect("age");
        let noisy = ds.with_group_label_noise(age, &[4, 5], 0.9, &mut Rng64::seed(10));
        for i in 0..ds.len() {
            let in_target = [4usize, 5].contains(&ds.group_of(age, i).index());
            if !in_target {
                assert_eq!(noisy.labels()[i], ds.labels()[i], "untargeted sample {i} changed");
            }
        }
        let flipped_in_target = (0..ds.len())
            .filter(|&i| [4usize, 5].contains(&ds.group_of(age, i).index()))
            .filter(|&i| noisy.labels()[i] != ds.labels()[i])
            .count();
        assert!(flipped_in_target > 0, "targeted noise must flip something");
    }

    #[test]
    #[should_panic(expected = "noise rate")]
    fn out_of_range_rate_is_rejected() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(11));
        ds.with_label_noise(1.5, &mut Rng64::seed(12));
    }

    #[test]
    fn features_and_groups_are_untouched() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(13));
        let noisy = ds.with_label_noise(0.4, &mut Rng64::seed(14));
        assert_eq!(noisy.features(), ds.features());
        for (id, _) in ds.schema().iter() {
            assert_eq!(noisy.groups(id), ds.groups(id));
        }
    }
}
