use crate::{AttributeId, AttributeSchema, GroupId};
use muffin_tensor::{Matrix, Rng64};

/// A labelled dataset with per-sample sensitive-attribute group membership.
///
/// Rows of `features` are samples. `group_ids[attr][sample]` records which
/// group of attribute `attr` the sample belongs to.
///
/// # Example
///
/// ```
/// use muffin_data::IsicLike;
/// use muffin_tensor::Rng64;
///
/// let ds = IsicLike::small().generate(&mut Rng64::seed(1));
/// let age = ds.schema().by_name("age").expect("age attribute");
/// let young = ds.group_indices(age, muffin_data::GroupId::new(0));
/// assert!(!young.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
    schema: AttributeSchema,
    group_ids: Vec<Vec<u16>>,
}

muffin_json::impl_json!(struct Dataset { features, labels, num_classes, schema, group_ids });

impl Dataset {
    /// Assembles a dataset from parts.
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree, labels exceed `num_classes`, or group
    /// ids exceed their attribute's group count.
    pub fn new(
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
        schema: AttributeSchema,
        group_ids: Vec<Vec<u16>>,
    ) -> Self {
        let n = features.rows();
        assert_eq!(labels.len(), n, "labels/features mismatch");
        assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
        assert_eq!(group_ids.len(), schema.len(), "one group vector per attribute required");
        for (i, groups) in group_ids.iter().enumerate() {
            assert_eq!(groups.len(), n, "group ids/features mismatch for attribute {i}");
            let limit = schema.get(AttributeId::new(i)).expect("attribute in range").num_groups();
            assert!(
                groups.iter().all(|&g| (g as usize) < limit),
                "group id out of range for attribute {i}"
            );
        }
        Self { features, labels, num_classes, schema, group_ids }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature matrix (`samples × feature_dim`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Ground-truth class labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The sensitive-attribute schema.
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// Group membership of every sample for one attribute.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    pub fn groups(&self, attr: AttributeId) -> &[u16] {
        &self.group_ids[attr.index()]
    }

    /// Group of one sample under one attribute.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn group_of(&self, attr: AttributeId, sample: usize) -> GroupId {
        GroupId::new(self.group_ids[attr.index()][sample])
    }

    /// Indices of all samples in `group` of `attr`.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    pub fn group_indices(&self, attr: AttributeId, group: GroupId) -> Vec<usize> {
        self.group_ids[attr.index()]
            .iter()
            .enumerate()
            .filter(|(_, &g)| g as usize == group.index())
            .map(|(i, _)| i)
            .collect()
    }

    /// A new dataset restricted to `indices` (in the given order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features = self.features.select_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        let group_ids = self
            .group_ids
            .iter()
            .map(|groups| indices.iter().map(|&i| groups[i]).collect())
            .collect();
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
            schema: self.schema.clone(),
            group_ids,
        }
    }

    /// Splits into train/validation/test by the given fractions.
    ///
    /// The split is a shuffled partition; `train_frac + val_frac` must be
    /// less than `1.0` and the remainder becomes the test set.
    ///
    /// # Panics
    ///
    /// Panics if fractions are out of range.
    pub fn split(&self, train_frac: f32, val_frac: f32, rng: &mut Rng64) -> DatasetSplit {
        assert!(train_frac > 0.0 && val_frac >= 0.0, "fractions must be positive");
        assert!(train_frac + val_frac < 1.0, "train+val must leave room for test");
        let mut indices: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut indices);
        let n_train = (self.len() as f32 * train_frac).round() as usize;
        let n_val = (self.len() as f32 * val_frac).round() as usize;
        let train = self.subset(&indices[..n_train]);
        let val = self.subset(&indices[n_train..n_train + n_val]);
        let test = self.subset(&indices[n_train + n_val..]);
        DatasetSplit { train, val, test }
    }

    /// The paper's split: 64% train, 16% validation, 20% test.
    pub fn split_default(&self, rng: &mut Rng64) -> DatasetSplit {
        self.split(0.64, 0.16, rng)
    }
}

/// Train/validation/test partition of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct DatasetSplit {
    /// Training portion (64% by default, matching the paper).
    pub train: Dataset,
    /// Validation portion (16% by default).
    pub val: Dataset,
    /// Held-out test portion (20% by default).
    pub test: Dataset,
}

muffin_json::impl_json!(struct DatasetSplit { train, val, test });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SensitiveAttribute;

    fn tiny() -> Dataset {
        let features = Matrix::from_fn(10, 3, |r, c| (r * 3 + c) as f32);
        let labels = (0..10).map(|i| i % 2).collect();
        let schema = AttributeSchema::new(vec![SensitiveAttribute::new("a", &["g0", "g1"])]);
        let groups = vec![(0..10u16).map(|i| i % 2).collect()];
        Dataset::new(features, labels, 2, schema, groups)
    }

    #[test]
    fn construction_validates_lengths() {
        let d = tiny();
        assert_eq!(d.len(), 10);
        assert_eq!(d.feature_dim(), 3);
    }

    #[test]
    #[should_panic(expected = "labels/features mismatch")]
    fn rejects_label_length_mismatch() {
        let features = Matrix::zeros(3, 2);
        Dataset::new(features, vec![0, 1], 2, AttributeSchema::new(vec![]), vec![]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_label() {
        let features = Matrix::zeros(1, 2);
        Dataset::new(features, vec![5], 2, AttributeSchema::new(vec![]), vec![]);
    }

    #[test]
    #[should_panic(expected = "group id out of range")]
    fn rejects_out_of_range_group() {
        let features = Matrix::zeros(1, 2);
        let schema = AttributeSchema::new(vec![SensitiveAttribute::new("a", &["only"])]);
        Dataset::new(features, vec![0], 2, schema, vec![vec![3]]);
    }

    #[test]
    fn group_indices_filter_correctly() {
        let d = tiny();
        let attr = AttributeId::new(0);
        let g1 = d.group_indices(attr, GroupId::new(1));
        assert_eq!(g1, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn subset_preserves_alignment() {
        let d = tiny();
        let s = d.subset(&[4, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), &[0, 0]);
        assert_eq!(s.features().row(0), d.features().row(4));
        assert_eq!(s.group_of(AttributeId::new(0), 0).index(), 0);
    }

    #[test]
    fn split_partitions_without_overlap() {
        let d = tiny();
        let mut rng = Rng64::seed(3);
        let split = d.split(0.6, 0.2, &mut rng);
        assert_eq!(split.train.len() + split.val.len() + split.test.len(), d.len());
        assert_eq!(split.train.len(), 6);
        assert_eq!(split.val.len(), 2);
        assert_eq!(split.test.len(), 2);
    }

    #[test]
    fn split_default_uses_paper_fractions() {
        let d = tiny();
        let split = d.split_default(&mut Rng64::seed(4));
        assert_eq!(split.train.len(), 6); // 64% of 10 rounds to 6
        assert_eq!(split.val.len(), 2);
        assert_eq!(split.test.len(), 2);
    }

    #[test]
    #[should_panic(expected = "room for test")]
    fn split_requires_test_remainder() {
        tiny().split(0.9, 0.1, &mut Rng64::seed(5));
    }

    #[test]
    fn split_is_deterministic() {
        let d = tiny();
        let a = d.split_default(&mut Rng64::seed(6));
        let b = d.split_default(&mut Rng64::seed(6));
        assert_eq!(a.train.labels(), b.train.labels());
        assert_eq!(a.test.features(), b.test.features());
    }
}
