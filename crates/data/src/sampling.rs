//! Stratified sampling utilities.
//!
//! The paper's random 64/16/20 split can leave rare unprivileged groups
//! badly represented in the validation or test portions of a small
//! dataset. [`Dataset::split_stratified`] preserves the joint
//! (class × target-attribute group) composition in every portion.

use crate::{AttributeId, Dataset, DatasetSplit};
use muffin_tensor::Rng64;

impl Dataset {
    /// Splits into train/validation/test preserving, per stratum, the
    /// requested fractions. A stratum is one `(class, group)` pair of the
    /// given attribute (or just the class when `stratify_by` is `None`).
    ///
    /// # Panics
    ///
    /// Panics if the fractions are out of range (same contract as
    /// [`Dataset::split`]) or the attribute is out of range.
    pub fn split_stratified(
        &self,
        train_frac: f32,
        val_frac: f32,
        stratify_by: Option<AttributeId>,
        rng: &mut Rng64,
    ) -> DatasetSplit {
        assert!(train_frac > 0.0 && val_frac >= 0.0, "fractions must be positive");
        assert!(train_frac + val_frac < 1.0, "train+val must leave room for test");

        // Bucket samples by stratum key.
        let key = |i: usize| -> usize {
            let class = self.labels()[i];
            match stratify_by {
                Some(attr) => {
                    let num_groups =
                        self.schema().get(attr).expect("attribute in range").num_groups();
                    class * num_groups + self.groups(attr)[i] as usize
                }
                None => class,
            }
        };
        let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for i in 0..self.len() {
            buckets.entry(key(i)).or_default().push(i);
        }

        let mut train_idx = Vec::new();
        let mut val_idx = Vec::new();
        let mut test_idx = Vec::new();
        for (_, mut members) in buckets {
            rng.shuffle(&mut members);
            let n = members.len();
            let n_train = (n as f32 * train_frac).round() as usize;
            let n_val = (n as f32 * val_frac).round() as usize;
            let n_train = n_train.min(n);
            let n_val = n_val.min(n - n_train);
            train_idx.extend_from_slice(&members[..n_train]);
            val_idx.extend_from_slice(&members[n_train..n_train + n_val]);
            test_idx.extend_from_slice(&members[n_train + n_val..]);
        }
        // Shuffle across strata so downstream mini-batching is unbiased.
        rng.shuffle(&mut train_idx);
        rng.shuffle(&mut val_idx);
        rng.shuffle(&mut test_idx);

        DatasetSplit {
            train: self.subset(&train_idx),
            val: self.subset(&val_idx),
            test: self.subset(&test_idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsicLike;

    #[test]
    fn stratified_split_partitions_everything() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(1));
        let split = ds.split_stratified(0.64, 0.16, None, &mut Rng64::seed(2));
        assert_eq!(split.train.len() + split.val.len() + split.test.len(), ds.len());
    }

    #[test]
    fn class_shares_are_preserved() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(3));
        let split = ds.split_stratified(0.64, 0.16, None, &mut Rng64::seed(4));
        let share = |d: &Dataset, class: usize| {
            d.labels().iter().filter(|&&l| l == class).count() as f32 / d.len() as f32
        };
        for class in 0..ds.num_classes() {
            let full = share(&ds, class);
            let train = share(&split.train, class);
            let test = share(&split.test, class);
            assert!((full - train).abs() < 0.03, "class {class}: {full} vs train {train}");
            assert!((full - test).abs() < 0.05, "class {class}: {full} vs test {test}");
        }
    }

    #[test]
    fn rare_groups_reach_every_portion() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(5));
        let site = ds.schema().by_name("site").expect("site");
        let split = ds.split_stratified(0.64, 0.16, Some(site), &mut Rng64::seed(6));
        // The rarest site group (oral/genital, ~6%) must appear in train
        // and test after attribute-stratified splitting.
        let count = |d: &Dataset| d.groups(site).iter().filter(|&&g| g == 7).count();
        assert!(count(&split.train) > 0, "rare group absent from train");
        assert!(count(&split.test) > 0, "rare group absent from test");
    }

    #[test]
    fn stratified_split_is_deterministic() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let a = ds.split_stratified(0.6, 0.2, None, &mut Rng64::seed(8));
        let b = ds.split_stratified(0.6, 0.2, None, &mut Rng64::seed(8));
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    #[should_panic(expected = "room for test")]
    fn degenerate_fractions_are_rejected() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(9));
        ds.split_stratified(0.95, 0.05, None, &mut Rng64::seed(10));
    }
}
