//! Synthetic dermatology dataset substrate for the Muffin fairness
//! framework.
//!
//! The Muffin paper evaluates on two dermatology image datasets (ISIC2019
//! and Fitzpatrick17K) that we cannot redistribute, and on GPU-trained CNN
//! backbones we cannot rebuild here. Crucially, though, every Muffin
//! component consumes only *model outputs and group labels* — never pixels.
//! This crate therefore provides seeded generative simulators that
//! reproduce the **statistical structure** the paper's evaluation depends
//! on:
//!
//! * multiple sensitive attributes per sample (age × site × gender for the
//!   ISIC-like dataset; skin tone × lesion type for the Fitzpatrick-like
//!   dataset),
//! * large accuracy gaps on some attributes (age, site) and a small gap on
//!   others (gender), produced by group-conditional prototype rotations,
//!   noise inflation and population imbalance,
//! * **entanglement** between attributes: the rotation planes of age and
//!   site share a coordinate, so fitting one group's distortion drags the
//!   decision boundary away from the other's — the paper's seesaw,
//! * correlation between unprivileged group memberships, which is what
//!   makes the paper's Algorithm-1 multi-attribute weighting meaningful.
//!
//! # Example
//!
//! ```
//! use muffin_data::IsicLike;
//! use muffin_tensor::Rng64;
//!
//! let dataset = IsicLike::small().generate(&mut Rng64::seed(7));
//! assert_eq!(dataset.num_classes(), 8);
//! assert_eq!(dataset.schema().attribute_names(), vec!["age", "site", "gender"]);
//! let split = dataset.split_default(&mut Rng64::seed(8));
//! assert!(split.train.len() > split.test.len());
//! ```
//!
//! Beyond the paper's two schemas, the [`ScenarioRegistry`] resolves
//! named scenario recipes — including tabular- and education-style
//! schemas with **intersectional** cell effects — and parses user-written
//! scenario JSON files (schema documented in `docs/SCENARIOS.md`).

#![deny(missing_docs)]

mod attribute;
mod corruption;
mod dataset;
mod fairness;
mod fitzpatrick;
mod generator;
mod io;
mod isic;
mod sampling;
mod scenario;
mod stats;

pub use attribute::{AttributeId, AttributeSchema, GroupId, SensitiveAttribute};
pub use dataset::{Dataset, DatasetSplit};
pub use fairness::{
    group_accuracies, group_accuracy_gap, intersectional_group_accuracies,
    intersectional_unfairness, joint_group_ids, joint_unfairness, unfairness_score, GroupAccuracy,
};
pub use fitzpatrick::FitzpatrickLike;
pub use generator::{
    AttributeSpec, CellEffect, DataGenerator, GeneratorConfig, GroupSpec, InteractionSpec,
};
pub use io::DatasetIoError;
pub use isic::IsicLike;
pub use scenario::{
    Scenario, ScenarioError, ScenarioFamily, ScenarioRegistry, SCENARIO_FORMAT_VERSION,
    SCENARIO_SCHEMA_FIELDS,
};
pub use stats::{DatasetStats, GroupCount, JointGroupCount};
