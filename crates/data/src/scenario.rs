//! Declarative scenario registry: versioned JSON descriptions of synthetic
//! datasets, loadable by name or from user files.
//!
//! A *scenario* wraps a [`GeneratorConfig`] with a name, a family tag, a
//! description and the attribute subset the search should target by
//! default. Built-in scenarios cover the paper's two dermatology schemas
//! plus tabular- and education-style schemas with **intersectional** cell
//! effects (see [`InteractionSpec`](crate::InteractionSpec)); user files
//! use the same JSON schema, documented field-by-field in
//! `docs/SCENARIOS.md`.
//!
//! # Example
//!
//! ```
//! use muffin_data::ScenarioRegistry;
//! use muffin_tensor::Rng64;
//!
//! let scenario = ScenarioRegistry::resolve("german-credit").expect("builtin");
//! let ds = scenario.generator().generate(&mut Rng64::seed(1));
//! assert_eq!(ds.num_classes(), 2);
//! ```

use crate::{AttributeSpec, CellEffect, DataGenerator, GeneratorConfig, GroupSpec, InteractionSpec};
use muffin_json::{Json, JsonError};
use std::fmt;
use std::path::Path;

/// The scenario file format version this build reads and writes.
pub const SCENARIO_FORMAT_VERSION: i64 = 1;

/// Every field name of the scenario JSON schema, across all nesting
/// levels. The handbook-coverage test diffs this list against
/// `docs/SCENARIOS.md`, so adding a field here (or to the parser) without
/// documenting it fails CI.
pub const SCENARIO_SCHEMA_FIELDS: &[&str] = &[
    // Top level.
    "version",
    "name",
    "family",
    "description",
    "default_attrs",
    "generator",
    // Generator.
    "num_samples",
    "feature_dim",
    "num_classes",
    "class_sep",
    "base_noise",
    "spectral_decay",
    "attributes",
    "correlation",
    "interactions",
    // Attributes and groups (`name` is shared with the top level).
    "groups",
    "planes",
    "share",
    "angle_deg",
    "noise_mult",
    // Interactions and cells.
    "attr_a",
    "attr_b",
    "cells",
    "group_a",
    "group_b",
];

const TOP_FIELDS: &[&str] =
    &["version", "name", "family", "description", "default_attrs", "generator"];
const GENERATOR_FIELDS: &[&str] = &[
    "num_samples",
    "feature_dim",
    "num_classes",
    "class_sep",
    "base_noise",
    "spectral_decay",
    "attributes",
    "correlation",
    "interactions",
];
const ATTRIBUTE_FIELDS: &[&str] = &["name", "groups", "planes"];
const GROUP_FIELDS: &[&str] = &["name", "share", "angle_deg", "noise_mult"];
const INTERACTION_FIELDS: &[&str] = &["attr_a", "attr_b", "planes", "cells"];
const CELL_FIELDS: &[&str] = &["group_a", "group_b", "angle_deg", "noise_mult"];

/// Broad domain a scenario imitates; purely descriptive (reports group by
/// it), never interpreted by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioFamily {
    /// Dermatology-style schemas (the paper's home domain).
    Dermatology,
    /// Census/credit-style tabular schemas (Chen & Sarro's benchmarks).
    Tabular,
    /// Education-style schemas (FAIREDU's domain).
    Education,
}

impl ScenarioFamily {
    /// The lowercase tag used in scenario files.
    pub fn tag(self) -> &'static str {
        match self {
            ScenarioFamily::Dermatology => "dermatology",
            ScenarioFamily::Tabular => "tabular",
            ScenarioFamily::Education => "education",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "dermatology" => Some(ScenarioFamily::Dermatology),
            "tabular" => Some(ScenarioFamily::Tabular),
            "education" => Some(ScenarioFamily::Education),
            _ => None,
        }
    }
}

impl fmt::Display for ScenarioFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Why a scenario failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// Reading the file failed.
    Io(String),
    /// The text is not valid JSON; the message keeps muffin-json's
    /// line/column position.
    Parse(String),
    /// The JSON is well-formed but not a valid scenario; the message names
    /// the offending field path.
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io(msg) => write!(f, "scenario io error: {msg}"),
            ScenarioError::Parse(msg) => write!(f, "scenario {msg}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A named, validated dataset recipe.
///
/// Construction always validates the wrapped [`GeneratorConfig`], so a
/// `Scenario` in hand can generate without further checks.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    family: ScenarioFamily,
    description: String,
    default_attrs: Vec<String>,
    config: GeneratorConfig,
}

impl Scenario {
    /// Creates a scenario after validating the configuration and the
    /// default attribute list.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] naming the violated constraint.
    pub fn new(
        name: impl Into<String>,
        family: ScenarioFamily,
        description: impl Into<String>,
        default_attrs: Vec<String>,
        config: GeneratorConfig,
    ) -> Result<Self, ScenarioError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ScenarioError::Invalid("name: must not be empty".into()));
        }
        config.validate().map_err(|e| ScenarioError::Invalid(format!("generator: {e}")))?;
        if default_attrs.is_empty() {
            return Err(ScenarioError::Invalid(
                "default_attrs: must name at least one attribute".into(),
            ));
        }
        for attr in &default_attrs {
            if !config.attributes.iter().any(|a| a.name() == attr) {
                return Err(ScenarioError::Invalid(format!(
                    "default_attrs: unknown attribute `{attr}`"
                )));
            }
        }
        Ok(Self { name, family, description: description.into(), default_attrs, config })
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scenario family tag.
    pub fn family(&self) -> ScenarioFamily {
        self.family
    }

    /// Human description of what the scenario provokes.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Attribute names the search should target by default.
    pub fn default_attrs(&self) -> &[String] {
        &self.default_attrs
    }

    /// The validated generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// A ready generator for this scenario.
    pub fn generator(&self) -> DataGenerator {
        DataGenerator::new(self.config.clone()).expect("scenario config validated on construction")
    }

    /// Returns a copy with the sample count overridden (grid runs shrink
    /// builtins this way).
    ///
    /// # Panics
    ///
    /// Panics if `num_samples == 0`.
    pub fn with_num_samples(mut self, num_samples: usize) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        self.config.num_samples = num_samples;
        self
    }

    /// Parses a scenario from JSON text.
    ///
    /// Syntax errors carry muffin-json's line/column position; semantic
    /// errors name the offending field path. Optional fields take the
    /// defaults documented in `docs/SCENARIOS.md`; unknown fields are
    /// rejected (they are almost always typos).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] or [`ScenarioError::Invalid`].
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let json: Json = muffin_json::from_str(text).map_err(|e| match e {
            JsonError::Parse { .. } => ScenarioError::Parse(e.to_string()),
            other => ScenarioError::Parse(other.to_string()),
        })?;
        Self::from_json_value(&json)
    }

    /// Loads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Io`] if reading fails, otherwise the
    /// [`parse`](Self::parse) errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Canonical JSON serialisation: every field explicit (defaults
    /// included) in schema order, pretty-printed, trailing newline.
    /// Parsing this text and re-serialising reproduces it byte-for-byte.
    pub fn to_json_string(&self) -> String {
        use muffin_json::ToJson;
        let mut top = Json::object();
        top.insert("version", Json::Int(SCENARIO_FORMAT_VERSION as i128));
        top.insert("name", Json::Str(self.name.clone()));
        top.insert("family", Json::Str(self.family.tag().to_string()));
        top.insert("description", Json::Str(self.description.clone()));
        top.insert("default_attrs", self.default_attrs.to_json());
        top.insert("generator", self.config.to_json());
        let mut text = muffin_json::to_string_pretty(&top);
        text.push('\n');
        text
    }

    fn from_json_value(json: &Json) -> Result<Self, ScenarioError> {
        expect_object(json, "scenario")?;
        check_keys(json, "scenario", TOP_FIELDS)?;
        let version: i64 = field_req(json, "scenario", "version")?;
        if version != SCENARIO_FORMAT_VERSION {
            return Err(ScenarioError::Invalid(format!(
                "scenario.version: unsupported version {version} (this build reads version {SCENARIO_FORMAT_VERSION})"
            )));
        }
        let name: String = field_req(json, "scenario", "name")?;
        let family_tag: String =
            field_opt(json, "scenario", "family", ScenarioFamily::Tabular.tag().to_string())?;
        let family = ScenarioFamily::from_tag(&family_tag).ok_or_else(|| {
            ScenarioError::Invalid(format!(
                "scenario.family: unknown family `{family_tag}` (expected dermatology, tabular or education)"
            ))
        })?;
        let description: String = field_opt(json, "scenario", "description", String::new())?;
        let generator = json.get("generator").ok_or_else(|| {
            ScenarioError::Invalid("scenario: missing required field `generator`".into())
        })?;
        let config = parse_generator(generator)?;
        let default_attrs: Vec<String> = match json.get("default_attrs") {
            Some(v) => v
                .decode()
                .map_err(|e| invalid_field("scenario", "default_attrs", &e))?,
            None => config.attributes.iter().map(|a| a.name().to_string()).collect(),
        };
        Scenario::new(name, family, description, default_attrs, config)
    }
}

fn expect_object(json: &Json, path: &str) -> Result<(), ScenarioError> {
    match json {
        Json::Obj(_) => Ok(()),
        other => {
            Err(ScenarioError::Invalid(format!("{path}: expected object, found {}", other.kind())))
        }
    }
}

fn check_keys(json: &Json, path: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    if let Json::Obj(entries) = json {
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(ScenarioError::Invalid(format!(
                    "{path}: unknown field `{key}` (expected one of: {})",
                    allowed.join(", ")
                )));
            }
        }
    }
    Ok(())
}

fn invalid_field(path: &str, key: &str, err: &JsonError) -> ScenarioError {
    ScenarioError::Invalid(format!("{path}.{key}: {err}"))
}

fn field_req<T: muffin_json::FromJson>(
    json: &Json,
    path: &str,
    key: &str,
) -> Result<T, ScenarioError> {
    match json.get(key) {
        Some(v) => v.decode().map_err(|e| invalid_field(path, key, &e)),
        None => {
            Err(ScenarioError::Invalid(format!("{path}: missing required field `{key}`")))
        }
    }
}

fn field_opt<T: muffin_json::FromJson>(
    json: &Json,
    path: &str,
    key: &str,
    default: T,
) -> Result<T, ScenarioError> {
    match json.get(key) {
        Some(v) => v.decode().map_err(|e| invalid_field(path, key, &e)),
        None => Ok(default),
    }
}

fn parse_generator(json: &Json) -> Result<GeneratorConfig, ScenarioError> {
    let path = "scenario.generator";
    expect_object(json, path)?;
    check_keys(json, path, GENERATOR_FIELDS)?;
    let attributes_json = json.get("attributes").ok_or_else(|| {
        ScenarioError::Invalid(format!("{path}: missing required field `attributes`"))
    })?;
    let attributes = parse_array(attributes_json, &format!("{path}.attributes"), parse_attribute)?;
    let interactions = match json.get("interactions") {
        Some(v) => parse_array(v, &format!("{path}.interactions"), parse_interaction)?,
        None => Vec::new(),
    };
    Ok(GeneratorConfig {
        num_samples: field_req(json, path, "num_samples")?,
        feature_dim: field_req(json, path, "feature_dim")?,
        num_classes: field_req(json, path, "num_classes")?,
        class_sep: field_opt(json, path, "class_sep", 2.0)?,
        base_noise: field_opt(json, path, "base_noise", 1.0)?,
        spectral_decay: field_opt(json, path, "spectral_decay", 0.85)?,
        attributes,
        correlation: field_opt(json, path, "correlation", 0.0)?,
        interactions,
    })
}

fn parse_array<T>(
    json: &Json,
    path: &str,
    parse_item: impl Fn(&Json, &str) -> Result<T, ScenarioError>,
) -> Result<Vec<T>, ScenarioError> {
    match json {
        Json::Arr(items) => items
            .iter()
            .enumerate()
            .map(|(i, item)| parse_item(item, &format!("{path}[{i}]")))
            .collect(),
        other => {
            Err(ScenarioError::Invalid(format!("{path}: expected array, found {}", other.kind())))
        }
    }
}

fn parse_attribute(json: &Json, path: &str) -> Result<AttributeSpec, ScenarioError> {
    expect_object(json, path)?;
    check_keys(json, path, ATTRIBUTE_FIELDS)?;
    let name: String = field_req(json, path, "name")?;
    let groups_json = json
        .get("groups")
        .ok_or_else(|| ScenarioError::Invalid(format!("{path}: missing required field `groups`")))?;
    let groups = parse_array(groups_json, &format!("{path}.groups"), parse_group)?;
    if groups.is_empty() {
        return Err(ScenarioError::Invalid(format!("{path}.groups: must not be empty")));
    }
    let planes: Vec<(usize, usize)> = field_opt(json, path, "planes", Vec::new())?;
    if let Some(&(i, j)) = planes.iter().find(|&&(i, j)| i == j) {
        return Err(ScenarioError::Invalid(format!(
            "{path}.planes: degenerate plane ({i},{j}) must use two distinct axes"
        )));
    }
    Ok(AttributeSpec::new(name, groups, planes))
}

fn parse_group(json: &Json, path: &str) -> Result<GroupSpec, ScenarioError> {
    expect_object(json, path)?;
    check_keys(json, path, GROUP_FIELDS)?;
    let name: String = field_req(json, path, "name")?;
    let share: f32 = field_req(json, path, "share")?;
    if !(share > 0.0) {
        return Err(ScenarioError::Invalid(format!("{path}.share: must be positive")));
    }
    let angle_deg: f32 = field_opt(json, path, "angle_deg", 0.0)?;
    let noise_mult: f32 = field_opt(json, path, "noise_mult", 1.0)?;
    if !(noise_mult > 0.0) {
        return Err(ScenarioError::Invalid(format!("{path}.noise_mult: must be positive")));
    }
    Ok(GroupSpec::new(name, share).with_angle(angle_deg).with_noise_mult(noise_mult))
}

fn parse_interaction(json: &Json, path: &str) -> Result<InteractionSpec, ScenarioError> {
    expect_object(json, path)?;
    check_keys(json, path, INTERACTION_FIELDS)?;
    let attr_a: String = field_req(json, path, "attr_a")?;
    let attr_b: String = field_req(json, path, "attr_b")?;
    if attr_a == attr_b {
        return Err(ScenarioError::Invalid(format!(
            "{path}: attr_a and attr_b must name two distinct attributes"
        )));
    }
    let planes: Vec<(usize, usize)> = field_opt(json, path, "planes", Vec::new())?;
    if let Some(&(i, j)) = planes.iter().find(|&&(i, j)| i == j) {
        return Err(ScenarioError::Invalid(format!(
            "{path}.planes: degenerate plane ({i},{j}) must use two distinct axes"
        )));
    }
    let cells_json = json
        .get("cells")
        .ok_or_else(|| ScenarioError::Invalid(format!("{path}: missing required field `cells`")))?;
    let cells = parse_array(cells_json, &format!("{path}.cells"), parse_cell)?;
    let mut spec = InteractionSpec::new(attr_a, attr_b, planes);
    for cell in cells {
        spec = spec.with_cell(cell);
    }
    Ok(spec)
}

fn parse_cell(json: &Json, path: &str) -> Result<CellEffect, ScenarioError> {
    expect_object(json, path)?;
    check_keys(json, path, CELL_FIELDS)?;
    let group_a: String = field_req(json, path, "group_a")?;
    let group_b: String = field_req(json, path, "group_b")?;
    let angle_deg: f32 = field_opt(json, path, "angle_deg", 0.0)?;
    let noise_mult: f32 = field_opt(json, path, "noise_mult", 1.0)?;
    if !(noise_mult > 0.0) {
        return Err(ScenarioError::Invalid(format!("{path}.noise_mult: must be positive")));
    }
    Ok(CellEffect::new(group_a, group_b).with_angle(angle_deg).with_noise_mult(noise_mult))
}

/// Resolves scenario names: built-in scenarios first, file paths second.
///
/// # Example
///
/// ```
/// use muffin_data::ScenarioRegistry;
///
/// assert!(ScenarioRegistry::builtin_names().contains(&"adult-income"));
/// let s = ScenarioRegistry::resolve("adult-income").expect("builtin");
/// assert_eq!(s.default_attrs(), ["gender", "race"]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ScenarioRegistry;

impl ScenarioRegistry {
    /// Names of every built-in scenario, in registry order.
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "isic",
            "fitzpatrick",
            "isic-intersect",
            "adult-income",
            "german-credit",
            "edu-grades",
            "edu-dropout",
        ]
    }

    /// The built-in scenario of that name, if any.
    pub fn builtin(name: &str) -> Option<Scenario> {
        let scenario = match name {
            "isic" => builtin_isic(),
            "fitzpatrick" => builtin_fitzpatrick(),
            "isic-intersect" => builtin_isic_intersect(),
            "adult-income" => builtin_adult_income(),
            "german-credit" => builtin_german_credit(),
            "edu-grades" => builtin_edu_grades(),
            "edu-dropout" => builtin_edu_dropout(),
            _ => return None,
        };
        Some(scenario)
    }

    /// Resolves `spec` as a built-in name, then as a scenario file path.
    ///
    /// A spec that is neither a built-in nor an existing file fails with
    /// the built-in list in the message, so typos surface immediately.
    ///
    /// # Errors
    ///
    /// Returns the [`Scenario::load`] errors for file specs, or
    /// [`ScenarioError::Invalid`] for unknown names.
    pub fn resolve(spec: &str) -> Result<Scenario, ScenarioError> {
        if let Some(scenario) = Self::builtin(spec) {
            return Ok(scenario);
        }
        let path = Path::new(spec);
        if path.exists() || spec.contains('/') || spec.contains('.') {
            return Scenario::load(path);
        }
        Err(ScenarioError::Invalid(format!(
            "unknown scenario `{spec}` (builtins: {})",
            Self::builtin_names().join(", ")
        )))
    }
}

fn must(scenario: Result<Scenario, ScenarioError>) -> Scenario {
    scenario.expect("builtin scenario is valid")
}

fn builtin_isic() -> Scenario {
    must(Scenario::new(
        "isic",
        ScenarioFamily::Dermatology,
        "The paper's ISIC2019-like schema: large age and site gaps pulling in \
         opposite directions (the seesaw), near-fair gender.",
        vec!["age".into(), "site".into()],
        crate::IsicLike::new().config(),
    ))
}

fn builtin_fitzpatrick() -> Scenario {
    must(Scenario::new(
        "fitzpatrick",
        ScenarioFamily::Dermatology,
        "The paper's Fitzpatrick17K-like schema: rare dark skin tones distorted \
         against the malignant lesion type in shared planes.",
        vec!["skin_tone".into(), "type".into()],
        crate::FitzpatrickLike::new().config(),
    ))
}

fn builtin_isic_intersect() -> Scenario {
    let config = GeneratorConfig {
        num_samples: 4_000,
        feature_dim: 16,
        num_classes: 6,
        class_sep: 2.2,
        base_noise: 1.0,
        spectral_decay: 0.85,
        attributes: vec![
            AttributeSpec::new(
                "age",
                vec![
                    GroupSpec::new("young", 0.38),
                    GroupSpec::new("middle", 0.34),
                    // Mild marginal handicap: below the designed-disadvantage
                    // threshold, so the *marginal* age gap stays small.
                    GroupSpec::new("old", 0.28).with_angle(15.0).with_noise_mult(1.15),
                ],
                vec![(0, 1)],
            ),
            AttributeSpec::new(
                "gender",
                vec![
                    GroupSpec::new("male", 0.52),
                    GroupSpec::new("female", 0.48).with_noise_mult(1.1),
                ],
                vec![(2, 3)],
            ),
        ],
        correlation: 0.2,
        // The real damage hides in one joint cell: elderly women are
        // rotated hard while both marginals stay near-fair — the hidden
        // intersectional disadvantage MIFair measures.
        interactions: vec![InteractionSpec::new("age", "gender", vec![(0, 2), (1, 3)])
            .with_cell(CellEffect::new("old", "female").with_angle(70.0).with_noise_mult(1.8))],
    };
    must(Scenario::new(
        "isic-intersect",
        ScenarioFamily::Dermatology,
        "Dermatology schema whose marginals look near-fair while the old×female \
         joint cell is systematically misread; only intersectional U exposes it.",
        vec!["age".into(), "gender".into()],
        config,
    ))
}

fn builtin_adult_income() -> Scenario {
    let config = GeneratorConfig {
        num_samples: 4_000,
        feature_dim: 12,
        num_classes: 2,
        class_sep: 1.8,
        base_noise: 1.1,
        spectral_decay: 0.88,
        attributes: vec![
            AttributeSpec::new(
                "gender",
                vec![
                    GroupSpec::new("male", 0.67),
                    GroupSpec::new("female", 0.33).with_angle(25.0).with_noise_mult(1.2),
                ],
                vec![(0, 1)],
            ),
            AttributeSpec::new(
                "race",
                vec![
                    GroupSpec::new("white", 0.70),
                    GroupSpec::new("black", 0.18).with_angle(45.0).with_noise_mult(1.5),
                    GroupSpec::new("other", 0.12).with_angle(30.0).with_noise_mult(1.3),
                ],
                vec![(1, 2), (4, 5)],
            ),
            AttributeSpec::new(
                "age_band",
                vec![
                    GroupSpec::new("under-25", 0.28),
                    GroupSpec::new("25-45", 0.47),
                    GroupSpec::new("46+", 0.25).with_angle(20.0).with_noise_mult(1.2),
                ],
                vec![(3, 4)],
            ),
        ],
        correlation: 0.4,
        interactions: vec![InteractionSpec::new("gender", "race", vec![(2, 3)])
            .with_cell(CellEffect::new("female", "black").with_angle(40.0).with_noise_mult(1.4))],
    };
    must(Scenario::new(
        "adult-income",
        ScenarioFamily::Tabular,
        "Census-style binary task with three protected attributes (Chen & \
         Sarro's setting); the female×black cell carries extra disadvantage \
         on top of both marginals.",
        vec!["gender".into(), "race".into()],
        config,
    ))
}

fn builtin_german_credit() -> Scenario {
    let config = GeneratorConfig {
        num_samples: 3_000,
        feature_dim: 10,
        num_classes: 2,
        class_sep: 2.0,
        base_noise: 1.0,
        spectral_decay: 0.9,
        attributes: vec![
            AttributeSpec::new(
                "gender",
                vec![
                    GroupSpec::new("male", 0.69),
                    GroupSpec::new("female", 0.31).with_angle(35.0).with_noise_mult(1.3),
                ],
                vec![(0, 1)],
            ),
            AttributeSpec::new(
                "age",
                vec![
                    GroupSpec::new("older", 0.81),
                    GroupSpec::new("young", 0.19).with_angle(55.0).with_noise_mult(1.6),
                ],
                vec![(1, 2)],
            ),
        ],
        // High membership correlation + a shared plane coordinate: the
        // credit-scoring seesaw where de-biasing gender re-biases age.
        correlation: 0.45,
        interactions: vec![],
    };
    must(Scenario::new(
        "german-credit",
        ScenarioFamily::Tabular,
        "Small credit-scoring task with strongly correlated gender and age \
         disadvantage rotating entangled planes — the classic two-attribute \
         seesaw in tabular form.",
        vec!["gender".into(), "age".into()],
        config,
    ))
}

fn builtin_edu_grades() -> Scenario {
    let config = GeneratorConfig {
        num_samples: 3_500,
        feature_dim: 14,
        num_classes: 3,
        class_sep: 2.0,
        base_noise: 1.05,
        spectral_decay: 0.86,
        attributes: vec![
            AttributeSpec::new(
                "gender",
                vec![
                    GroupSpec::new("male", 0.5),
                    GroupSpec::new("female", 0.5).with_angle(8.0).with_noise_mult(1.05),
                ],
                vec![(5, 6)],
            ),
            AttributeSpec::new(
                "ses",
                vec![
                    GroupSpec::new("high", 0.30),
                    GroupSpec::new("mid", 0.45),
                    GroupSpec::new("low", 0.25).with_angle(60.0).with_noise_mult(1.7),
                ],
                vec![(0, 1), (2, 3)],
            ),
            AttributeSpec::new(
                "region",
                vec![
                    GroupSpec::new("urban", 0.60),
                    GroupSpec::new("rural", 0.40).with_angle(30.0).with_noise_mult(1.3),
                ],
                vec![(1, 2)],
            ),
        ],
        correlation: 0.35,
        interactions: vec![InteractionSpec::new("ses", "region", vec![(3, 4)])
            .with_cell(CellEffect::new("low", "rural").with_angle(35.0).with_noise_mult(1.3))],
    };
    must(Scenario::new(
        "edu-grades",
        ScenarioFamily::Education,
        "FAIREDU-style grade prediction: socio-economic status dominates, \
         region entangles with it, and the low×rural cell is hit twice.",
        vec!["ses".into(), "region".into()],
        config,
    ))
}

fn builtin_edu_dropout() -> Scenario {
    let config = GeneratorConfig {
        num_samples: 3_000,
        feature_dim: 12,
        num_classes: 2,
        class_sep: 1.9,
        base_noise: 1.1,
        spectral_decay: 0.88,
        attributes: vec![
            AttributeSpec::new(
                "age_band",
                vec![
                    GroupSpec::new("teen", 0.35),
                    GroupSpec::new("adult", 0.45),
                    GroupSpec::new("mature", 0.20).with_angle(50.0).with_noise_mult(1.5),
                ],
                vec![(0, 1)],
            ),
            AttributeSpec::new(
                "disability",
                vec![
                    GroupSpec::new("none", 0.88),
                    GroupSpec::new("declared", 0.12).with_angle(70.0).with_noise_mult(1.9),
                ],
                vec![(1, 2)],
            ),
        ],
        correlation: 0.5,
        interactions: vec![],
    };
    must(Scenario::new(
        "edu-dropout",
        ScenarioFamily::Education,
        "Dropout prediction with a rare, heavily distorted disability group \
         whose membership correlates with mature students — rare-group \
         fairness under strong correlation.",
        vec!["age_band".into(), "disability".into()],
        config,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use muffin_tensor::Rng64;

    #[test]
    fn every_builtin_resolves_and_validates() {
        for name in ScenarioRegistry::builtin_names() {
            let s = ScenarioRegistry::resolve(name).expect(name);
            assert_eq!(s.name(), *name);
            assert!(!s.description().is_empty(), "{name} needs a description");
            assert!(!s.default_attrs().is_empty());
        }
    }

    #[test]
    fn builtins_generate_small_datasets() {
        for name in ScenarioRegistry::builtin_names() {
            let s = ScenarioRegistry::resolve(name).expect(name).with_num_samples(300);
            let ds = s.generator().generate(&mut Rng64::seed(3));
            assert_eq!(ds.len(), 300, "{name}");
            assert!(ds.num_classes() >= 2, "{name}");
        }
    }

    #[test]
    fn unknown_name_lists_builtins() {
        let err = ScenarioRegistry::resolve("no-such-scenario").expect_err("unknown");
        let msg = err.to_string();
        assert!(msg.contains("unknown scenario"), "{msg}");
        assert!(msg.contains("german-credit"), "{msg}");
    }

    #[test]
    fn minimal_scenario_takes_documented_defaults() {
        let s = Scenario::parse(
            r#"{
                "version": 1,
                "name": "tiny",
                "generator": {
                    "num_samples": 100,
                    "feature_dim": 4,
                    "num_classes": 2,
                    "attributes": [
                        {"name": "g", "groups": [
                            {"name": "a", "share": 0.5},
                            {"name": "b", "share": 0.5}
                        ]}
                    ]
                }
            }"#,
        )
        .expect("minimal scenario");
        assert_eq!(s.family(), ScenarioFamily::Tabular);
        assert_eq!(s.description(), "");
        assert_eq!(s.default_attrs(), ["g"]);
        let cfg = s.config();
        assert_eq!(cfg.class_sep, 2.0);
        assert_eq!(cfg.base_noise, 1.0);
        assert_eq!(cfg.spectral_decay, 0.85);
        assert_eq!(cfg.correlation, 0.0);
        assert!(cfg.interactions.is_empty());
        assert_eq!(cfg.attributes[0].groups()[0].noise_mult(), 1.0);
    }

    #[test]
    fn unknown_fields_are_rejected_with_path() {
        let err = Scenario::parse(
            r#"{"version": 1, "name": "x", "generatr": {}}"#,
        )
        .expect_err("typo");
        assert!(err.to_string().contains("unknown field `generatr`"), "{err}");

        let err = Scenario::parse(
            r#"{
                "version": 1,
                "name": "x",
                "generator": {
                    "num_samples": 10, "feature_dim": 4, "num_classes": 2,
                    "attributes": [
                        {"name": "g", "groups": [{"name": "a", "share": 1.0, "nois_mult": 2.0}]}
                    ]
                }
            }"#,
        )
        .expect_err("typo in group");
        let msg = err.to_string();
        assert!(msg.contains("groups[0]"), "{msg}");
        assert!(msg.contains("unknown field `nois_mult`"), "{msg}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let err = Scenario::parse(r#"{"version": 9, "name": "x", "generator": {}}"#)
            .expect_err("future version");
        assert!(err.to_string().contains("unsupported version 9"), "{err}");
    }

    #[test]
    fn json_syntax_errors_carry_line_and_column() {
        // The stray token sits on line 3; the parse error must say so, in
        // the muffin-json `line L, column C` form the handbook documents.
        let text = "{\n  \"version\": 1,\n  \"name\": \"x\" oops\n}";
        let err = Scenario::parse(text).expect_err("syntax error");
        assert!(matches!(err, ScenarioError::Parse(_)), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("column"), "{msg}");
    }

    #[test]
    fn scenarios_load_from_disk_and_io_errors_name_the_path() {
        let dir = std::env::temp_dir().join("muffin_scenario_load_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("custom.json");
        let text = ScenarioRegistry::builtin("adult-income").expect("builtin").to_json_string();
        std::fs::write(&path, &text).expect("write scenario file");
        let loaded = Scenario::load(&path).expect("loads from disk");
        assert_eq!(loaded.name(), "adult-income");
        // The registry resolves paths too, not just builtin names.
        let resolved =
            ScenarioRegistry::resolve(path.to_str().expect("utf8 path")).expect("resolves");
        assert_eq!(resolved.to_json_string(), text);
        std::fs::remove_file(&path).ok();
        let err = Scenario::load(&path).expect_err("missing file");
        assert!(matches!(err, ScenarioError::Io(_)), "{err}");
        assert!(err.to_string().contains("custom.json"), "{err}");
    }

    #[test]
    fn semantic_errors_name_the_field_path() {
        let err = Scenario::parse(
            r#"{
                "version": 1,
                "name": "x",
                "generator": {
                    "num_samples": 10, "feature_dim": 4, "num_classes": 2,
                    "attributes": [
                        {"name": "g", "groups": [{"name": "a", "share": -1.0}]}
                    ]
                }
            }"#,
        )
        .expect_err("bad share");
        let msg = err.to_string();
        assert!(msg.contains("groups[0].share"), "{msg}");
        assert!(msg.contains("must be positive"), "{msg}");
    }

    #[test]
    fn round_trip_is_byte_identical_for_every_builtin() {
        for name in ScenarioRegistry::builtin_names() {
            let original = ScenarioRegistry::resolve(name).expect(name);
            let text = original.to_json_string();
            let reparsed = Scenario::parse(&text).expect(name);
            assert_eq!(reparsed, original, "{name} round-trip changed the scenario");
            assert_eq!(reparsed.to_json_string(), text, "{name} round-trip changed bytes");
        }
    }

    #[test]
    fn schema_fields_match_the_canonical_serialisation() {
        // The canonical serialisation of a full-featured scenario must use
        // exactly the fields in SCENARIO_SCHEMA_FIELDS — no more (every
        // emitted field is documented) and no less (every documented field
        // is real).
        let s = ScenarioRegistry::resolve("isic-intersect").expect("builtin");
        let json: Json = muffin_json::from_str(&s.to_json_string()).expect("canonical json");
        let mut seen = std::collections::BTreeSet::new();
        collect_keys(&json, &mut seen);
        let expected: std::collections::BTreeSet<&str> =
            SCENARIO_SCHEMA_FIELDS.iter().copied().collect();
        let seen: std::collections::BTreeSet<&str> =
            seen.iter().map(String::as_str).collect();
        assert_eq!(seen, expected);
    }

    fn collect_keys(json: &Json, out: &mut std::collections::BTreeSet<String>) {
        match json {
            Json::Obj(entries) => {
                for (k, v) in entries {
                    out.insert(k.clone());
                    collect_keys(v, out);
                }
            }
            Json::Arr(items) => items.iter().for_each(|v| collect_keys(v, out)),
            _ => {}
        }
    }
}
