use crate::{AttributeId, Dataset};
use std::fmt;

/// Sample count of one group under one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCount {
    /// Group index within its attribute.
    pub group: u16,
    /// Number of samples.
    pub count: usize,
}

muffin_json::impl_json!(struct GroupCount { group, count });

/// Sample counts over the joint cells of one attribute pair, row-major
/// (cell `(g_a, g_b)` sits at index `g_a · num_groups_b + g_b`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointGroupCount {
    /// Index of the first attribute in the schema.
    pub attr_a: usize,
    /// Index of the second attribute in the schema (`attr_a < attr_b`).
    pub attr_b: usize,
    /// Per-cell counts; the `group` field holds the row-major cell id.
    pub cells: Vec<GroupCount>,
}

muffin_json::impl_json!(struct JointGroupCount { attr_a, attr_b, cells });

/// Descriptive statistics of a [`Dataset`]: per-attribute group counts and
/// the class distribution.
///
/// # Example
///
/// ```
/// use muffin_data::{DatasetStats, IsicLike};
/// use muffin_tensor::Rng64;
///
/// let ds = IsicLike::small().generate(&mut Rng64::seed(1));
/// let stats = DatasetStats::of(&ds);
/// assert_eq!(stats.class_counts().len(), 8);
/// assert_eq!(stats.group_counts(muffin_data::AttributeId::new(1)).len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetStats {
    class_counts: Vec<usize>,
    group_counts: Vec<Vec<GroupCount>>,
    joint_counts: Vec<JointGroupCount>,
    num_samples: usize,
}

muffin_json::impl_json!(struct DatasetStats { class_counts, group_counts, joint_counts, num_samples });

impl DatasetStats {
    /// Computes statistics for `dataset`.
    pub fn of(dataset: &Dataset) -> Self {
        let mut class_counts = vec![0usize; dataset.num_classes()];
        for &label in dataset.labels() {
            class_counts[label] += 1;
        }
        let group_counts = dataset
            .schema()
            .iter()
            .map(|(id, attr)| {
                let mut counts = vec![0usize; attr.num_groups()];
                for &g in dataset.groups(id) {
                    counts[g as usize] += 1;
                }
                counts
                    .into_iter()
                    .enumerate()
                    .map(|(g, count)| GroupCount { group: g as u16, count })
                    .collect()
            })
            .collect();
        let attrs: Vec<_> = dataset.schema().iter().collect();
        let mut joint_counts = Vec::new();
        for i in 0..attrs.len() {
            for j in (i + 1)..attrs.len() {
                let (id_a, attr_a) = &attrs[i];
                let (id_b, attr_b) = &attrs[j];
                let nb = attr_b.num_groups();
                let mut counts = vec![0usize; attr_a.num_groups() * nb];
                for (&ga, &gb) in dataset.groups(*id_a).iter().zip(dataset.groups(*id_b)) {
                    counts[ga as usize * nb + gb as usize] += 1;
                }
                joint_counts.push(JointGroupCount {
                    attr_a: i,
                    attr_b: j,
                    cells: counts
                        .into_iter()
                        .enumerate()
                        .map(|(c, count)| GroupCount { group: c as u16, count })
                        .collect(),
                });
            }
        }
        Self { class_counts, group_counts, joint_counts, num_samples: dataset.len() }
    }

    /// Samples per class.
    pub fn class_counts(&self) -> &[usize] {
        &self.class_counts
    }

    /// Samples per group of one attribute.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    pub fn group_counts(&self, attr: AttributeId) -> &[GroupCount] {
        &self.group_counts[attr.index()]
    }

    /// Joint cell counts of one attribute pair, row-major over the second
    /// attribute's groups. Accepts the pair in either order; `None` if
    /// either attribute is out of range.
    pub fn joint_counts(&self, a: AttributeId, b: AttributeId) -> Option<&[GroupCount]> {
        let (lo, hi) = if a.index() <= b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        self.joint_counts
            .iter()
            .find(|jc| jc.attr_a == lo && jc.attr_b == hi)
            .map(|jc| jc.cells.as_slice())
    }

    /// All pairwise joint cell counts, ordered by `(attr_a, attr_b)`.
    pub fn joint_counts_all(&self) -> &[JointGroupCount] {
        &self.joint_counts
    }

    /// Total number of samples.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// The share (0–1) of samples in a group.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn group_share(&self, attr: AttributeId, group: u16) -> f32 {
        let count = self.group_counts[attr.index()]
            .iter()
            .find(|c| c.group == group)
            .map_or(0, |c| c.count);
        if self.num_samples == 0 {
            0.0
        } else {
            count as f32 / self.num_samples as f32
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} samples, {} classes", self.num_samples, self.class_counts.len())?;
        for (a, groups) in self.group_counts.iter().enumerate() {
            write!(f, "  attr#{a}:")?;
            for g in groups {
                write!(f, " {}:{}", g.group, g.count)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsicLike;
    use muffin_tensor::Rng64;

    #[test]
    fn counts_sum_to_dataset_size() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.class_counts().iter().sum::<usize>(), ds.len());
        for (id, _) in ds.schema().iter() {
            let total: usize = stats.group_counts(id).iter().map(|g| g.count).sum();
            assert_eq!(total, ds.len());
        }
    }

    #[test]
    fn group_share_is_a_fraction() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let stats = DatasetStats::of(&ds);
        let share = stats.group_share(AttributeId::new(0), 0);
        assert!((0.0..=1.0).contains(&share));
    }

    #[test]
    fn missing_group_has_zero_share() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.group_share(AttributeId::new(2), 99), 0.0);
    }

    #[test]
    fn display_lists_every_attribute() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let text = DatasetStats::of(&ds).to_string();
        assert!(text.contains("attr#0"));
        assert!(text.contains("attr#2"));
    }

    #[test]
    fn joint_counts_cover_every_pair_and_sum_to_dataset_size() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let stats = DatasetStats::of(&ds);
        let attrs = ds.schema().iter().count();
        assert_eq!(stats.joint_counts_all().len(), attrs * (attrs - 1) / 2);
        for jc in stats.joint_counts_all() {
            assert!(jc.attr_a < jc.attr_b);
            assert_eq!(jc.cells.iter().map(|c| c.count).sum::<usize>(), ds.len());
        }
    }

    #[test]
    fn joint_counts_lookup_is_order_insensitive() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let stats = DatasetStats::of(&ds);
        let fwd = stats.joint_counts(AttributeId::new(0), AttributeId::new(1)).expect("pair");
        let rev = stats.joint_counts(AttributeId::new(1), AttributeId::new(0)).expect("pair");
        assert_eq!(fwd, rev);
        assert!(stats.joint_counts(AttributeId::new(0), AttributeId::new(9)).is_none());
    }
}
