use crate::{AttributeId, Dataset};
use std::fmt;

/// Sample count of one group under one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCount {
    /// Group index within its attribute.
    pub group: u16,
    /// Number of samples.
    pub count: usize,
}

muffin_json::impl_json!(struct GroupCount { group, count });

/// Descriptive statistics of a [`Dataset`]: per-attribute group counts and
/// the class distribution.
///
/// # Example
///
/// ```
/// use muffin_data::{DatasetStats, IsicLike};
/// use muffin_tensor::Rng64;
///
/// let ds = IsicLike::small().generate(&mut Rng64::seed(1));
/// let stats = DatasetStats::of(&ds);
/// assert_eq!(stats.class_counts().len(), 8);
/// assert_eq!(stats.group_counts(muffin_data::AttributeId::new(1)).len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetStats {
    class_counts: Vec<usize>,
    group_counts: Vec<Vec<GroupCount>>,
    num_samples: usize,
}

muffin_json::impl_json!(struct DatasetStats { class_counts, group_counts, num_samples });

impl DatasetStats {
    /// Computes statistics for `dataset`.
    pub fn of(dataset: &Dataset) -> Self {
        let mut class_counts = vec![0usize; dataset.num_classes()];
        for &label in dataset.labels() {
            class_counts[label] += 1;
        }
        let group_counts = dataset
            .schema()
            .iter()
            .map(|(id, attr)| {
                let mut counts = vec![0usize; attr.num_groups()];
                for &g in dataset.groups(id) {
                    counts[g as usize] += 1;
                }
                counts
                    .into_iter()
                    .enumerate()
                    .map(|(g, count)| GroupCount { group: g as u16, count })
                    .collect()
            })
            .collect();
        Self { class_counts, group_counts, num_samples: dataset.len() }
    }

    /// Samples per class.
    pub fn class_counts(&self) -> &[usize] {
        &self.class_counts
    }

    /// Samples per group of one attribute.
    ///
    /// # Panics
    ///
    /// Panics if `attr` is out of range.
    pub fn group_counts(&self, attr: AttributeId) -> &[GroupCount] {
        &self.group_counts[attr.index()]
    }

    /// Total number of samples.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// The share (0–1) of samples in a group.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn group_share(&self, attr: AttributeId, group: u16) -> f32 {
        let count = self.group_counts[attr.index()]
            .iter()
            .find(|c| c.group == group)
            .map_or(0, |c| c.count);
        if self.num_samples == 0 {
            0.0
        } else {
            count as f32 / self.num_samples as f32
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} samples, {} classes", self.num_samples, self.class_counts.len())?;
        for (a, groups) in self.group_counts.iter().enumerate() {
            write!(f, "  attr#{a}:")?;
            for g in groups {
                write!(f, " {}:{}", g.group, g.count)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsicLike;
    use muffin_tensor::Rng64;

    #[test]
    fn counts_sum_to_dataset_size() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.class_counts().iter().sum::<usize>(), ds.len());
        for (id, _) in ds.schema().iter() {
            let total: usize = stats.group_counts(id).iter().map(|g| g.count).sum();
            assert_eq!(total, ds.len());
        }
    }

    #[test]
    fn group_share_is_a_fraction() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let stats = DatasetStats::of(&ds);
        let share = stats.group_share(AttributeId::new(0), 0);
        assert!((0.0..=1.0).contains(&share));
    }

    #[test]
    fn missing_group_has_zero_share() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let stats = DatasetStats::of(&ds);
        assert_eq!(stats.group_share(AttributeId::new(2), 99), 0.0);
    }

    #[test]
    fn display_lists_every_attribute() {
        let ds = IsicLike::small().generate(&mut Rng64::seed(7));
        let text = DatasetStats::of(&ds).to_string();
        assert!(text.contains("attr#0"));
        assert!(text.contains("attr#2"));
    }
}
