use crate::{AttributeSpec, DataGenerator, Dataset, GeneratorConfig, GroupSpec};
use muffin_tensor::Rng64;

/// Builder for the Fitzpatrick17K-like synthetic dataset.
///
/// Mirrors the paper's validation dataset: a 9-class dermatology problem
/// with two sensitive attributes — **skin tone** on the six-point
/// Fitzpatrick scale (darker tones under-represented and distorted, as in
/// the real dataset) and a three-way lesion **type**. The two attributes'
/// rotation planes overlap, so the multi-dimensional entanglement the
/// paper validates in Section 4.5 is present here too.
///
/// # Example
///
/// ```
/// use muffin_data::FitzpatrickLike;
/// use muffin_tensor::Rng64;
///
/// let ds = FitzpatrickLike::small().generate(&mut Rng64::seed(4));
/// assert_eq!(ds.num_classes(), 9);
/// assert_eq!(ds.schema().attribute_names(), vec!["skin_tone", "type"]);
/// ```
#[derive(Debug, Clone)]
pub struct FitzpatrickLike {
    num_samples: usize,
}

impl FitzpatrickLike {
    /// Default configuration: 7 000 samples.
    pub fn new() -> Self {
        Self { num_samples: 7_000 }
    }

    /// A small variant (1 200 samples) for tests and quick runs.
    pub fn small() -> Self {
        Self { num_samples: 1_200 }
    }

    /// Overrides the sample count.
    ///
    /// # Panics
    ///
    /// Panics if `num_samples == 0`.
    pub fn with_num_samples(mut self, num_samples: usize) -> Self {
        assert!(num_samples > 0, "num_samples must be positive");
        self.num_samples = num_samples;
        self
    }

    /// The underlying generator configuration.
    pub fn config(&self) -> GeneratorConfig {
        GeneratorConfig {
            num_samples: self.num_samples,
            feature_dim: 24,
            num_classes: 9,
            class_sep: 2.0,
            base_noise: 1.35,
            spectral_decay: 0.82,
            attributes: vec![
                // Fitzpatrick skin-tone scale: light tones dominate the
                // dataset; types V and VI are rare and distorted.
                AttributeSpec::new(
                    "skin_tone",
                    vec![
                        GroupSpec::new("type I", 0.22),
                        GroupSpec::new("type II", 0.26),
                        GroupSpec::new("type III", 0.21),
                        GroupSpec::new("type IV", 0.14),
                        GroupSpec::new("type V", 0.10).with_angle(60.0).with_noise_mult(1.8),
                        GroupSpec::new("type VI", 0.07).with_angle(85.0).with_noise_mult(2.1),
                    ],
                    vec![(0, 1), (4, 5)],
                ),
                // Three-way lesion partition; malignant lesions are the
                // disadvantaged group (hardest to photograph consistently).
                // Rotated against skin tone in the shared planes — the same
                // entanglement mechanism as the ISIC-like age↔site pair.
                AttributeSpec::new(
                    "type",
                    vec![
                        GroupSpec::new("benign", 0.45),
                        GroupSpec::new("non-neoplastic", 0.33),
                        GroupSpec::new("malignant", 0.22).with_angle(-65.0).with_noise_mult(1.8),
                    ],
                    vec![(1, 2), (5, 6)],
                ),
            ],
            correlation: 0.30,
            interactions: vec![],
        }
    }

    /// Generates the dataset.
    pub fn generate(&self, rng: &mut Rng64) -> Dataset {
        DataGenerator::new(self.config())
            .expect("builtin Fitzpatrick-like config is valid")
            .generate(rng)
    }
}

impl Default for FitzpatrickLike {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttributeId;

    #[test]
    fn schema_matches_paper_structure() {
        let ds = FitzpatrickLike::small().generate(&mut Rng64::seed(1));
        assert_eq!(ds.schema().get(AttributeId::new(0)).unwrap().num_groups(), 6);
        assert_eq!(ds.schema().get(AttributeId::new(1)).unwrap().num_groups(), 3);
        assert_eq!(ds.num_classes(), 9);
    }

    #[test]
    fn dark_skin_tones_are_designed_unprivileged() {
        let cfg = FitzpatrickLike::new().config();
        assert_eq!(cfg.attributes[0].designed_unprivileged(), vec![4, 5]);
        assert_eq!(cfg.attributes[1].designed_unprivileged(), vec![2]);
    }

    #[test]
    fn attributes_are_entangled_via_shared_coordinates() {
        let cfg = FitzpatrickLike::new().config();
        let tone: Vec<usize> =
            cfg.attributes[0].planes().iter().flat_map(|&(i, j)| [i, j]).collect();
        let lesion: Vec<usize> =
            cfg.attributes[1].planes().iter().flat_map(|&(i, j)| [i, j]).collect();
        assert!(tone.iter().any(|c| lesion.contains(c)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FitzpatrickLike::small().generate(&mut Rng64::seed(5));
        let b = FitzpatrickLike::small().generate(&mut Rng64::seed(5));
        assert_eq!(a.labels(), b.labels());
    }
}
